"""Pytest wiring for the benchmark suite.

Makes the shared harness importable and registers session-scoped
workload fixtures so dataset generation is not billed to any benchmark.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
