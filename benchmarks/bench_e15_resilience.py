"""E15 — Recovery overhead of the fault-tolerant parallel executor.

The resilience layer (:mod:`repro.core.resilience`) promises that any
fault plan yields byte-identical results; this experiment measures what
that recovery *costs*.  Each scenario runs the same self-join under one
injected failure mode and reports the wall-clock overhead relative to a
fault-free run of the same configuration, plus the resilience counters
that prove the scenario actually exercised its recovery path:

* ``baseline`` — fault-free parallel join (the denominator).
* ``crash-retry`` — one stripe task crashes once and is re-dispatched.
* ``timeout-retry`` — one stripe task is delayed past ``task_timeout``
  and re-dispatched.
* ``pool-failure-degrade`` — the process pool cannot be created; the
  whole join degrades to the serial traversal.
* ``storage-retry`` — the external-memory join retries transient page
  read failures (measured against its own fault-free baseline).

Script mode writes the measured series to
``benchmarks/results/e15_resilience.json``::

    python benchmarks/bench_e15_resilience.py            # full size
    python benchmarks/bench_e15_resilience.py --smoke    # seconds-sized
"""

from __future__ import annotations

import argparse
import os
import time

import pytest

from _harness import attach_info, clustered, scale, write_record
from repro import FaultPlan, JoinSpec, PairCounter, ParallelJoinExecutor
from repro.analysis import Table, format_seconds, format_si
from repro.core import external_self_join
from repro.storage.pages import PageStore

N = scale(40_000)
DIMS = 8
EPSILON = 0.05
N_WORKERS = 2
TASK_TIMEOUT = 0.5
DELAY_SECONDS = 2 * TASK_TIMEOUT

SMOKE_N = 4000

EXTERNAL_MEMORY_POINTS = 8192
EXTERNAL_PAGE_ROWS = 256
#: Read ordinals the storage scenario fails (spread across the passes).
EXTERNAL_FAULT_ORDINALS = (2, 9, 23)


def _executor(n: int, fault_plan=None, task_timeout=None) -> ParallelJoinExecutor:
    spec = JoinSpec(epsilon=EPSILON, n_workers=N_WORKERS)
    return ParallelJoinExecutor(
        spec,
        serial_threshold=0,
        fault_plan=fault_plan,
        task_timeout=task_timeout,
    )


def _run_parallel(n: int, fault_plan=None, task_timeout=None):
    points = clustered(n, DIMS)
    sink = PairCounter()
    executor = _executor(n, fault_plan=fault_plan, task_timeout=task_timeout)
    started = time.perf_counter()
    result = executor.self_join(points, sink=sink)
    elapsed = time.perf_counter() - started
    return result, elapsed, sink.count


def _run_external(n: int, fault_plan=None):
    points = clustered(n, DIMS)
    store = PageStore(page_rows=EXTERNAL_PAGE_ROWS, fault_plan=fault_plan)
    sink = PairCounter()
    started = time.perf_counter()
    report = external_self_join(
        points,
        JoinSpec(epsilon=EPSILON),
        memory_points=EXTERNAL_MEMORY_POINTS,
        store=store,
        sink=sink,
    )
    elapsed = time.perf_counter() - started
    return report, elapsed, sink.count


def _scenarios(n: int):
    """Yield (name, runner) pairs; runner() -> (stats, seconds, pairs)."""

    def baseline():
        result, elapsed, pairs = _run_parallel(n)
        return result.stats, elapsed, pairs

    def crash_retry():
        result, elapsed, pairs = _run_parallel(n, fault_plan=FaultPlan().crash_task(0))
        return result.stats, elapsed, pairs

    def timeout_retry():
        plan = FaultPlan().delay_task(0, DELAY_SECONDS)
        result, elapsed, pairs = _run_parallel(
            n, fault_plan=plan, task_timeout=TASK_TIMEOUT
        )
        return result.stats, elapsed, pairs

    def pool_failure():
        plan = FaultPlan().fail_pool_creation()
        result, elapsed, pairs = _run_parallel(n, fault_plan=plan)
        return result.stats, elapsed, pairs

    def storage_baseline():
        report, elapsed, pairs = _run_external(n)
        return report.stats, elapsed, pairs

    def storage_retry():
        plan = FaultPlan().fail_page_read(*EXTERNAL_FAULT_ORDINALS)
        report, elapsed, pairs = _run_external(n, fault_plan=plan)
        return report.stats, elapsed, pairs

    return [
        ("baseline", baseline),
        ("crash-retry", crash_retry),
        ("timeout-retry", timeout_retry),
        ("pool-failure-degrade", pool_failure),
        ("storage-baseline", storage_baseline),
        ("storage-retry", storage_retry),
    ]


#: The external-memory scenarios compare against their own baseline.
_BASELINE_OF = {
    "crash-retry": "baseline",
    "timeout-retry": "baseline",
    "pool-failure-degrade": "baseline",
    "storage-retry": "storage-baseline",
}


def _row(name: str, stats, elapsed: float, pairs: int) -> dict:
    return {
        "scenario": name,
        "seconds": elapsed,
        "pairs": pairs,
        "tasks_retried": stats.tasks_retried,
        "tasks_timed_out": stats.tasks_timed_out,
        "degraded_to_serial": stats.degraded_to_serial,
        "faults_injected": stats.faults_injected,
        "storage_retries": stats.storage_retries,
    }


@pytest.mark.parametrize(
    "scenario", [name for name, _ in _scenarios(SMOKE_N)]
)
def test_e15_recovery_overhead(benchmark, scenario):
    benchmark.group = f"E15 resilience (N={SMOKE_N}, d={DIMS}, eps={EPSILON})"
    runner = dict(_scenarios(SMOKE_N))[scenario]

    def run():
        stats, elapsed, pairs = runner()
        return {
            "seconds": elapsed,
            "pairs": pairs,
            "distance_computations": stats.distance_computations,
            "node_pairs": stats.node_pairs_visited,
            "tasks_retried": stats.tasks_retried,
            "faults_injected": stats.faults_injected,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)
    benchmark.extra_info["tasks_retried"] = row["tasks_retried"]
    benchmark.extra_info["faults_injected"] = row["faults_injected"]


def sweep(n: int = N):
    table = Table(
        f"E15: recovery overhead under injected faults "
        f"(N={n}, d={DIMS}, eps={EPSILON}, {N_WORKERS} workers)",
        ["scenario", "time", "overhead", "retried", "timed out",
         "degraded", "io retries", "pairs"],
    )
    series = []
    seconds_of = {}
    pair_counts = set()
    for name, runner in _scenarios(n):
        stats, elapsed, pairs = runner()
        seconds_of[name] = elapsed
        row = _row(name, stats, elapsed, pairs)
        baseline_name = _BASELINE_OF.get(name)
        if baseline_name is not None:
            base = seconds_of[baseline_name]
            row["overhead_vs_baseline"] = (elapsed / base - 1.0) if base else 0.0
        # Storage scenarios join the same points but through the external
        # driver; pair counts must agree across every scenario regardless.
        pair_counts.add(pairs)
        series.append(row)
        overhead = row.get("overhead_vs_baseline")
        table.add_row(
            name,
            format_seconds(elapsed),
            f"{overhead * 100:+.0f}%" if overhead is not None else "-",
            stats.tasks_retried,
            stats.tasks_timed_out,
            "yes" if stats.degraded_to_serial else "no",
            stats.storage_retries,
            format_si(pairs),
        )
    record = {
        "experiment": "e15_resilience",
        "n": n,
        "dims": DIMS,
        "epsilon": EPSILON,
        "n_workers": N_WORKERS,
        "task_timeout": TASK_TIMEOUT,
        "cpu_count": os.cpu_count(),
        "pair_counts_agree": len(pair_counts) == 1,
        "series": series,
    }
    return table, record


def _default_out() -> str:
    return os.path.join(
        os.path.dirname(__file__), "results", "e15_resilience.json"
    )


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    table, record = sweep()
    write_record(record, _default_out())
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run ({SMOKE_N} points) for CI",
    )
    parser.add_argument(
        "--out",
        default=_default_out(),
        help="JSON output path "
        "(default: benchmarks/results/e15_resilience.json)",
    )
    args = parser.parse_args()
    table, record = sweep(n=SMOKE_N if args.smoke else N)
    table.print()
    write_record(record, args.out)
    print(f"recorded series in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
