"""E19 — crash-consistent persistence: cold re-open vs rebuild, WAL cost.

The persistence layer (``repro.storage.snapshot`` + ``repro.storage.wal``)
turns an :class:`~repro.core.incremental.IncrementalJoin` session into an
on-disk artifact: checksummed snapshots published at every compaction plus
a write-ahead log of the update batches since.  Two costs matter and are
measured here on a clustered workload:

* **cold re-open vs rebuild** — wall clock of
  ``IncrementalJoin.open(path)`` over an already-compacted index (header
  + CRC validation, memmap the arrays, replay an empty WAL) against the
  only alternative that yields the same session: a fresh insert of the
  full point set plus a compaction.  The re-open does no tree build and
  no pair emission, so the gap widens with n; the snapshot size is
  recorded alongside so bytes/point stays interpretable.
* **WAL-append overhead** — the per-batch insert cost of a persisted
  session under each ``sync_mode`` (``always`` fsyncs every append,
  ``batch`` flushes but defers fsync, ``off`` leaves flushing to the
  OS) relative to a non-persisted baseline session streaming the exact
  same batches.  Compaction is disabled (huge ``delta_threshold``) so
  the deltas isolate pure journaling cost rather than snapshot publishes.

Usage::

    python benchmarks/bench_e19_persistence.py                 # full scale
    python benchmarks/bench_e19_persistence.py --scale smoke   # seconds-sized
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time

import pytest

from _harness import clustered, scale, write_record
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.core.incremental import IncrementalJoin

REOPEN_SWEEP = [scale(10_000), scale(25_000), scale(50_000)]
WAL_BASE_N = scale(5_000)
WAL_BATCH_N = scale(400)
WAL_BATCHES = 10
DIMS = 8
EPSILON = 0.1

SMOKE_REOPEN_SWEEP = [1_000, 2_500]
SMOKE_WAL_BASE_N = 800
SMOKE_WAL_BATCH_N = 100
SMOKE_WAL_BATCHES = 4

#: sync_mode sweep for the WAL-overhead half; ``None`` is the
#: non-persisted baseline every other row is normalized against.
SYNC_MODES = [None, "off", "batch", "always"]

#: Large enough that no insert in the WAL sweep triggers auto-compaction,
#: so the measured deltas are journaling cost, not snapshot publishes.
NO_COMPACT_THRESHOLD = 10_000_000


def measure_reopen(n: int) -> dict:
    """Persist an n-point compacted index, then time re-open vs rebuild."""
    points = clustered(n, DIMS)
    spec = JoinSpec(epsilon=EPSILON)
    workdir = tempfile.mkdtemp(prefix="e19-reopen-")
    path = os.path.join(workdir, "index")
    try:
        started = time.perf_counter()
        with IncrementalJoin.open(path, spec=spec) as session:
            session.insert(points)
            session.compact()
        build_seconds = time.perf_counter() - started

        started = time.perf_counter()
        with IncrementalJoin.open(path) as session:
            reopen_seconds = time.perf_counter() - started
            stats = session.stats
            if session.n_live != n:
                raise AssertionError(
                    f"re-opened session lost points: {session.n_live} != {n}"
                )
            record = {
                "n": n,
                "build_seconds": build_seconds,
                "reopen_seconds": reopen_seconds,
                "speedup": build_seconds / reopen_seconds
                if reopen_seconds
                else 0.0,
                "snapshot_bytes": stats.snapshot_bytes,
                "bytes_per_point": stats.snapshot_bytes / n,
                "recovery_seconds": stats.recovery_seconds,
                "wal_records_replayed": stats.wal_records_replayed,
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return record


def measure_wal_overhead(base_n: int, batch_n: int, n_batches: int) -> list:
    """Stream identical batches under each sync_mode; return per-mode rows."""
    stream = clustered(base_n + n_batches * batch_n, DIMS)
    base, rest = stream[:base_n], stream[base_n:]
    spec = JoinSpec(epsilon=EPSILON, delta_threshold=NO_COMPACT_THRESHOLD)

    rows = []
    for mode in SYNC_MODES:
        workdir = None
        if mode is None:
            session = IncrementalJoin(spec)
        else:
            workdir = tempfile.mkdtemp(prefix="e19-wal-")
            session = IncrementalJoin.open(
                os.path.join(workdir, "index"), spec=spec, sync_mode=mode
            )
        try:
            session.insert(base)
            total = 0.0
            for index in range(n_batches):
                batch = rest[index * batch_n : (index + 1) * batch_n]
                started = time.perf_counter()
                session.insert(batch)
                total += time.perf_counter() - started
            rows.append(
                {
                    "sync_mode": mode or "none",
                    "insert_total_seconds": total,
                    "seconds_per_batch": total / n_batches,
                }
            )
        finally:
            session.close()
            if workdir is not None:
                shutil.rmtree(workdir, ignore_errors=True)

    baseline = rows[0]["insert_total_seconds"]
    for row in rows:
        row["overhead_vs_baseline"] = (
            row["insert_total_seconds"] / baseline if baseline else 0.0
        )
    return rows


@pytest.mark.parametrize("n", [SMOKE_REOPEN_SWEEP[-1]])
def test_e19_cold_reopen(benchmark, n):
    benchmark.group = f"E19 cold re-open vs rebuild (d={DIMS}, eps={EPSILON})"

    def run():
        return measure_reopen(n)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = record["speedup"]
    benchmark.extra_info["snapshot_bytes"] = record["snapshot_bytes"]


def sweep(reopen_sweep=None, wal_base_n=WAL_BASE_N, wal_batch_n=WAL_BATCH_N,
          wal_batches=WAL_BATCHES):
    reopen_sweep = reopen_sweep or REOPEN_SWEEP
    reopen_series = [measure_reopen(n) for n in reopen_sweep]
    wal_series = measure_wal_overhead(wal_base_n, wal_batch_n, wal_batches)

    record = {
        "experiment": "e19_persistence",
        "dims": DIMS,
        "epsilon": EPSILON,
        "reopen_series": reopen_series,
        "wal_base_n": wal_base_n,
        "wal_batch_n": wal_batch_n,
        "wal_batches": wal_batches,
        "wal_series": wal_series,
    }

    reopen_table = Table(
        f"E19a: cold re-open vs insert+compact rebuild (clusters, d={DIMS}, "
        f"eps={EPSILON})",
        ["n", "rebuild", "re-open", "speedup", "snapshot", "bytes/pt"],
    )
    for row in reopen_series:
        reopen_table.add_row(
            format_si(row["n"]),
            format_seconds(row["build_seconds"]),
            format_seconds(row["reopen_seconds"]),
            f"{row['speedup']:.0f}x",
            format_si(row["snapshot_bytes"]) + "B",
            f"{row['bytes_per_point']:.0f}",
        )

    wal_table = Table(
        f"E19b: WAL-append overhead per insert batch (base={wal_base_n}, "
        f"{wal_batches} batches of {wal_batch_n})",
        ["sync_mode", "stream total", "per batch", "vs no persist"],
    )
    for row in wal_series:
        wal_table.add_row(
            row["sync_mode"],
            format_seconds(row["insert_total_seconds"]),
            format_seconds(row["seconds_per_batch"]),
            f"{row['overhead_vs_baseline']:.2f}x",
        )
    return [reopen_table, wal_table], record


def _default_out() -> str:
    return os.path.join(
        os.path.dirname(__file__), "results", "e19_persistence.json"
    )


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    tables, record = sweep()
    write_record(record, _default_out())
    for table in tables[:-1]:
        table.print()
        print()
    return tables[-1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: re-open at n={SMOKE_REOPEN_SWEEP}, WAL stream of "
        f"{SMOKE_WAL_BATCHES} batches of {SMOKE_WAL_BATCH_N} (for CI)",
    )
    parser.add_argument("--out", help="results JSON path (default: results/)")
    args = parser.parse_args()
    if args.scale == "smoke":
        tables, record = sweep(
            SMOKE_REOPEN_SWEEP,
            SMOKE_WAL_BASE_N,
            SMOKE_WAL_BATCH_N,
            SMOKE_WAL_BATCHES,
        )
    else:
        tables, record = sweep()
    write_record(record, args.out or _default_out())
    for table in tables:
        table.print()
        print()
    fastest = record["reopen_series"][-1]
    print(
        f"cold re-open at n={fastest['n']}: "
        f"{format_seconds(fastest['reopen_seconds'])} vs rebuild "
        f"{format_seconds(fastest['build_seconds'])} "
        f"({fastest['speedup']:.0f}x); WAL overhead "
        + ", ".join(
            f"{r['sync_mode']} {r['overhead_vs_baseline']:.2f}x"
            for r in record["wal_series"][1:]
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
