"""E10 — Ablations of the eps-kdB design choices.

Three design decisions DESIGN.md calls out, each toggled in isolation
(results are identical by construction — the tests assert so — only the
work changes):

* adjacency pruning: joining only neighbor cells vs all sibling pairs;
* the leaf sort-merge dimension: an unsplit dimension (default) vs the
  first (always-split) dimension;
* split-dimension order: natural order vs *biased* order (most
  spread-out dimensions first), on anisotropic data where it matters.
"""

import numpy as np
import pytest

from _harness import attach_info, clustered, measure_row, scale
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.core import epsilon_kdb_self_join

N = scale(8000)
DIMS = 16
EPSILON = 0.1


def anisotropic(n: int, dims: int, seed: int = 0) -> np.ndarray:
    """Clustered data whose later dimensions carry most of the spread —
    the adversarial case for natural split order."""
    points = clustered(n, dims, seed=seed).copy()
    scales = np.linspace(0.05, 1.0, dims)
    return points * scales


def biased_order(points: np.ndarray) -> list:
    spreads = points.max(axis=0) - points.min(axis=0)
    return list(np.argsort(-spreads))


VARIANTS = {
    "default": lambda pts: JoinSpec(epsilon=EPSILON),
    "no-adjacency-pruning": lambda pts: JoinSpec(
        epsilon=EPSILON, adjacency_pruning=False
    ),
    "sort-on-split-dim": lambda pts: JoinSpec(epsilon=EPSILON, sort_dim=0),
    "natural-order(aniso)": lambda pts: JoinSpec(epsilon=EPSILON),
    "biased-order(aniso)": lambda pts: JoinSpec(
        epsilon=EPSILON, split_order=biased_order(pts)
    ),
}


def points_for(variant: str) -> np.ndarray:
    if variant.endswith("(aniso)"):
        return anisotropic(N, DIMS)
    return clustered(N, DIMS)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_e10_ablation(benchmark, variant):
    points = points_for(variant)
    spec = VARIANTS[variant](points)
    benchmark.group = f"E10 eps-kdB ablations (N={N}, d={DIMS})"

    def run():
        return measure_row(epsilon_kdb_self_join, points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def test_e10_ablations_do_not_change_results():
    points = clustered(scale(1500), DIMS)
    reference = epsilon_kdb_self_join(points, JoinSpec(epsilon=EPSILON)).pairs
    for spec in (
        JoinSpec(epsilon=EPSILON, adjacency_pruning=False),
        JoinSpec(epsilon=EPSILON, sort_dim=0),
        JoinSpec(epsilon=EPSILON, split_order=biased_order(points)),
    ):
        pairs = epsilon_kdb_self_join(points, spec).pairs
        assert pairs.shape == reference.shape and (pairs == reference).all()


def run_experiment():
    table = Table(
        f"E10: eps-kdB ablations (N={N}, d={DIMS}, eps={EPSILON})",
        ["variant", "time", "dist comps", "node pairs", "pairs"],
    )
    for variant in VARIANTS:
        points = points_for(variant)
        spec = VARIANTS[variant](points)
        row = measure_row(epsilon_kdb_self_join, points, spec)
        table.add_row(
            variant,
            format_seconds(row["seconds"]),
            format_si(row["distance_computations"]),
            format_si(row["node_pairs"]),
            format_si(row["pairs"]),
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
