"""E8 — Two-set (R joined with S) joins vs cluster overlap.

Two clustered relations whose cluster layouts overlap by a controlled
fraction.  Published shape: two-tree join cost tracks the overlap — with
disjoint layouts the synchronized traversals prune almost everything;
with identical layouts the cost approaches the self-join regime — and the
eps-kdB join beats the R-tree join throughout.
"""

import numpy as np
import pytest

from _harness import attach_info, scale
from repro import JoinSpec, PairCounter
from repro.analysis import Table, format_seconds, format_si
from repro.baselines import rtree_join
from repro.core import epsilon_kdb_join
from repro.datasets import gaussian_clusters

N_R = scale(6000)
N_S = scale(6000)
DIMS = 16
EPSILON = 0.1
OVERLAPS = [0.0, 0.25, 0.5, 1.0]

ALGORITHMS = {"eps-kdB": epsilon_kdb_join, "R-tree": rtree_join}


def make_pair(overlap: float):
    """R and an S whose points come from R's cluster layout with
    probability ``overlap`` and from a disjoint layout otherwise."""
    left = gaussian_clusters(N_R, DIMS, clusters=10, sigma=0.05, seed=100)
    shared = gaussian_clusters(N_S, DIMS, clusters=10, sigma=0.05, seed=100)
    disjoint = gaussian_clusters(N_S, DIMS, clusters=10, sigma=0.05, seed=200)
    rng = np.random.default_rng(300)
    take_shared = rng.random(N_S) < overlap
    right = np.where(take_shared[:, None], shared, disjoint)
    return left, right


def measure(algorithm, left, right, spec):
    import time

    sink = PairCounter()
    started = time.perf_counter()
    result = algorithm(left, right, spec, sink=sink)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "pairs": result.stats.pairs_emitted,
        "distance_computations": result.stats.distance_computations,
        "node_pairs": result.stats.node_pairs_visited,
    }


@pytest.mark.parametrize("overlap", OVERLAPS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e8_overlap_sweep(benchmark, algorithm, overlap):
    left, right = make_pair(overlap)
    spec = JoinSpec(epsilon=EPSILON)
    benchmark.group = f"E8 two-set join (N={N_R}x{N_S}, d={DIMS}) overlap={overlap}"

    def run():
        return measure(ALGORITHMS[algorithm], left, right, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    table = Table(
        f"E8: two-set join time vs cluster overlap "
        f"(N={N_R}x{N_S}, d={DIMS}, eps={EPSILON})",
        ["overlap", *[f"{a} time" for a in ALGORITHMS], "pairs"],
    )
    spec = JoinSpec(epsilon=EPSILON)
    for overlap in OVERLAPS:
        left, right = make_pair(overlap)
        rows = {
            name: measure(fn, left, right, spec)
            for name, fn in ALGORITHMS.items()
        }
        table.add_row(
            overlap,
            *[format_seconds(rows[name]["seconds"]) for name in ALGORITHMS],
            format_si(next(iter(rows.values()))["pairs"]),
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
