"""E12 (supplementary) — feature-filter quality for sequence matching.

The similar-time-sequences pipeline joins DFT feature vectors and
verifies candidates against the true sequence distance.  This experiment
sweeps the number of kept coefficients and reports the classic
candidate-ratio curve: few coefficients give a loose filter (many false
positives to verify) but a cheap low-dimensional join; more coefficients
tighten the filter at higher join dimensionality.  False dismissals must
be zero everywhere (the Parseval bound; asserted by a test below).
"""

import time

import pytest

from _harness import scale
from repro.analysis import Table, format_seconds, format_si
from repro.apps.sequences import find_similar_sequences
from repro.datasets import random_walk_series

SERIES = scale(3000)
LENGTH = 128
EPSILON = 5.0
COEFFICIENTS = [2, 4, 8, 16, 32]


def dataset():
    return random_walk_series(
        SERIES, LENGTH, families=15, family_mix=0.75, seed=2024
    )


@pytest.mark.parametrize("coefficients", COEFFICIENTS)
def test_e12_filter_sweep(benchmark, coefficients):
    series = dataset()
    benchmark.group = (
        f"E12 sequence-filter quality (N={SERIES}, len={LENGTH}, "
        f"eps={EPSILON})"
    )

    def run():
        result = find_similar_sequences(
            series, epsilon=EPSILON, coefficients=coefficients
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["candidates"] = result.candidates
    benchmark.extra_info["matches"] = result.matches
    benchmark.extra_info["candidate_ratio"] = round(result.candidate_ratio, 2)


def test_e12_no_false_dismissals():
    """Every coefficient count returns exactly the same verified set."""
    series = random_walk_series(600, LENGTH, families=8, family_mix=0.75, seed=7)
    reference = None
    for coefficients in COEFFICIENTS:
        result = find_similar_sequences(
            series, epsilon=EPSILON, coefficients=coefficients
        )
        pairs = [tuple(p) for p in result.pairs]
        if reference is None:
            reference = pairs
        assert pairs == reference


def run_experiment():
    series = dataset()
    table = Table(
        f"E12: DFT filter quality for sequence matching "
        f"(N={SERIES}, len={LENGTH}, eps={EPSILON})",
        ["coefficients", "join dims", "time", "candidates", "matches",
         "candidate ratio"],
    )
    for coefficients in COEFFICIENTS:
        started = time.perf_counter()
        result = find_similar_sequences(
            series, epsilon=EPSILON, coefficients=coefficients
        )
        elapsed = time.perf_counter() - started
        ratio = (
            f"{result.candidate_ratio:.2f}"
            if result.matches
            else "-"
        )
        table.add_row(
            coefficients,
            2 * coefficients,
            format_seconds(elapsed),
            format_si(result.candidates),
            format_si(result.matches),
            ratio,
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
