"""E2 — Self-join time vs dimensionality (curse of dimensionality).

Gaussian-cluster workload at every dimensionality, with epsilon scaled as
``0.1 * sqrt(d / 16)`` so the threshold tracks how L2 distances grow with
dimension (keeping the *geometry* of the query comparable; the output
still thins out with d, which is the curse itself and is reported in the
pairs column).  Published shape: the eps-kdB tree stays near-flat in d —
the leaf threshold means only the first few dimensions are ever split —
while the R-tree join and especially sort-merge grow steadily; the gap
over sort-merge widens by an order of magnitude across the sweep.
"""

import pytest

from _harness import attach_info, clustered, measure_row, scale, series_table
from repro import JoinSpec
from repro.baselines import rplus_self_join, rtree_self_join, sort_merge_self_join
from repro.core import epsilon_kdb_self_join

N = scale(6000)
DIMENSIONS = [4, 8, 16, 24, 32]

ALGORITHMS = {
    "eps-kdB": epsilon_kdb_self_join,
    "R+-tree": rplus_self_join,
    "R-tree": rtree_self_join,
    "sort-merge": sort_merge_self_join,
}


def epsilon_for(dims: int) -> float:
    return 0.1 * (dims / 16.0) ** 0.5


@pytest.mark.parametrize("dims", DIMENSIONS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e2_dimensionality_sweep(benchmark, algorithm, dims):
    points = clustered(N, dims)
    spec = JoinSpec(epsilon=epsilon_for(dims))
    benchmark.group = f"E2 time vs dimensionality (N={N}) d={dims}"

    def run():
        return measure_row(ALGORITHMS[algorithm], points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    rows = {}
    for dims in DIMENSIONS:
        points = clustered(N, dims)
        spec = JoinSpec(epsilon=epsilon_for(dims))
        rows[f"d={dims} eps={spec.epsilon:.3f}"] = {
            name: measure_row(fn, points, spec)
            for name, fn in ALGORITHMS.items()
        }
    return series_table(
        f"E2: self-join time vs dimensionality (clusters, N={N}, "
        "eps scaled with sqrt(d))",
        "sweep",
        rows,
    )


if __name__ == "__main__":
    run_experiment().print()
