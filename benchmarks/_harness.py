"""Shared machinery for the experiment benchmarks.

Every experiment module E1..E10 can run two ways:

* ``pytest benchmarks/ --benchmark-only`` — each sweep point of each
  figure becomes a pytest-benchmark entry (grouped per experiment), with
  the machine-independent counters attached as ``extra_info``.
* ``python benchmarks/bench_eX_*.py`` — prints the experiment's series
  as a plain table shaped like the paper's figure, which is what
  EXPERIMENTS.md records.

``REPRO_BENCH_SCALE`` (a float, default 1.0) multiplies every dataset
size, so the same harness reproduces the sweep at paper scale on a
faster machine.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from functools import lru_cache
from typing import Callable, Dict

import numpy as np

from repro import JoinSpec, PairCounter
from repro.analysis import Table, format_seconds, format_si
from repro.baselines import (
    brute_force_self_join,
    grid_self_join,
    rplus_self_join,
    rtree_self_join,
    sort_merge_self_join,
    zorder_self_join,
)
from repro.core import epsilon_kdb_self_join
from repro.datasets import (
    color_histograms,
    gaussian_clusters,
    timeseries_features,
    uniform_points,
)


def scale(n: int) -> int:
    """Apply the REPRO_BENCH_SCALE multiplier to a dataset size."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(4, int(n * factor))


def _git_sha() -> str:
    """The repo's HEAD commit, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_metadata() -> Dict[str, object]:
    """Where a benchmark record was measured.

    Stamped into every ``benchmarks/results/*.json`` so numbers are
    interpretable after the fact (a 2-core CI runner and a 32-core
    workstation produce very different speedup curves).
    """
    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
        "bench_scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "argv": list(sys.argv),
    }


def write_record(record: dict, out: str) -> None:
    """Write one experiment's JSON record, stamped with the environment."""
    record = dict(record)
    record.setdefault("environment", environment_metadata())
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")


#: The self-join algorithm roster every comparison experiment sweeps.
SELF_JOIN_ALGORITHMS: Dict[str, Callable] = {
    "eps-kdB": epsilon_kdb_self_join,
    "R+-tree": rplus_self_join,
    "R-tree": rtree_self_join,
    "Z-order": zorder_self_join,
    "sort-merge": sort_merge_self_join,
    "grid": grid_self_join,
    "brute-force": brute_force_self_join,
}


@lru_cache(maxsize=None)
def clustered(n: int, dims: int, seed: int = 0) -> np.ndarray:
    return gaussian_clusters(n, dims, clusters=10, sigma=0.05, seed=seed)


@lru_cache(maxsize=None)
def uniform(n: int, dims: int, seed: int = 0) -> np.ndarray:
    return uniform_points(n, dims, seed=seed)


@lru_cache(maxsize=None)
def timeseries(n: int, coefficients: int = 8, seed: int = 0) -> np.ndarray:
    return timeseries_features(n, length=128, coefficients=coefficients, seed=seed)


@lru_cache(maxsize=None)
def images(n: int, bins: int = 32, seed: int = 0) -> np.ndarray:
    return color_histograms(n, bins=bins, seed=seed)


def run_counted(algorithm: Callable, points: np.ndarray, spec: JoinSpec, **kwargs):
    """Run a join with a counting sink; returns (result, seconds)."""
    sink = PairCounter()
    started = time.perf_counter()
    result = algorithm(points, spec, sink=sink, **kwargs)
    elapsed = time.perf_counter() - started
    return result, elapsed


def measure_row(algorithm: Callable, points: np.ndarray, spec: JoinSpec, **kwargs):
    """One series point: dict with time, pairs, and work counters."""
    result, elapsed = run_counted(algorithm, points, spec, **kwargs)
    return {
        "seconds": elapsed,
        "pairs": result.stats.pairs_emitted,
        "distance_computations": result.stats.distance_computations,
        "node_pairs": result.stats.node_pairs_visited,
    }


def attach_info(benchmark, row: dict) -> None:
    """Attach the machine-independent counters to a pytest-benchmark entry."""
    for key in ("pairs", "distance_computations", "node_pairs"):
        benchmark.extra_info[key] = row[key]


def series_table(title: str, sweep_label: str, rows: dict) -> Table:
    """Render {sweep_value: {algorithm: row}} as a figure-shaped table."""
    algorithms = list(next(iter(rows.values())).keys())
    table = Table(
        title,
        [sweep_label, *[f"{a} time" for a in algorithms], "pairs"],
    )
    for sweep_value, per_algorithm in rows.items():
        pairs = next(iter(per_algorithm.values()))["pairs"]
        table.add_row(
            sweep_value,
            *[format_seconds(per_algorithm[a]["seconds"]) for a in algorithms],
            format_si(pairs),
        )
    return table
