"""E21 — Kernel backends: numpy vs numba over the leaf candidate stream.

The cascade's work is a per-row survivor pass over candidate tiles; the
numpy backend must vectorize it stage by stage (compacting between
stages), while the numba backend short-circuits per *row* per
*dimension* in one compiled loop.  This experiment pits the two
backends against each other on the same band-sweep candidate sets used
by E16 — across dimensionality (d = 8..64 at the E2 crossover epsilon)
and across work-queue tile sizes — verifying byte-identical masks at
every point, then closes the loop with end-to-end self-joins per
backend.

On a machine without numba the experiment still runs and records an
honest ``numba_available: false``: the numpy rows stand alone and no
speedup is claimed.  The acceptance target (numba >= 2x at d >= 16) is
demonstrated on the CI backend-matrix job, which installs numba.

Usage::

    python benchmarks/bench_e21_backends.py                 # full scale
    python benchmarks/bench_e21_backends.py --scale smoke   # seconds-sized
    python benchmarks/bench_e21_backends.py --dims 16 32
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np
import pytest

from _harness import attach_info, scale, uniform, write_record
from bench_e16_kernels import band_candidates, crossover_epsilon
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.core import PairCounter, epsilon_kdb_self_join, numba_available
from repro.core.backends import DEFAULT_TILE_ROWS, LeafBatchQueue, resolve_kernel_backend
from repro.core.kernels import build_kernel_context
from repro.core.result import JoinStats

DIM_SWEEP = [8, 16, 32, 64]
TILE_SWEEP = [4_096, 16_384, DEFAULT_TILE_ROWS, 262_144]
TILE_DIMS = 32
N = scale(20_000)
CANDIDATE_CAP = scale(1_500_000)
REPEATS = 3

SMOKE_DIMS = [8, 16]
SMOKE_TILES = [4_096, DEFAULT_TILE_ROWS]
SMOKE_N = 4_000
SMOKE_CAP = 150_000
SMOKE_REPEATS = 2


def backend_names():
    """Backends to race: numpy always, numba only when importable."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return names


def _context_for(spec: JoinSpec, points: np.ndarray, backend_name: str):
    context = build_kernel_context(
        JoinSpec(
            epsilon=spec.epsilon,
            metric=spec.metric,
            cascade=spec.cascade,
            kernel_backend=backend_name,
        ),
        points,
        sort_dim=0,
    )
    assert context is not None, "cascade must engage for every swept d"
    return context


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_backends(dims: int, n: int = N, cap: int = CANDIDATE_CAP,
                     repeats: int = REPEATS):
    """Race the backends over one band-sweep candidate set."""
    eps = crossover_epsilon(dims)
    points = uniform(n, dims)
    rows_a, rows_b = band_candidates(points, eps, cap)
    spec = JoinSpec(epsilon=eps, cascade="auto")

    row = {
        "dims": dims,
        "epsilon": eps,
        "n": n,
        "candidates": int(len(rows_a)),
    }
    masks = {}
    for name in backend_names():
        context = _context_for(spec, points, name)
        # Warm-up outside the timed region: numba pays one-time JIT
        # compilation on the first tile, which is amortized in any real
        # join and must not be charged to the steady-state number.
        masks[name] = context.within_rows(rows_a, rows_b)
        row[f"{name}_seconds"] = _best_of(
            lambda: context.within_rows(rows_a, rows_b), repeats
        )
        stats = JoinStats()
        context.within_rows(rows_a, rows_b, stats)
        row[f"{name}_coordinates_touched"] = stats.coordinates_touched
    for name, mask in masks.items():
        if not np.array_equal(mask, masks["numpy"]):
            raise AssertionError(
                f"backend {name!r} mask diverged from numpy at d={dims}"
            )
    row["matches"] = int(masks["numpy"].sum())
    if "numba_seconds" in row and row["numba_seconds"]:
        row["speedup"] = row["numpy_seconds"] / row["numba_seconds"]
    return row


def measure_tiles(dims: int = TILE_DIMS, tile_sweep=None, n: int = N,
                  cap: int = CANDIDATE_CAP, repeats: int = REPEATS):
    """Sweep the work-queue tile size at fixed d, per backend.

    The candidate stream is re-fed through a :class:`LeafBatchQueue` in
    leaf-sized pieces so the measurement includes the queue's copy and
    flush overhead — the number a join actually pays.
    """
    eps = crossover_epsilon(dims)
    points = uniform(n, dims)
    rows_a, rows_b = band_candidates(points, eps, cap)
    spec = JoinSpec(epsilon=eps, cascade="auto")
    # Feed in uneven leaf-sized chunks, like the band sweep does.
    bounds = np.unique(
        np.random.default_rng(0).integers(0, len(rows_a), size=200)
    )
    chunks = [
        (rows_a[lo:hi], rows_b[lo:hi])
        for lo, hi in zip(np.r_[0, bounds], np.r_[bounds, len(rows_a)])
        if hi > lo
    ]

    rows = []
    reference = None
    for name in backend_names():
        context = _context_for(spec, points, name)
        context.within_rows(rows_a[:1], rows_b[:1])  # JIT warm-up
        for tile_rows in (tile_sweep or TILE_SWEEP):
            kept = []

            def run():
                kept.clear()
                queue = LeafBatchQueue(
                    context.within_rows,
                    lambda a, b: kept.append((a, b)),
                    tile_rows=tile_rows,
                )
                for chunk_a, chunk_b in chunks:
                    queue.add(chunk_a, chunk_b)
                queue.flush()

            seconds = _best_of(run, repeats)
            run()
            emitted = (
                np.concatenate([a for a, _ in kept]) if kept else np.empty(0),
                np.concatenate([b for _, b in kept]) if kept else np.empty(0),
            )
            if reference is None:
                reference = emitted
            else:
                if not (
                    np.array_equal(emitted[0], reference[0])
                    and np.array_equal(emitted[1], reference[1])
                ):
                    raise AssertionError(
                        f"tile_rows={tile_rows} backend={name} changed "
                        "the emitted pair stream"
                    )
            rows.append({
                "backend": name,
                "tile_rows": tile_rows,
                "dims": dims,
                "candidates": int(len(rows_a)),
                "seconds": seconds,
                "pairs": int(len(emitted[0])),
            })
    return rows


def measure_end_to_end(dims: int, n: int, repeats: int):
    """Whole self-join per backend; pairs must agree byte for byte."""
    eps = crossover_epsilon(dims)
    points = uniform(n, dims)
    row = {"dims": dims, "epsilon": eps, "n": n}
    counts = {}
    for name in backend_names():
        spec = JoinSpec(epsilon=eps, cascade="auto", kernel_backend=name)

        def run():
            sink = PairCounter()
            epsilon_kdb_self_join(points, spec, sink=sink)
            return sink.count

        run()  # JIT warm-up for the numba leg
        row[f"join_seconds_{name}"] = _best_of(run, repeats)
        counts[name] = run()
    assert len(set(counts.values())) == 1, counts
    row["pairs"] = counts["numpy"]
    if "join_seconds_numba" in row and row["join_seconds_numba"]:
        row["join_speedup"] = (
            row["join_seconds_numpy"] / row["join_seconds_numba"]
        )
    return row


@pytest.mark.parametrize("dims", DIM_SWEEP)
def test_e21_backend_sweep(benchmark, dims):
    benchmark.group = f"E21 kernel backends (N={N}, crossover eps)"

    def run():
        row = measure_backends(dims)
        return {
            "seconds": row["numpy_seconds"],
            "numba_seconds": row.get("numba_seconds"),
            "speedup": row.get("speedup"),
            "candidates": row["candidates"],
            "matches": row["matches"],
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)
    if row["speedup"] is not None:
        benchmark.extra_info["speedup"] = row["speedup"]


def sweep(dim_sweep=None, tile_sweep=None, n: int = N,
          cap: int = CANDIDATE_CAP, repeats: int = REPEATS):
    dim_sweep = list(dim_sweep or DIM_SWEEP)
    have_numba = numba_available()
    table = Table(
        f"E21: kernel backends over leaf candidates "
        f"(N={n}, uniform, eps=0.1*sqrt(d/16), "
        f"numba={'yes' if have_numba else 'NOT INSTALLED'})",
        ["d", "candidates", "numpy", "numba", "speedup", "join speedup"],
    )
    series = []
    for dims in dim_sweep:
        row = measure_backends(dims, n=n, cap=cap, repeats=repeats)
        row.update(measure_end_to_end(dims, n=n, repeats=repeats))
        series.append(row)
        table.add_row(
            dims,
            format_si(row["candidates"]),
            format_seconds(row["numpy_seconds"]),
            format_seconds(row["numba_seconds"])
            if "numba_seconds" in row else "n/a",
            f"{row['speedup']:.2f}x" if "speedup" in row else "n/a",
            f"{row['join_speedup']:.2f}x" if "join_speedup" in row else "n/a",
        )
    tile_series = measure_tiles(
        dims=min(TILE_DIMS, max(dim_sweep)), tile_sweep=tile_sweep,
        n=n, cap=cap, repeats=repeats,
    )
    tile_table = Table(
        f"E21: work-queue tile size (d={min(TILE_DIMS, max(dim_sweep))})",
        ["backend", "tile rows", "candidates", "seconds", "pairs"],
    )
    for row in tile_series:
        tile_table.add_row(
            row["backend"],
            format_si(row["tile_rows"]),
            format_si(row["candidates"]),
            format_seconds(row["seconds"]),
            format_si(row["pairs"]),
        )
    record = {
        "experiment": "e21_backends",
        "n": n,
        "candidate_cap": cap,
        "repeats": repeats,
        "numba_available": have_numba,
        "series": series,
        "tile_series": tile_series,
    }
    return [table, tile_table], record


def _default_out() -> str:
    return os.path.join(
        os.path.dirname(__file__), "results", "e21_backends.json"
    )


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    tables, record = sweep()
    write_record(record, _default_out())
    for table in tables[1:]:
        table.print()
    return tables[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: {SMOKE_N} points, dims {SMOKE_DIMS} (for CI)",
    )
    parser.add_argument(
        "--dims", type=int, nargs="+", help="dimensionalities to sweep"
    )
    parser.add_argument(
        "--out",
        default=_default_out(),
        help="JSON output path (default: benchmarks/results/e21_backends.json)",
    )
    args = parser.parse_args()
    smoke = args.scale == "smoke"
    tables, record = sweep(
        dim_sweep=args.dims or (SMOKE_DIMS if smoke else DIM_SWEEP),
        tile_sweep=SMOKE_TILES if smoke else TILE_SWEEP,
        n=SMOKE_N if smoke else N,
        cap=SMOKE_CAP if smoke else CANDIDATE_CAP,
        repeats=SMOKE_REPEATS if smoke else REPEATS,
    )
    for table in tables:
        table.print()
    write_record(record, args.out)
    print(f"recorded series in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
