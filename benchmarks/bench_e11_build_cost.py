"""E11 (supplementary) — index construction cost.

The paper's engineering bet is that the ε-kdB tree is cheap enough to
build *per join* on the fly, unlike a general-purpose index that must be
amortized across queries.  This experiment measures construction time
against join (traversal) time per algorithm and dataset size: the tree's
build share should be a small, shrinking fraction, and absolute build
cost should stay well below a single R-variant bulk load + join.
"""

import time

import pytest

from _harness import attach_info, clustered, scale
from repro import JoinSpec, PairCounter
from repro.analysis import Table, format_seconds
from repro.baselines import rplus_self_join, rtree_self_join
from repro.core import epsilon_kdb_self_join

SIZES = [scale(4000), scale(8000), scale(16000)]
DIMS = 16
EPSILON = 0.1

ALGORITHMS = {
    "eps-kdB": epsilon_kdb_self_join,
    "R+-tree": rplus_self_join,
    "R-tree": rtree_self_join,
}


def measure(algorithm, n):
    points = clustered(n, DIMS)
    spec = JoinSpec(epsilon=EPSILON)
    sink = PairCounter()
    started = time.perf_counter()
    result = algorithm(points, spec, sink=sink)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "build": result.build_seconds,
        "join": result.join_seconds,
        "pairs": sink.count,
        "distance_computations": result.stats.distance_computations,
        "node_pairs": result.stats.node_pairs_visited,
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e11_build_cost(benchmark, algorithm, n):
    benchmark.group = f"E11 build vs join cost (d={DIMS}, eps={EPSILON}) N={n}"

    def run():
        return measure(ALGORITHMS[algorithm], n)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)
    benchmark.extra_info["build_seconds"] = row["build"]
    benchmark.extra_info["join_seconds"] = row["join"]


def run_experiment():
    table = Table(
        f"E11: index build vs join traversal time (clusters, d={DIMS}, "
        f"eps={EPSILON})",
        ["N", "algorithm", "build", "join", "build share"],
    )
    for n in SIZES:
        for name, algorithm in ALGORITHMS.items():
            row = measure(algorithm, n)
            total = row["build"] + row["join"]
            table.add_row(
                n,
                name,
                format_seconds(row["build"]),
                format_seconds(row["join"]),
                f"{row['build'] / total:.0%}" if total else "-",
            )
    return table


if __name__ == "__main__":
    run_experiment().print()
