"""E18 — incremental streaming join vs per-batch full rebuilds.

The paper's join is a batch operation: any change to the input means
rebuilding the ε-kdB tree and re-running the whole join.  The
incremental engine (:class:`~repro.core.incremental.IncrementalJoin`)
amortizes that: each update batch joins only against the delta buffer
and the compacted base, emitting exactly the new (or retracted) pairs.
Measured here, on a clustered workload streamed as insert/delete
batches over a pre-seeded base:

* per-batch wall clock of the incremental session vs a from-scratch
  ``epsilon_kdb_self_join`` over the current live point set (the only
  way to get the same answer without the engine), and the cumulative
  speedup;
* the one-pass join-size sketch vs the true pair count after every
  batch — the estimate/truth ratio must stay within the documented
  factor-of-:data:`ESTIMATOR_BOUND` band (the sketch counts same-cell
  pairs of one randomly-shifted grid, a constant-factor proxy for the
  epsilon join size; see docs/streaming.md);
* exactness: the accumulated emitted-minus-retracted pairs are compared
  byte-for-byte against the final from-scratch join — the run aborts on
  any divergence.

Usage::

    python benchmarks/bench_e18_incremental.py                 # full scale
    python benchmarks/bench_e18_incremental.py --scale smoke   # seconds-sized
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np
import pytest

from _harness import clustered, scale, write_record
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.core import epsilon_kdb_self_join
from repro.core.incremental import IncrementalJoin, subtract_pairs

BASE_N = scale(15_000)
BATCH_N = scale(500)
N_BATCHES = 8
DIMS = 8
EPSILON = 0.25
DELETE_EVERY = 3  # every 3rd batch deletes instead of inserting

SMOKE_BASE_N = 1_200
SMOKE_BATCH_N = 150
SMOKE_BATCHES = 4

#: Documented estimator band: estimate/truth stays within this factor on
#: the E18 workload (empirically ~1-4x; the sketch counts same-cell
#: pairs, which over-counts the epsilon ball by a data-dependent but
#: bounded constant).
ESTIMATOR_BOUND = 10.0

_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def _accumulate(store, pairs):
    if len(pairs):
        store.append(pairs)


def measure(base_n: int, batch_n: int, n_batches: int):
    """One streaming run; returns the per-batch series and totals."""
    spec = JoinSpec(epsilon=EPSILON)
    stream = clustered(base_n + n_batches * batch_n, DIMS)
    base, rest = stream[:base_n], stream[base_n:]
    rng = np.random.default_rng(18)

    session = IncrementalJoin(spec)
    added, retracted = [], []
    delta = session.insert(base)
    _accumulate(added, delta.added)

    series = []
    incremental_total = 0.0
    rebuild_total = 0.0
    offset = 0
    for index in range(n_batches):
        if index > 0 and index % DELETE_EVERY == 0:
            live = session.live_ids()
            victims = rng.choice(live, size=batch_n // 2, replace=False)
            op = "delete"
            started = time.perf_counter()
            delta = session.delete(victims)
            incremental_seconds = time.perf_counter() - started
            _accumulate(retracted, delta.retracted)
        else:
            batch = rest[offset : offset + batch_n]
            offset += batch_n
            op = "insert"
            started = time.perf_counter()
            delta = session.insert(batch)
            incremental_seconds = time.perf_counter() - started
            _accumulate(added, delta.added)

        live_points = session.live_points()
        started = time.perf_counter()
        scratch = epsilon_kdb_self_join(live_points, spec)
        rebuild_seconds = time.perf_counter() - started

        truth = len(scratch.pairs)
        estimate = session.estimated_join_size
        ratio = estimate / truth if truth else float("nan")
        incremental_total += incremental_seconds
        rebuild_total += rebuild_seconds
        series.append(
            {
                "batch": index,
                "op": op,
                "live_points": int(session.n_live),
                "incremental_seconds": incremental_seconds,
                "rebuild_seconds": rebuild_seconds,
                "true_pairs": truth,
                "estimated_pairs": estimate,
                "estimate_ratio": ratio,
            }
        )
        if truth and not (1 / ESTIMATOR_BOUND <= ratio <= ESTIMATOR_BOUND):
            raise AssertionError(
                f"estimator left its documented band at batch {index}: "
                f"estimate {estimate:.0f} vs true {truth} "
                f"(ratio {ratio:.2f}, bound {ESTIMATOR_BOUND}x)"
            )

    # Exactness: accumulated deltas == from-scratch join over survivors.
    net = subtract_pairs(
        np.concatenate(added) if added else _EMPTY_PAIRS,
        np.concatenate(retracted) if retracted else _EMPTY_PAIRS,
    )
    live_ids = session.live_ids()
    expected = live_ids[scratch.pairs]
    expected = expected[np.lexsort((expected[:, 1], expected[:, 0]))]
    if net.tobytes() != expected.tobytes():
        raise AssertionError(
            "accumulated incremental deltas diverged from the batch join"
        )

    stats = session.stats
    return {
        "base_n": base_n,
        "batch_n": batch_n,
        "n_batches": n_batches,
        "incremental_total_seconds": incremental_total,
        "rebuild_total_seconds": rebuild_total,
        "speedup": rebuild_total / incremental_total if incremental_total else 0.0,
        "compactions": stats.compactions,
        "pairs_emitted": stats.pairs_emitted,
        "pairs_retracted": stats.pairs_retracted,
        "structure_cache_hits": stats.structure_cache_hits,
        "estimator_bound": ESTIMATOR_BOUND,
        "max_estimate_ratio": max(
            (r["estimate_ratio"] for r in series if r["true_pairs"]),
            default=float("nan"),
        ),
        "min_estimate_ratio": min(
            (r["estimate_ratio"] for r in series if r["true_pairs"]),
            default=float("nan"),
        ),
        "series": series,
    }


@pytest.mark.parametrize("batch_n", [SMOKE_BATCH_N])
def test_e18_incremental_stream(benchmark, batch_n):
    benchmark.group = f"E18 incremental vs rebuild (d={DIMS}, eps={EPSILON})"

    def run():
        return measure(SMOKE_BASE_N, batch_n, SMOKE_BATCHES)

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = record["speedup"]
    benchmark.extra_info["compactions"] = record["compactions"]
    benchmark.extra_info["max_estimate_ratio"] = record["max_estimate_ratio"]


def sweep(base_n=BASE_N, batch_n=BATCH_N, n_batches=N_BATCHES):
    record = measure(base_n, batch_n, n_batches)
    record["experiment"] = "e18_incremental"
    record["dims"] = DIMS
    record["epsilon"] = EPSILON
    table = Table(
        f"E18: incremental stream vs full rebuild (clusters, d={DIMS}, "
        f"eps={EPSILON}, base={base_n}, batch={batch_n})",
        ["batch", "op", "live", "incremental", "rebuild", "speedup", "est/true"],
    )
    for row in record["series"]:
        speedup = (
            row["rebuild_seconds"] / row["incremental_seconds"]
            if row["incremental_seconds"]
            else 0.0
        )
        table.add_row(
            row["batch"],
            row["op"],
            format_si(row["live_points"]),
            format_seconds(row["incremental_seconds"]),
            format_seconds(row["rebuild_seconds"]),
            f"{speedup:.1f}x",
            f"{row['estimate_ratio']:.2f}",
        )
    return table, record


def _default_out() -> str:
    return os.path.join(
        os.path.dirname(__file__), "results", "e18_incremental.json"
    )


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    table, record = sweep()
    write_record(record, _default_out())
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: base {SMOKE_BASE_N}, {SMOKE_BATCHES} batches of "
        f"{SMOKE_BATCH_N} (for CI)",
    )
    parser.add_argument("--out", help="results JSON path (default: results/)")
    args = parser.parse_args()
    if args.scale == "smoke":
        table, record = sweep(SMOKE_BASE_N, SMOKE_BATCH_N, SMOKE_BATCHES)
    else:
        table, record = sweep()
    write_record(record, args.out or _default_out())
    table.print()
    print(
        f"stream total: incremental "
        f"{format_seconds(record['incremental_total_seconds'])} vs rebuild "
        f"{format_seconds(record['rebuild_total_seconds'])} "
        f"({record['speedup']:.1f}x), {record['compactions']} compactions, "
        f"estimate/true in [{record['min_estimate_ratio']:.2f}, "
        f"{record['max_estimate_ratio']:.2f}] (bound {ESTIMATOR_BOUND:.0f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
