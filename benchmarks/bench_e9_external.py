"""E9 — External-memory join: I/O and time vs memory budget.

The striped eps-kdB join over the simulated paged disk, with the memory
budget swept from a few percent of the relation to all of it.  Published
shape: page I/O stays within a small constant number of sequential passes
for moderate budgets (stripe + neighbor-band reads on top of the fixed
histogram/partition passes) and grows gently as the budget shrinks, while
the join output is identical throughout.
"""

import pytest

from _harness import attach_info, clustered, scale
from repro import JoinSpec, PairCounter, external_self_join
from repro.analysis import Table, format_seconds, format_si
from repro.storage import PageStore

N = scale(20000)
DIMS = 8
EPSILON = 0.05
PAGE_ROWS = 256
BUDGET_FRACTIONS = [0.02, 0.05, 0.1, 0.25, 1.0]


def measure(budget_fraction: float):
    import time

    points = clustered(N, DIMS)
    budget = max(64, int(N * budget_fraction))
    store = PageStore(page_rows=PAGE_ROWS)
    sink = PairCounter()
    spec = JoinSpec(epsilon=EPSILON)
    started = time.perf_counter()
    report = external_self_join(
        points, spec, memory_points=budget, store=store, sink=sink
    )
    elapsed = time.perf_counter() - started
    return report, elapsed, budget


@pytest.mark.parametrize("fraction", BUDGET_FRACTIONS)
def test_e9_budget_sweep(benchmark, fraction):
    benchmark.group = f"E9 external join (N={N}, d={DIMS}, page={PAGE_ROWS})"

    def run():
        report, elapsed, budget = measure(fraction)
        return {
            "seconds": elapsed,
            "pairs": report.stats.pairs_emitted,
            "distance_computations": report.stats.distance_computations,
            "node_pairs": report.stats.node_pairs_visited,
            "pages_read": report.io.reads,
            "pages_written": report.io.writes,
            "stripes": report.stripes,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)
    benchmark.extra_info["pages_read"] = row["pages_read"]
    benchmark.extra_info["stripes"] = row["stripes"]


def run_experiment():
    data_pages = -(-N // PAGE_ROWS)
    table = Table(
        f"E9: external eps-kdB join vs memory budget "
        f"(N={N}, d={DIMS}, eps={EPSILON}, {data_pages} data pages)",
        [
            "budget",
            "stripes",
            "pages read",
            "read passes",
            "pages written",
            "time",
            "pairs",
        ],
    )
    for fraction in BUDGET_FRACTIONS:
        report, elapsed, budget = measure(fraction)
        table.add_row(
            f"{fraction:.0%}",
            report.stripes,
            report.io.reads,
            f"{report.io.reads / data_pages:.2f}x",
            report.io.writes,
            format_seconds(elapsed),
            format_si(report.stats.pairs_emitted),
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
