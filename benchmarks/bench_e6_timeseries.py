"""E6 — The "similar time sequences" workload.

Random-walk price series reduced to DFT feature vectors (the substitute
for the paper's proprietary stock data; DESIGN.md section 5), self-joined
at thresholds spanning loose to tight similarity.  Published shape: the
same algorithm ranking as on synthetic data carries over to the feature
workload — the eps-kdB tree wins, the R-tree join trails, sort-merge
falls off as the threshold loosens.
"""

import pytest

from _harness import (
    attach_info,
    measure_row,
    scale,
    series_table,
    timeseries,
)
from repro import JoinSpec
from repro.baselines import rtree_self_join, sort_merge_self_join
from repro.core import epsilon_kdb_self_join

N = scale(6000)
COEFFICIENTS = 8  # -> 16-dimensional feature vectors
EPSILONS = [0.5, 0.7, 0.9, 1.1]

ALGORITHMS = {
    "eps-kdB": epsilon_kdb_self_join,
    "R-tree": rtree_self_join,
    "sort-merge": sort_merge_self_join,
}


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e6_timeseries_sweep(benchmark, algorithm, eps):
    points = timeseries(N, COEFFICIENTS)
    spec = JoinSpec(epsilon=eps)
    benchmark.group = f"E6 time-sequence features (N={N}, d={2 * COEFFICIENTS}) eps={eps}"

    def run():
        return measure_row(ALGORITHMS[algorithm], points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    points = timeseries(N, COEFFICIENTS)
    rows = {}
    for eps in EPSILONS:
        spec = JoinSpec(epsilon=eps)
        rows[eps] = {
            name: measure_row(fn, points, spec)
            for name, fn in ALGORITHMS.items()
        }
    return series_table(
        f"E6: similar time sequences via DFT features "
        f"(N={N} series, d={2 * COEFFICIENTS})",
        "eps",
        rows,
    )


if __name__ == "__main__":
    run_experiment().print()
