"""E22 — Planner regret and the zero-materialization query path.

Two questions about the cost-based execution planner:

1. **Cold first-query latency** (the memmap path's reason to exist):
   against a persisted tenant, how fast is the first range query when
   the attach maps the snapshot read-only (:class:`SnapshotView`)
   versus fully materializing the session (recovery: array copies, WAL
   replay, sketch rebuild)?  Target: >= 10x at 50k points, with
   byte-identical answers.

2. **Planner regret**: over a matrix of (n, d, eps) workloads — plus
   persisted variants — run *every* strategy, crown the measured best
   (the oracle), and compare the planner's choice.  Regret is
   ``measured(chosen) / measured(best)``; target <= 2x on every cell.
   Every strategy's pairs are byte-compared against the serial oracle
   while we are at it, so the regret table doubles as an equivalence
   sweep.

Usage::

    python benchmarks/bench_e22_planner.py                 # full scale
    python benchmarks/bench_e22_planner.py --scale smoke   # seconds-sized
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time

import numpy as np

from _harness import scale, uniform, write_record
from repro import JoinSpec, plan_execution, similarity_join
from repro.analysis import Table, format_seconds
from repro.core.incremental import IncrementalJoin
from repro.planner import CostProfile, set_active_profile
from repro.storage import SnapshotView

STRATEGIES = ("serial", "pointer", "parallel", "external", "sort-merge")

#: (points, dims, epsilon) per regret cell; epsilon tracks d so every
#: cell produces a non-trivial but bounded candidate load.
MATRIX = [
    (scale(4_000), 8, 0.10),
    (scale(4_000), 16, 0.30),
    (scale(20_000), 8, 0.05),
    (scale(20_000), 16, 0.20),
]
COLD_N = scale(50_000)
COLD_DIMS = 48
COLD_EPS = 0.05
#: The cold metric is the *first* query after attach — open cost
#: included, nothing amortized — so it is a single probe.  The
#: persisted-regret cells use a bigger batch (COLD_QUERIES) because
#: there the steady-state query rate matters too.
COLD_QUERIES = 16
FIRST_QUERIES = 1
COLD_REPEATS = 3

SMOKE_MATRIX = [(2_000, 8, 0.10), (2_000, 16, 0.30)]
SMOKE_COLD_N = 8_000


def _persisted_dir(base: str, n: int, dims: int, eps: float) -> str:
    """Build a compacted persisted session and return its directory."""
    path = os.path.join(base, f"sess_{n}_{dims}")
    with IncrementalJoin.open(path, spec=JoinSpec(epsilon=eps)) as join:
        join.insert(uniform(n, dims))
        join.compact()
    return path


def measure_cold_first_query(n: int, dims: int, eps: float,
                             n_queries: int = FIRST_QUERIES,
                             repeats: int = COLD_REPEATS) -> dict:
    """Part 1: attach-and-first-query, memmapped view vs full recovery.

    Each timed sample is a *fresh* open plus the first query — nothing
    amortized across queries.  A throwaway tiny session warms both code
    paths first (imports, kernel-backend probe) so the samples measure
    the data structures, not process start-up; the reported figure is
    the median of ``repeats`` samples per path.
    """
    queries = uniform(n_queries, dims, seed=9)
    base = tempfile.mkdtemp(prefix="e22_cold_")
    try:
        warm_path = _persisted_dir(os.path.join(base, "warm"), 200, dims, eps)
        warm_query = uniform(1, dims, seed=1)
        warm_view = SnapshotView.open(warm_path)
        warm_view.batch_range_query(warm_query)
        warm_view.close()
        warm_sess = IncrementalJoin.open(warm_path)
        warm_sess.batch_range_query(warm_query)
        warm_sess.close()

        path = _persisted_dir(base, n, dims, eps)

        view_samples = []
        view_answers = None
        snapshot_bytes = 0
        for _ in range(repeats):
            started = time.perf_counter()
            view = SnapshotView.open(path)
            view_answers = view.batch_range_query(queries)
            view_samples.append(time.perf_counter() - started)
            snapshot_bytes = view.snapshot_bytes
            view.close()

        sess_samples = []
        full_answers = None
        for _ in range(repeats):
            started = time.perf_counter()
            session = IncrementalJoin.open(path)
            full_answers = session.batch_range_query(queries)
            sess_samples.append(time.perf_counter() - started)
            session.close()

        view_seconds = float(np.median(view_samples))
        materialize_seconds = float(np.median(sess_samples))

        for got, want in zip(view_answers, full_answers):
            if not np.array_equal(got, want):
                raise AssertionError("view answers diverged from recovery")
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return {
        "n": n,
        "dims": dims,
        "epsilon": eps,
        "queries": n_queries,
        "repeats": repeats,
        "snapshot_bytes": int(snapshot_bytes),
        "view_seconds": view_seconds,
        "materialize_seconds": materialize_seconds,
        "speedup": materialize_seconds / view_seconds,
    }


def measure_regret_cell(n: int, dims: int, eps: float) -> dict:
    """Part 2a: every in-memory strategy on one workload, vs the plan."""
    points = uniform(n, dims)
    measured = {}
    reference = None
    for strategy in STRATEGIES:
        started = time.perf_counter()
        pairs = similarity_join(points, epsilon=eps, engine=strategy)
        measured[strategy] = time.perf_counter() - started
        if reference is None:
            reference = pairs
        elif not np.array_equal(pairs, reference):
            raise AssertionError(
                f"{strategy} pairs diverged at n={n} d={dims} eps={eps}"
            )
    plan = plan_execution(JoinSpec(epsilon=eps), n, dims,
                          strategies=STRATEGIES)
    best = min(measured, key=measured.get)
    return {
        "n": n,
        "dims": dims,
        "epsilon": eps,
        "persisted": False,
        "chosen": plan.chosen,
        "predicted_seconds": plan.predicted_cost,
        "oracle": best,
        "measured": measured,
        "regret": measured[plan.chosen] / measured[best],
        "pairs": int(len(reference)),
    }


def measure_persisted_cell(n: int, dims: int, eps: float,
                           n_queries: int = COLD_QUERIES) -> dict:
    """Part 2b: persisted attach — snapshot-reuse vs rebuild regret."""
    queries = uniform(n_queries, dims, seed=9)
    base = tempfile.mkdtemp(prefix="e22_regret_")
    try:
        path = _persisted_dir(base, n, dims, eps)
        snapshot_bytes = max(
            os.path.getsize(os.path.join(path, name))
            for name in os.listdir(path)
            if name.endswith(".ekdb")
        )

        measured = {}
        started = time.perf_counter()
        view = SnapshotView.open(path)
        view_answers = view.batch_range_query(queries)
        measured["snapshot-reuse"] = time.perf_counter() - started
        view.close()

        started = time.perf_counter()
        session = IncrementalJoin.open(path)
        full_answers = session.batch_range_query(queries)
        measured["serial"] = time.perf_counter() - started
        session.close()

        for got, want in zip(view_answers, full_answers):
            if not np.array_equal(got, want):
                raise AssertionError("view answers diverged from recovery")

        plan = plan_execution(
            JoinSpec(epsilon=eps), n, dims,
            snapshot_bytes=snapshot_bytes,
            strategies=("serial", "snapshot-reuse"),
        )
        best = min(measured, key=measured.get)
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return {
        "n": n,
        "dims": dims,
        "epsilon": eps,
        "persisted": True,
        "chosen": plan.chosen,
        "predicted_seconds": plan.predicted_cost,
        "oracle": best,
        "measured": measured,
        "regret": measured[plan.chosen] / measured[best],
        "pairs": sum(len(a) for a in view_answers),
    }


def _default_out() -> str:
    return os.path.join(
        os.path.dirname(__file__), "results", "e22_planner.json"
    )


def sweep(matrix=None, cold_n: int = COLD_N):
    # Measured regret must reflect the shipped defaults, not whatever
    # profile a developer machine happens to have calibrated.
    set_active_profile(CostProfile())
    try:
        cold = measure_cold_first_query(cold_n, COLD_DIMS, COLD_EPS)
        cells = [measure_regret_cell(n, d, e) for n, d, e in (matrix or MATRIX)]
        cells += [
            measure_persisted_cell(n, d, e)
            for n, d, e in (matrix or MATRIX)[-2:]
        ]
    finally:
        set_active_profile(None)

    cold_table = Table(
        f"E22a — cold first query, {cold['n']} points d={cold['dims']} "
        f"({cold['queries']} queries)",
        ["path", "seconds", "speedup"],
    )
    cold_table.add_row(
        "snapshot view (memmap)", format_seconds(cold["view_seconds"]), ""
    )
    cold_table.add_row(
        "full materialization",
        format_seconds(cold["materialize_seconds"]),
        f"{cold['speedup']:.1f}x slower",
    )

    regret_table = Table(
        "E22b — planner regret per (n, d, eps, persisted?) cell",
        ["n", "d", "eps", "persisted", "chosen", "oracle", "regret"],
    )
    for cell in cells:
        regret_table.add_row(
            str(cell["n"]),
            str(cell["dims"]),
            f"{cell['epsilon']:g}",
            "yes" if cell["persisted"] else "no",
            cell["chosen"],
            cell["oracle"],
            f"{cell['regret']:.2f}x",
        )

    record = {
        "experiment": "e22_planner",
        "cold_first_query": cold,
        "regret_cells": cells,
        "max_regret": max(cell["regret"] for cell in cells),
    }
    return (cold_table, regret_table), record


def run_experiment():
    tables, record = sweep()
    write_record(record, _default_out())
    return tables


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: {SMOKE_COLD_N} cold points, 2 regret cells (for CI)",
    )
    parser.add_argument(
        "--out",
        default=_default_out(),
        help="JSON output path (default: benchmarks/results/e22_planner.json)",
    )
    args = parser.parse_args()
    smoke = args.scale == "smoke"
    tables, record = sweep(
        matrix=SMOKE_MATRIX if smoke else None,
        cold_n=SMOKE_COLD_N if smoke else COLD_N,
    )
    for table in tables:
        table.print()
    write_record(record, args.out)
    print(f"recorded series in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
