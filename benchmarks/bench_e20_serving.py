"""E20 — async serving layer: coalescing vs per-request execution.

The serving front-end (:mod:`repro.serve`) answers concurrent range
queries either naively — one tree traversal per request, in arrival
order — or *coalesced*: requests for the same tenant and radius that
arrive within a small window share one call to
:meth:`FlatEpsilonKdbTree.batch_range_query`, which amortizes the
descent over the whole batch.  This experiment measures what that buys
under concurrency, over a real TCP loopback with the JSON protocol in
the loop:

* **single client, no coalescing** — the floor: every request pays its
  own traversal and its own round trip, nothing overlaps.
* **N pipelined clients, no coalescing** — the naive concurrent server:
  requests interleave on the event loop but each still traverses alone.
* **N pipelined clients, coalescing window on** — concurrent queries
  merge into batched traversals (the measured coalesce width says how
  many, typically close to the offered concurrency).

Each configuration reports client-observed p50/p99 latency and
end-to-end throughput, plus the server's shed/queue counters; a final
configuration turns the admission size budget down until every query is
refused, showing the shed path costing microseconds, not traversals.
A sampled byte-identity check against a direct
:class:`~repro.core.incremental.IncrementalJoin` mirror guards the whole
sweep: coalescing must never change an answer.

Usage::

    python benchmarks/bench_e20_serving.py                 # full scale
    python benchmarks/bench_e20_serving.py --scale smoke   # seconds-sized
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time

import numpy as np

from _harness import clustered, scale, write_record
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.core.incremental import IncrementalJoin
from repro.serve import JoinServer, ServeClient

DIMS = 8
EPSILON = 0.1
N_POINTS = scale(8_000)
N_CLIENTS = 6
QUERIES_PER_CLIENT = scale(150)
COALESCE_WINDOW = 0.003

SMOKE_N_POINTS = 600
SMOKE_N_CLIENTS = 3
SMOKE_QUERIES_PER_CLIENT = 25


def _queries(points: np.ndarray, per_client: int, clients: int) -> np.ndarray:
    """Query points near the data (so answers are non-trivial), deterministic."""
    rng = np.random.default_rng(99)
    picks = rng.choice(len(points), size=per_client * clients, replace=True)
    return points[picks] + rng.normal(0.0, 0.01, size=(len(picks), points.shape[1]))


async def _drive(
    points: np.ndarray,
    queries: np.ndarray,
    clients: int,
    window: float,
    max_predicted_pairs=None,
) -> dict:
    """Run one configuration; return its measured row."""
    server = JoinServer(
        coalesce_window=window,
        max_inflight=64,
        max_pending=1_000_000,
        max_predicted_pairs=max_predicted_pairs,
    )
    await server.start()
    # Setup outside the measured section: load the tenant directly.
    session = server.manager.attach(
        "bench", spec=JoinSpec(epsilon=EPSILON)
    )
    session.insert(points)

    per_client = len(queries) // clients
    latencies: list = []
    answers: dict = {}
    shed = 0

    async def run_client(worker: int) -> None:
        nonlocal shed
        client = await ServeClient.connect("127.0.0.1", server.port)
        lo = worker * per_client
        chunk = queries[lo : lo + per_client]

        async def one(offset: int, query: np.ndarray):
            nonlocal shed
            started = time.perf_counter()
            try:
                ids = await client.range_query("bench", query)
            except Exception:
                shed += 1
                return
            latencies.append(time.perf_counter() - started)
            answers[lo + offset] = ids

        await asyncio.gather(*[one(i, q) for i, q in enumerate(chunk)])
        await client.close()

    started = time.perf_counter()
    await asyncio.gather(*[run_client(w) for w in range(clients)])
    elapsed = time.perf_counter() - started

    width = server.metrics.histogram("serve.coalesce_width")
    row = {
        "clients": clients,
        "window_seconds": window,
        "queries": len(queries),
        "answered": len(latencies),
        "shed": shed,
        "wall_seconds": elapsed,
        "throughput_qps": len(queries) / elapsed if elapsed else 0.0,
        "latency_p50": float(np.percentile(latencies, 50)) if latencies else 0.0,
        "latency_p99": float(np.percentile(latencies, 99)) if latencies else 0.0,
        "coalesce_width_mean": (
            width.total / width.count if width.count else 0.0
        ),
        "coalesce_width_max": width.percentile(100) if width.count else 0.0,
        "server_shed": server.metrics.counter("serve.shed").value,
        "server_queued": server.metrics.counter("serve.queued").value,
    }
    # Byte-identity spot check: a sample of answers vs a direct mirror.
    if answers:
        mirror = IncrementalJoin(JoinSpec(epsilon=EPSILON))
        mirror.insert(points)
        sample = sorted(answers)[:: max(1, len(answers) // 25)]
        for index in sample:
            expected = mirror.range_query(queries[index])
            if answers[index].tobytes() != expected.tobytes():
                raise AssertionError(
                    f"served answer for query {index} diverged from the "
                    "direct session"
                )
    await server.stop()
    return row


def sweep(n_points=N_POINTS, n_clients=N_CLIENTS, per_client=QUERIES_PER_CLIENT):
    points = clustered(n_points, DIMS)
    queries = _queries(points, per_client, n_clients)

    async def run_all():
        rows = []
        configs = [
            ("1 client, no coalescing", 1, 0.0, None),
            (f"{n_clients} clients, no coalescing", n_clients, 0.0, None),
            (
                f"{n_clients} clients, {COALESCE_WINDOW * 1e3:.0f}ms window",
                n_clients,
                COALESCE_WINDOW,
                None,
            ),
            (
                f"{n_clients} clients, size budget 0 (all shed)",
                n_clients,
                0.0,
                0.0,
            ),
        ]
        for label, clients, window, budget in configs:
            row = await _drive(
                points, queries, clients, window, max_predicted_pairs=budget
            )
            row["label"] = label
            rows.append(row)
        return rows

    rows = asyncio.run(run_all())

    record = {
        "experiment": "e20_serving",
        "n_points": n_points,
        "dims": DIMS,
        "epsilon": EPSILON,
        "n_clients": n_clients,
        "queries_per_client": per_client,
        "coalesce_window": COALESCE_WINDOW,
        "series": rows,
    }
    table = Table(
        f"E20: serving {per_client * n_clients} range queries over "
        f"{format_si(n_points)} points (d={DIMS}, eps={EPSILON}, TCP loopback)",
        ["configuration", "wall", "qps", "p50", "p99", "width", "shed", "queued"],
    )
    for row in rows:
        table.add_row(
            row["label"],
            format_seconds(row["wall_seconds"]),
            format_si(int(row["throughput_qps"])),
            format_seconds(row["latency_p50"]),
            format_seconds(row["latency_p99"]),
            f"{row['coalesce_width_mean']:.1f}",
            str(row["server_shed"]),
            str(row["server_queued"]),
        )
    return table, record


def _default_out() -> str:
    return os.path.join(os.path.dirname(__file__), "results", "e20_serving.json")


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    table, record = sweep()
    write_record(record, _default_out())
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: {SMOKE_N_CLIENTS} clients x "
        f"{SMOKE_QUERIES_PER_CLIENT} queries over {SMOKE_N_POINTS} points "
        "(for CI)",
    )
    parser.add_argument("--out", help="results JSON path (default: results/)")
    args = parser.parse_args()
    if args.scale == "smoke":
        table, record = sweep(
            SMOKE_N_POINTS, SMOKE_N_CLIENTS, SMOKE_QUERIES_PER_CLIENT
        )
    else:
        table, record = sweep()
    write_record(record, args.out or _default_out())
    table.print()
    naive = record["series"][1]
    coalesced = record["series"][2]
    if coalesced["wall_seconds"]:
        print(
            f"\ncoalescing at {record['n_clients']} clients: "
            f"{naive['wall_seconds'] / coalesced['wall_seconds']:.2f}x "
            f"throughput of per-request execution "
            f"(mean batch width {coalesced['coalesce_width_mean']:.1f})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
