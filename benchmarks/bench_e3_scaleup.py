"""E3 — Scale-up: self-join time vs number of points.

Gaussian-cluster workload at fixed d and epsilon, N swept geometrically.
Published shape: the eps-kdB tree grows near-linearly (plus the output
term); the R-tree join and sort-merge grow visibly faster; brute force is
quadratic and only competitive at the smallest sizes.
"""

import pytest

from _harness import (
    attach_info,
    clustered,
    measure_row,
    scale,
    series_table,
)
from repro import JoinSpec
from repro.baselines import (
    brute_force_self_join,
    rtree_self_join,
    sort_merge_self_join,
)
from repro.core import epsilon_kdb_self_join

SIZES = [scale(2000), scale(4000), scale(8000), scale(16000)]
DIMS = 16
EPSILON = 0.1

ALGORITHMS = {
    "eps-kdB": epsilon_kdb_self_join,
    "R-tree": rtree_self_join,
    "sort-merge": sort_merge_self_join,
    "brute-force": brute_force_self_join,
}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e3_scaleup_sweep(benchmark, algorithm, n):
    points = clustered(n, DIMS)
    spec = JoinSpec(epsilon=EPSILON)
    benchmark.group = f"E3 time vs N (d={DIMS}, eps={EPSILON}) N={n}"

    def run():
        return measure_row(ALGORITHMS[algorithm], points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    rows = {}
    for n in SIZES:
        points = clustered(n, DIMS)
        spec = JoinSpec(epsilon=EPSILON)
        rows[n] = {
            name: measure_row(fn, points, spec)
            for name, fn in ALGORITHMS.items()
        }
    return series_table(
        f"E3: self-join time vs N (clusters, d={DIMS}, eps={EPSILON})",
        "N",
        rows,
    )


if __name__ == "__main__":
    run_experiment().print()
