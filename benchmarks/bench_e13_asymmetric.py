"""E13 (supplementary) — asymmetric joins: |R| much smaller than |S|.

Three strategies exist for R joined with S: build-and-traverse both
(the synchronized eps-kdB / R-tree joins), or index S once and probe it
per point of R (index-nested-loop).  This experiment fixes |S| and
shrinks |R| across three orders of magnitude: the synchronized joins pay
for both sides regardless of |R|, while the nested loop's cost tracks
|R| — so a crossover appears as R shrinks, which is why real systems
keep both plans.
"""

import time

import pytest

from _harness import clustered, scale
from repro import JoinSpec, PairCounter
from repro.analysis import Table, format_seconds, format_si
from repro.baselines import index_nested_loop_join, rtree_join
from repro.core import epsilon_kdb_join

N_S = scale(10000)
DIMS = 12
EPSILON = 0.08
R_SIZES = [scale(50), scale(500), scale(2500), scale(10000)]

ALGORITHMS = {
    "eps-kdB (sync)": epsilon_kdb_join,
    "R-tree (sync)": rtree_join,
    "index-nested-loop": index_nested_loop_join,
}


def make_sides(n_r: int):
    base = clustered(N_S, DIMS, seed=4)
    probe = clustered(max(n_r, 4), DIMS, seed=4) + 0.003
    return probe[:n_r], base


def measure(algorithm, probe, base, spec):
    sink = PairCounter()
    started = time.perf_counter()
    result = algorithm(probe, base, spec, sink=sink)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "pairs": sink.count,
        "distance_computations": result.stats.distance_computations,
        "node_pairs": result.stats.node_pairs_visited,
    }


@pytest.mark.parametrize("n_r", R_SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e13_asymmetry_sweep(benchmark, algorithm, n_r):
    probe, base = make_sides(n_r)
    spec = JoinSpec(epsilon=EPSILON)
    benchmark.group = f"E13 asymmetric join (|S|={N_S}, d={DIMS}) |R|={n_r}"

    def run():
        return measure(ALGORITHMS[algorithm], probe, base, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pairs"] = row["pairs"]


def test_e13_all_strategies_agree():
    probe, base = make_sides(scale(300))
    spec = JoinSpec(epsilon=EPSILON)
    reference = None
    for algorithm in ALGORITHMS.values():
        pairs = algorithm(probe, base, spec).pairs
        if reference is None:
            reference = pairs
        assert pairs.shape == reference.shape and (pairs == reference).all()


def run_experiment():
    table = Table(
        f"E13: two-set join strategies vs |R| (|S|={N_S}, d={DIMS}, "
        f"eps={EPSILON})",
        ["|R|", *[f"{a} time" for a in ALGORITHMS], "pairs"],
    )
    spec = JoinSpec(epsilon=EPSILON)
    for n_r in R_SIZES:
        probe, base = make_sides(n_r)
        rows = {
            name: measure(fn, probe, base, spec)
            for name, fn in ALGORITHMS.items()
        }
        table.add_row(
            n_r,
            *[format_seconds(rows[name]["seconds"]) for name in ALGORITHMS],
            format_si(next(iter(rows.values()))["pairs"]),
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
