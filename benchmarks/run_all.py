"""Run every experiment E1..E10 in script mode and print its table.

Usage::

    python benchmarks/run_all.py            # fast scale
    REPRO_BENCH_SCALE=3 python benchmarks/run_all.py

This is the command whose output EXPERIMENTS.md records.
"""

from __future__ import annotations

import importlib
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

EXPERIMENTS = [
    "bench_e1_epsilon",
    "bench_e2_dimensionality",
    "bench_e3_scaleup",
    "bench_e4_leafsize",
    "bench_e5_pruning",
    "bench_e6_timeseries",
    "bench_e7_images",
    "bench_e8_two_set",
    "bench_e9_external",
    "bench_e10_ablations",
    "bench_e11_build_cost",
    "bench_e12_filter_quality",
    "bench_e13_asymmetric",
    "bench_e14_parallel",
    "bench_e15_resilience",
]


def main() -> int:
    total_started = time.perf_counter()
    for name in EXPERIMENTS:
        module = importlib.import_module(name)
        started = time.perf_counter()
        outcome = module.run_experiment()
        elapsed = time.perf_counter() - started
        tables = outcome if isinstance(outcome, tuple) else (outcome,)
        for table in tables:
            table.print()
        print(f"[{name} completed in {elapsed:.1f}s]")
    print(f"\nAll experiments done in {time.perf_counter() - total_started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
