"""Run every experiment E1..E10 in script mode and print its table.

Usage::

    python benchmarks/run_all.py            # fast scale
    REPRO_BENCH_SCALE=3 python benchmarks/run_all.py

This is the command whose output EXPERIMENTS.md records.

The whole run executes under a recording tracer: one span per
experiment, with the library's own spans (build/traversal, parallel
plan/ship/dispatch/merge, external-join passes) nested underneath.  The
trace and the run's environment metadata land in
``benchmarks/results/run_all_trace.jsonl`` /
``benchmarks/results/run_all_meta.json``.
"""

from __future__ import annotations

import importlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from _harness import environment_metadata  # noqa: E402

from repro.obs import Tracer, trace, write_jsonl  # noqa: E402

EXPERIMENTS = [
    "bench_e1_epsilon",
    "bench_e2_dimensionality",
    "bench_e3_scaleup",
    "bench_e4_leafsize",
    "bench_e5_pruning",
    "bench_e6_timeseries",
    "bench_e7_images",
    "bench_e8_two_set",
    "bench_e9_external",
    "bench_e10_ablations",
    "bench_e11_build_cost",
    "bench_e12_filter_quality",
    "bench_e13_asymmetric",
    "bench_e14_parallel",
    "bench_e15_resilience",
    "bench_e16_kernels",
    "bench_e17_flat_build",
    "bench_e18_incremental",
    "bench_e19_persistence",
    "bench_e20_serving",
    "bench_e21_backends",
    "bench_e22_planner",
]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TRACE_OUT = os.path.join(RESULTS_DIR, "run_all_trace.jsonl")
META_OUT = os.path.join(RESULTS_DIR, "run_all_meta.json")


def main() -> int:
    total_started = time.perf_counter()
    tracer = Tracer()
    with trace.activate(tracer):
        with trace.span("run-all", experiments=len(EXPERIMENTS)):
            for name in EXPERIMENTS:
                module = importlib.import_module(name)
                started = time.perf_counter()
                with trace.span(name):
                    outcome = module.run_experiment()
                elapsed = time.perf_counter() - started
                tables = outcome if isinstance(outcome, tuple) else (outcome,)
                for table in tables:
                    table.print()
                print(f"[{name} completed in {elapsed:.1f}s]")
    total_elapsed = time.perf_counter() - total_started
    os.makedirs(RESULTS_DIR, exist_ok=True)
    spans = write_jsonl(tracer.export(), TRACE_OUT)
    with open(META_OUT, "w") as handle:
        json.dump(
            {
                "experiments": EXPERIMENTS,
                "total_seconds": total_elapsed,
                "environment": environment_metadata(),
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"\nAll experiments done in {total_elapsed:.1f}s")
    print(f"trace: {TRACE_OUT} ({spans} spans); metadata: {META_OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
