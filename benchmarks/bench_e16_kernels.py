"""E16 — Filter-cascade distance kernels vs the monolithic filter.

The leaf joins hand the distance filter a candidate list the band sweep
produced; at high ``d`` with uniform data (the paper's E2 setting at the
epsilon crossover ``0.1 * sqrt(d/16)``) nearly every candidate fails, and
the monolithic kernel gathers all ``d`` coordinates of every one of them
anyway.  This experiment isolates that filter: the same band-sweep
candidate set is pushed through the seed kernel
(``metric.within_rows``) and the cascade (:class:`KernelContext`),
verifying identical masks and recording the per-stage survivor funnel,
the coordinates actually touched, and the speedup.  An end-to-end
self-join with ``cascade=auto`` vs ``cascade=off`` closes the loop.

Usage::

    python benchmarks/bench_e16_kernels.py                 # full scale
    python benchmarks/bench_e16_kernels.py --scale smoke   # seconds-sized
    python benchmarks/bench_e16_kernels.py --dims 16 32
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np
import pytest

from _harness import attach_info, scale, uniform, write_record
from repro import JoinSpec
from repro.core import PairCounter, build_kernel_context, epsilon_kdb_self_join
from repro.core.result import JoinStats
from repro.core.sweep import iter_band_pairs_self
from repro.analysis import Table, format_seconds, format_si

DIM_SWEEP = [8, 16, 32, 64]
N = scale(20_000)
CANDIDATE_CAP = scale(1_500_000)
REPEATS = 3

SMOKE_DIMS = [8, 16]
SMOKE_N = 4_000
SMOKE_CAP = 150_000
SMOKE_REPEATS = 2


def crossover_epsilon(dims: int) -> float:
    """The E2 epsilon crossover: selectivity held constant across d."""
    return 0.1 * float(np.sqrt(dims / 16.0))


def band_candidates(points: np.ndarray, eps: float, cap: int):
    """Leaf-filter input: band-sweep candidates along dimension 0."""
    order = np.argsort(points[:, 0], kind="stable")
    values = points[order, 0]
    chunks_a, chunks_b = [], []
    total = 0
    for pos_a, pos_b in iter_band_pairs_self(values, eps):
        chunks_a.append(order[pos_a])
        chunks_b.append(order[pos_b])
        total += len(pos_a)
        if total >= cap:
            break
    if not chunks_a:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    rows_a = np.concatenate(chunks_a)[:cap]
    rows_b = np.concatenate(chunks_b)[:cap]
    return rows_a, rows_b


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure(dims: int, n: int = N, cap: int = CANDIDATE_CAP,
            repeats: int = REPEATS):
    eps = crossover_epsilon(dims)
    points = uniform(n, dims)
    rows_a, rows_b = band_candidates(points, eps, cap)
    spec = JoinSpec(epsilon=eps, cascade="auto")

    seed_seconds = _best_of(
        lambda: spec.metric.within_rows(points, points, rows_a, rows_b, eps),
        repeats,
    )
    seed_mask = spec.metric.within_rows(points, points, rows_a, rows_b, eps)

    context = build_kernel_context(spec, points, sort_dim=0)
    assert context is not None, "cascade must engage for every swept d"
    cascade_seconds = _best_of(
        lambda: context.within_rows(rows_a, rows_b), repeats
    )
    stats = JoinStats()
    cascade_mask = context.within_rows(rows_a, rows_b, stats)
    if not np.array_equal(seed_mask, cascade_mask):
        raise AssertionError(
            f"cascade mask diverged from the seed kernel at d={dims}"
        )

    return {
        "dims": dims,
        "epsilon": eps,
        "n": n,
        "candidates": int(len(rows_a)),
        "matches": int(seed_mask.sum()),
        "seed_within_rows_seconds": seed_seconds,
        "cascade_within_rows_seconds": cascade_seconds,
        "speedup": seed_seconds / cascade_seconds if cascade_seconds else 0.0,
        "filter_stages": context.plan.n_filters,
        "cascade_candidates": stats.cascade_candidates,
        "cascade_survivors": list(stats.cascade_survivors),
        "coordinates_touched": stats.coordinates_touched,
        "coordinates_monolithic": int(len(rows_a)) * dims,
    }


def measure_end_to_end(dims: int, n: int, repeats: int):
    eps = crossover_epsilon(dims)
    points = uniform(n, dims)
    row = {"dims": dims, "epsilon": eps, "n": n}
    for mode in ("off", "auto"):
        spec = JoinSpec(epsilon=eps, cascade=mode)

        def run():
            sink = PairCounter()
            epsilon_kdb_self_join(points, spec, sink=sink)
            return sink.count

        row[f"join_seconds_{mode}"] = _best_of(run, repeats)
        row[f"pairs_{mode}"] = run()
    assert row["pairs_off"] == row["pairs_auto"]
    row["join_speedup"] = (
        row["join_seconds_off"] / row["join_seconds_auto"]
        if row["join_seconds_auto"]
        else 0.0
    )
    return row


@pytest.mark.parametrize("dims", DIM_SWEEP)
def test_e16_kernel_sweep(benchmark, dims):
    benchmark.group = f"E16 cascade kernels (N={N}, crossover eps)"

    def run():
        row = measure(dims)
        return {
            "seconds": row["cascade_within_rows_seconds"],
            "seed_seconds": row["seed_within_rows_seconds"],
            "speedup": row["speedup"],
            "candidates": row["candidates"],
            "matches": row["matches"],
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)
    benchmark.extra_info["speedup"] = row["speedup"]


def sweep(dim_sweep=None, n: int = N, cap: int = CANDIDATE_CAP,
          repeats: int = REPEATS):
    dim_sweep = list(dim_sweep or DIM_SWEEP)
    table = Table(
        f"E16: cascade vs monolithic leaf filter "
        f"(N={n}, uniform, eps=0.1*sqrt(d/16))",
        ["d", "candidates", "survivors", "coords touched",
         "seed", "cascade", "speedup", "join speedup"],
    )
    series = []
    for dims in dim_sweep:
        row = measure(dims, n=n, cap=cap, repeats=repeats)
        row.update(measure_end_to_end(dims, n=n, repeats=repeats))
        series.append(row)
        funnel = " > ".join(format_si(s) for s in row["cascade_survivors"])
        table.add_row(
            dims,
            format_si(row["candidates"]),
            funnel,
            f"{format_si(row['coordinates_touched'])}"
            f"/{format_si(row['coordinates_monolithic'])}",
            format_seconds(row["seed_within_rows_seconds"]),
            format_seconds(row["cascade_within_rows_seconds"]),
            f"{row['speedup']:.2f}x",
            f"{row['join_speedup']:.2f}x",
        )
    record = {
        "experiment": "e16_kernels",
        "n": n,
        "candidate_cap": cap,
        "repeats": repeats,
        "series": series,
    }
    return table, record


def _default_out() -> str:
    return os.path.join(os.path.dirname(__file__), "results", "e16_kernels.json")


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    table, record = sweep()
    write_record(record, _default_out())
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: {SMOKE_N} points, dims {SMOKE_DIMS} (for CI)",
    )
    parser.add_argument(
        "--dims", type=int, nargs="+", help="dimensionalities to sweep"
    )
    parser.add_argument(
        "--out",
        default=_default_out(),
        help="JSON output path (default: benchmarks/results/e16_kernels.json)",
    )
    args = parser.parse_args()
    smoke = args.scale == "smoke"
    table, record = sweep(
        dim_sweep=args.dims or (SMOKE_DIMS if smoke else DIM_SWEEP),
        n=SMOKE_N if smoke else N,
        cap=SMOKE_CAP if smoke else CANDIDATE_CAP,
        repeats=SMOKE_REPEATS if smoke else REPEATS,
    )
    table.print()
    write_record(record, args.out)
    print(f"recorded series in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
