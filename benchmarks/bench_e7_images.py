"""E7 — The "similar images" workload.

Synthetic color-histogram feature vectors (substitute for the paper's
image collection; DESIGN.md section 5), self-joined under L1 — the
conventional histogram-intersection-style metric — across histogram
resolutions.  Published shape: the eps-kdB advantage persists, and grows
with the number of color bins (dimensionality), exactly like E2.
"""

import pytest

from _harness import attach_info, images, measure_row, scale
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.baselines import rtree_self_join, sort_merge_self_join
from repro.core import epsilon_kdb_self_join

N = scale(6000)
BIN_COUNTS = [16, 32, 64]
EPSILON = 0.15  # L1 distance between unit-mass histograms
METRIC = "l1"

ALGORITHMS = {
    "eps-kdB": epsilon_kdb_self_join,
    "R-tree": rtree_self_join,
    "sort-merge": sort_merge_self_join,
}


@pytest.mark.parametrize("bins", BIN_COUNTS)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e7_images_sweep(benchmark, algorithm, bins):
    points = images(N, bins)
    spec = JoinSpec(epsilon=EPSILON, metric=METRIC)
    benchmark.group = f"E7 image histograms (N={N}) bins={bins}"

    def run():
        return measure_row(ALGORITHMS[algorithm], points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    table = Table(
        f"E7: similar images via color histograms "
        f"(N={N}, L1, eps={EPSILON})",
        ["bins", *[f"{a} time" for a in ALGORITHMS], "pairs"],
    )
    for bins in BIN_COUNTS:
        points = images(N, bins)
        spec = JoinSpec(epsilon=EPSILON, metric=METRIC)
        rows = {
            name: measure_row(fn, points, spec)
            for name, fn in ALGORITHMS.items()
        }
        table.add_row(
            bins,
            *[format_seconds(rows[name]["seconds"]) for name in ALGORITHMS],
            format_si(next(iter(rows.values()))["pairs"]),
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
