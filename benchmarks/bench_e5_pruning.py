"""E5 — Pruning efficiency: distance computations instead of seconds.

The machine-independent counterpart of E1/E2: how many full distance
computations each algorithm performs across the epsilon and
dimensionality sweeps.  Published shape: the eps-kdB tree evaluates
orders of magnitude fewer candidates than brute force and materially
fewer than the R-tree join, with the gap widening in high dimensions
where MBR pruning stops working.
"""

import pytest

from _harness import (
    attach_info,
    clustered,
    measure_row,
    scale,
    uniform,
)
from repro import JoinSpec
from repro.analysis import Table, format_si
from repro.analysis.stats import epsilon_for_selectivity
from repro.baselines import (
    brute_force_self_join,
    rtree_self_join,
    sort_merge_self_join,
)
from repro.core import epsilon_kdb_self_join

N = scale(6000)
DIMS = 16
EPSILONS = [0.02, 0.05, 0.1, 0.2]
DIMENSIONS = [4, 8, 16, 32]

ALGORITHMS = {
    "eps-kdB": epsilon_kdb_self_join,
    "R-tree": rtree_self_join,
    "sort-merge": sort_merge_self_join,
    "brute-force": brute_force_self_join,
}


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.parametrize("algorithm", ["eps-kdB", "R-tree", "sort-merge"])
def test_e5_candidates_vs_epsilon(benchmark, algorithm, eps):
    points = clustered(N, DIMS)
    spec = JoinSpec(epsilon=eps)
    benchmark.group = f"E5 distance computations vs eps (N={N}, d={DIMS}) eps={eps}"

    def run():
        return measure_row(ALGORITHMS[algorithm], points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    points = clustered(N, DIMS)
    eps_table = Table(
        f"E5a: distance computations vs epsilon (clusters, N={N}, d={DIMS})",
        ["eps", *ALGORITHMS, "pairs"],
    )
    for eps in EPSILONS:
        spec = JoinSpec(epsilon=eps)
        rows = {
            name: measure_row(fn, points, spec)
            for name, fn in ALGORITHMS.items()
        }
        eps_table.add_row(
            eps,
            *[format_si(rows[name]["distance_computations"]) for name in ALGORITHMS],
            format_si(next(iter(rows.values()))["pairs"]),
        )

    dim_table = Table(
        f"E5b: distance computations vs dimensionality (uniform, N={N}, "
        "constant-selectivity eps)",
        ["d", *ALGORITHMS, "pairs"],
    )
    for dims in DIMENSIONS:
        eps = min(0.9, epsilon_for_selectivity(1e-6, dims, "l2"))
        spec = JoinSpec(epsilon=eps)
        data = uniform(N, dims)
        rows = {
            name: measure_row(fn, data, spec)
            for name, fn in ALGORITHMS.items()
        }
        dim_table.add_row(
            dims,
            *[format_si(rows[name]["distance_computations"]) for name in ALGORITHMS],
            format_si(next(iter(rows.values()))["pairs"]),
        )
    return eps_table, dim_table


if __name__ == "__main__":
    for table in run_experiment():
        table.print()
