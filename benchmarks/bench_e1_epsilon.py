"""E1 — Self-join time vs epsilon (the paper's headline comparison).

Gaussian-cluster workload, fixed N and d, epsilon swept over an order of
magnitude.  Published shape: the eps-kdB tree wins across the sweep
(several-fold over the R-tree join); sort-merge is competitive only at
the smallest epsilon and falls behind by a growing factor as epsilon
(and output) grows; brute force is flat in epsilon and worst.
"""

import pytest

from _harness import (
    SELF_JOIN_ALGORITHMS,
    attach_info,
    clustered,
    measure_row,
    scale,
    series_table,
)
from repro import JoinSpec

N = scale(6000)
DIMS = 16
EPSILONS = [0.05, 0.1, 0.2, 0.3]


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.parametrize("algorithm", list(SELF_JOIN_ALGORITHMS))
def test_e1_epsilon_sweep(benchmark, algorithm, eps):
    points = clustered(N, DIMS)
    spec = JoinSpec(epsilon=eps)
    benchmark.group = f"E1 self-join time vs eps (N={N}, d={DIMS}) eps={eps}"

    def run():
        return measure_row(SELF_JOIN_ALGORITHMS[algorithm], points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    points = clustered(N, DIMS)
    rows = {}
    for eps in EPSILONS:
        spec = JoinSpec(epsilon=eps)
        rows[eps] = {
            name: measure_row(fn, points, spec)
            for name, fn in SELF_JOIN_ALGORITHMS.items()
        }
    return series_table(
        f"E1: self-join time vs epsilon (clusters, N={N}, d={DIMS})",
        "eps",
        rows,
    )


if __name__ == "__main__":
    run_experiment().print()
