"""E4 — Sensitivity of the eps-kdB tree to the leaf split threshold.

Published shape: a U-shaped curve with a broad flat optimum — tiny leaves
pay per-node traversal overhead and deep trees, huge leaves degrade the
leaf sort-merge toward quadratic; anywhere in the wide middle works,
which is why the paper treats the threshold as a non-critical knob.
"""

import pytest

from _harness import attach_info, clustered, measure_row, scale
from repro import JoinSpec
from repro.analysis import Table, format_seconds, format_si
from repro.core import epsilon_kdb_self_join
from repro.core.epsilon_kdb import EpsilonKdbTree

N = scale(8000)
DIMS = 16
EPSILON = 0.1
LEAF_SIZES = [16, 64, 256, 1024, 4096]


@pytest.mark.parametrize("leaf_size", LEAF_SIZES)
def test_e4_leaf_size_sweep(benchmark, leaf_size):
    points = clustered(N, DIMS)
    spec = JoinSpec(epsilon=EPSILON, leaf_size=leaf_size)
    benchmark.group = f"E4 eps-kdB leaf threshold (N={N}, d={DIMS})"

    def run():
        return measure_row(epsilon_kdb_self_join, points, spec)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)


def run_experiment():
    points = clustered(N, DIMS)
    table = Table(
        f"E4: eps-kdB time vs leaf threshold (clusters, N={N}, d={DIMS}, "
        f"eps={EPSILON})",
        ["leaf_size", "time", "dist comps", "tree depth", "leaves", "pairs"],
    )
    for leaf_size in LEAF_SIZES:
        spec = JoinSpec(epsilon=EPSILON, leaf_size=leaf_size)
        tree = EpsilonKdbTree.build(points, spec)
        info = tree.describe()
        row = measure_row(epsilon_kdb_self_join, points, spec)
        table.add_row(
            leaf_size,
            format_seconds(row["seconds"]),
            format_si(row["distance_computations"]),
            info.max_depth,
            info.leaves,
            format_si(row["pairs"]),
        )
    return table


if __name__ == "__main__":
    run_experiment().print()
