"""E17 — flat vectorized build vs the pointer build, and cross-epsilon reuse.

Extends E11's build-cost question: the paper's bet is that the ε-kdB
tree is cheap enough to build per join, and the flat build (radix
cell-coding + stable whole-array sorts + CSR leaf layout,
:class:`~repro.core.flat_build.FlatEpsilonKdbTree`) makes it cheaper
still by replacing per-point and per-node Python work with a handful
of whole-array passes.  Measured here:

* construction time of *three* builds over the same clustered workload,
  all ready-to-traverse (the pointer variants include ``finalize()``,
  whose leaf sort the flat build folds into its stable sort cascade):

  - ``pointer`` — the per-point ``insert`` loop over an
    ``EpsilonKdbTree.empty`` tree, i.e. the pointer-based build path
    the flat build replaces (one Python descent per point);
  - ``pointer_bulk`` — ``EpsilonKdbTree.build``, the recursive bulk
    build the join entry points call (one NumPy partition per node);
  - ``flat`` — the vectorized flat build.

  The headline ``speedup`` compares flat against the per-point loop;
  ``speedup_vs_bulk`` records the gain over the already-vectorized
  per-node recursion, which is the fairer lower bound.
* peak RSS of each build series, sampled by
  :class:`repro.obs.MemorySampler` and stamped into the results JSON;
* an epsilon sweep through a :class:`~repro.core.flat_build.TreeCache`
  vs rebuilding per threshold — the cross-epsilon structure-reuse claim.

Usage::

    python benchmarks/bench_e17_flat_build.py                 # full scale
    python benchmarks/bench_e17_flat_build.py --scale smoke   # seconds-sized
"""

from __future__ import annotations

import argparse
import os
import time

import pytest

from _harness import clustered, scale, write_record
from repro import JoinSpec, TreeCache, epsilon_sweep
from repro.analysis import Table, format_seconds, format_si
from repro.core import epsilon_kdb_self_join
from repro.core.epsilon_kdb import EpsilonKdbTree
from repro.core.flat_build import FlatEpsilonKdbTree
from repro.obs import MemorySampler

SIZES = [scale(25_000), scale(50_000), scale(100_000)]
DIMS = 16
EPSILON = 0.1
REPEATS = 3
SWEEP_EPSILONS = [0.06, 0.08, 0.1, 0.12]

SMOKE_SIZES = [2_000, 4_000]
SMOKE_REPEATS = 1


def _build_pointer(points, spec):
    """The per-point pointer build: one tree descent per inserted row."""
    tree = EpsilonKdbTree.empty(points, spec)
    for index in range(len(points)):
        tree.insert(index)
    tree.finalize()
    return tree


def _build_pointer_bulk(points, spec):
    tree = EpsilonKdbTree.build(points, spec)
    tree.finalize()
    return tree


def _build_flat(points, spec):
    return FlatEpsilonKdbTree.build(points, spec)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure(n: int, repeats: int = REPEATS):
    """One series point: all three build times plus structural cross-checks."""
    points = clustered(n, DIMS)
    spec = JoinSpec(epsilon=EPSILON)

    sampler = MemorySampler(interval=0.01).start()
    pointer_seconds = _best_of(lambda: _build_pointer(points, spec), repeats)
    sampler.stop()
    pointer_rss = sampler.peak_bytes

    sampler = MemorySampler(interval=0.01).start()
    bulk_seconds = _best_of(lambda: _build_pointer_bulk(points, spec), repeats)
    sampler.stop()
    bulk_rss = sampler.peak_bytes

    sampler = MemorySampler(interval=0.01).start()
    flat_seconds = _best_of(lambda: _build_flat(points, spec), repeats)
    sampler.stop()
    flat_rss = sampler.peak_bytes

    flat = _build_flat(points, spec)
    pointer = _build_pointer(points, spec)
    bulk = _build_pointer_bulk(points, spec)
    if flat.describe() != bulk.describe():
        raise AssertionError(f"flat and bulk builds disagree at n={n}")
    if pointer.describe() != bulk.describe():
        raise AssertionError(f"insert and bulk builds disagree at n={n}")

    return {
        "n": n,
        "pointer_build_seconds": pointer_seconds,
        "pointer_bulk_seconds": bulk_seconds,
        "flat_build_seconds": flat_seconds,
        "speedup": pointer_seconds / flat_seconds if flat_seconds else 0.0,
        "speedup_vs_bulk": bulk_seconds / flat_seconds if flat_seconds else 0.0,
        "flat_sort_seconds": flat.build_sort_seconds,
        "nodes": flat.n_nodes,
        "leaves": flat.n_leaves,
        "pointer_peak_rss_bytes": int(pointer_rss),
        "pointer_bulk_peak_rss_bytes": int(bulk_rss),
        "flat_peak_rss_bytes": int(flat_rss),
    }


def measure_sweep(n: int):
    """Epsilon sweep: shared TreeCache vs one fresh build per threshold."""
    points = clustered(n, DIMS)

    started = time.perf_counter()
    cache = TreeCache()
    swept = epsilon_sweep(points, SWEEP_EPSILONS, cache=cache)
    cached_seconds = time.perf_counter() - started

    started = time.perf_counter()
    solo = [
        epsilon_kdb_self_join(points, JoinSpec(epsilon=eps))
        for eps in SWEEP_EPSILONS
    ]
    solo_seconds = time.perf_counter() - started

    for swept_result, solo_result in zip(swept, solo):
        if swept_result.pairs.tobytes() != solo_result.pairs.tobytes():
            raise AssertionError("cached sweep diverged from fresh builds")

    cached_build = sum(r.build_seconds for r in swept)
    solo_build = sum(r.build_seconds for r in solo)
    return {
        "n": n,
        "epsilons": list(SWEEP_EPSILONS),
        "structure_cache_hits": sum(
            r.stats.structure_cache_hits for r in swept
        ),
        "cached_build_seconds": cached_build,
        "solo_build_seconds": solo_build,
        "cached_total_seconds": cached_seconds,
        "solo_total_seconds": solo_seconds,
    }


@pytest.mark.parametrize("n", SIZES)
def test_e17_flat_vs_pointer_build(benchmark, n):
    benchmark.group = f"E17 flat vs pointer build (d={DIMS}, eps={EPSILON})"

    def run():
        return measure(n)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pointer_build_seconds"] = row["pointer_build_seconds"]
    benchmark.extra_info["pointer_bulk_seconds"] = row["pointer_bulk_seconds"]
    benchmark.extra_info["flat_build_seconds"] = row["flat_build_seconds"]
    benchmark.extra_info["speedup"] = row["speedup"]
    benchmark.extra_info["speedup_vs_bulk"] = row["speedup_vs_bulk"]


def sweep(sizes=None, repeats: int = REPEATS):
    sizes = list(sizes or SIZES)
    table = Table(
        f"E17: flat vs pointer epsilon-kdB build (clusters, d={DIMS}, "
        f"eps={EPSILON})",
        ["N", "nodes", "pointer", "bulk", "flat", "speedup", "vs bulk", "flat RSS"],
    )
    series = []
    for n in sizes:
        row = measure(n, repeats=repeats)
        series.append(row)
        table.add_row(
            n,
            format_si(row["nodes"]),
            format_seconds(row["pointer_build_seconds"]),
            format_seconds(row["pointer_bulk_seconds"]),
            format_seconds(row["flat_build_seconds"]),
            f"{row['speedup']:.1f}x",
            f"{row['speedup_vs_bulk']:.1f}x",
            format_si(row["flat_peak_rss_bytes"]) + "B",
        )
    cache_row = measure_sweep(sizes[-1])
    record = {
        "experiment": "e17_flat_build",
        "dims": DIMS,
        "epsilon": EPSILON,
        "repeats": repeats,
        "series": series,
        "epsilon_sweep": cache_row,
    }
    return table, record


def _default_out() -> str:
    return os.path.join(os.path.dirname(__file__), "results", "e17_flat_build.json")


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    table, record = sweep()
    write_record(record, _default_out())
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=["smoke", "full"],
        default="full",
        help=f"smoke: sizes {SMOKE_SIZES} with 1 repeat (for CI)",
    )
    parser.add_argument("--out", help="results JSON path (default: results/)")
    args = parser.parse_args()
    if args.scale == "smoke":
        table, record = sweep(sizes=SMOKE_SIZES, repeats=SMOKE_REPEATS)
    else:
        table, record = sweep()
    write_record(record, args.out or _default_out())
    table.print()
    cache_row = record["epsilon_sweep"]
    print(
        f"epsilon sweep over {cache_row['epsilons']} at N={cache_row['n']}: "
        f"{cache_row['structure_cache_hits']} cache hits, build "
        f"{format_seconds(cache_row['cached_build_seconds'])} cached vs "
        f"{format_seconds(cache_row['solo_build_seconds'])} fresh"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
