"""E14 — Stripe-parallel epsilon-kdB join: speedup vs worker count.

The parallel executor partitions the join into overlapping stripes along
the first split dimension and runs one serial epsilon-kdB join per
stripe in a process pool.  This experiment sweeps the worker count on a
fixed self-join (default: 100k points, d=8) and records wall-clock
speedup over the ``n_workers=1`` serial path, which the executor falls
back to without spawning any processes.

Script mode writes the measured series to a JSON file
(``benchmarks/results/e14_parallel.json`` by default) so the speedup
numbers are recorded alongside the printed table::

    python benchmarks/bench_e14_parallel.py              # full size
    python benchmarks/bench_e14_parallel.py --smoke      # seconds-sized
    python benchmarks/bench_e14_parallel.py --workers 1 2 4 --out sweep.json
"""

from __future__ import annotations

import argparse
import os
import time

import pytest

from _harness import attach_info, clustered, scale, write_record
from repro import JoinSpec, PairCounter, parallel_self_join
from repro.analysis import Table, format_seconds, format_si

N = scale(100_000)
DIMS = 8
EPSILON = 0.05
WORKER_SWEEP = [1, 2, 4, 8]

SMOKE_N = 4000
SMOKE_WORKERS = [1, 2]


def measure(n_workers: int, n: int = N):
    points = clustered(n, DIMS)
    spec = JoinSpec(epsilon=EPSILON, n_workers=n_workers)
    sink = PairCounter()
    started = time.perf_counter()
    result = parallel_self_join(points, spec, sink=sink)
    elapsed = time.perf_counter() - started
    return result, elapsed, sink.count


@pytest.mark.parametrize("n_workers", WORKER_SWEEP)
def test_e14_worker_sweep(benchmark, n_workers):
    benchmark.group = f"E14 parallel join (N={N}, d={DIMS}, eps={EPSILON})"

    def run():
        result, elapsed, pairs = measure(n_workers)
        return {
            "seconds": elapsed,
            "pairs": pairs,
            "distance_computations": result.stats.distance_computations,
            "node_pairs": result.stats.node_pairs_visited,
            "stripes": result.stats.stripes,
            "workers_used": result.stats.workers_used,
            "duplicates_merged": result.stats.duplicate_pairs_merged,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_info(benchmark, row)
    benchmark.extra_info["stripes"] = row["stripes"]
    benchmark.extra_info["workers_used"] = row["workers_used"]


def sweep(workers=None, n: int = N):
    workers = list(workers or WORKER_SWEEP)
    table = Table(
        f"E14: parallel eps-kdB self-join speedup "
        f"(N={n}, d={DIMS}, eps={EPSILON}, {os.cpu_count()} cores)",
        ["workers", "stripes", "dups merged", "time", "speedup", "pairs"],
    )
    series = []
    baseline = None
    for n_workers in workers:
        result, elapsed, pairs = measure(n_workers, n=n)
        if baseline is None:
            baseline = elapsed
        speedup = baseline / elapsed if elapsed else float("inf")
        series.append(
            {
                "n_workers": n_workers,
                "seconds": elapsed,
                "speedup_vs_serial": speedup,
                "pairs": pairs,
                "stripes": result.stats.stripes,
                "workers_used": result.stats.workers_used,
                "serial_fallback": result.stats.workers_used == 0,
                "duplicate_pairs_merged": result.stats.duplicate_pairs_merged,
                "worker_seconds": result.stats.worker_seconds,
            }
        )
        table.add_row(
            n_workers,
            result.stats.stripes,
            format_si(result.stats.duplicate_pairs_merged),
            format_seconds(elapsed),
            f"{speedup:.2f}x",
            format_si(pairs),
        )
    cpu_count = os.cpu_count() or 1
    oversubscribed = [w for w in workers if w > cpu_count]
    record = {
        "experiment": "e14_parallel",
        "n": n,
        "dims": DIMS,
        "epsilon": EPSILON,
        "cpu_count": cpu_count,
        "series": series,
    }
    if oversubscribed:
        record["warning"] = (
            f"worker counts {oversubscribed} exceed the {cpu_count} "
            "available cores; their speedups measure oversubscription, "
            "not parallel scaling"
        )
    return table, record


def _default_out() -> str:
    return os.path.join(os.path.dirname(__file__), "results", "e14_parallel.json")


def run_experiment():
    """Entry point for ``run_all.py``: full sweep, JSON recorded."""
    table, record = sweep()
    write_record(record, _default_out())
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run ({SMOKE_N} points, workers {SMOKE_WORKERS}) for CI",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", help="worker counts to sweep"
    )
    parser.add_argument(
        "--out",
        default=_default_out(),
        help="JSON output path (default: benchmarks/results/e14_parallel.json)",
    )
    args = parser.parse_args()
    n = SMOKE_N if args.smoke else N
    workers = args.workers or (SMOKE_WORKERS if args.smoke else WORKER_SWEEP)
    table, record = sweep(workers=workers, n=n)
    table.print()
    write_record(record, args.out)
    print(f"recorded series in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
