"""Asyncio TCP server for multi-tenant similarity-join serving.

One :class:`JoinServer` accepts any number of client connections, each
carrying a stream of length-prefixed JSON requests (see
:mod:`repro.serve.protocol`).  Every request becomes its own asyncio
task, so slow operations on one connection never head-of-line-block
another; responses are written under a per-connection lock and carry
the request's ``id``, so clients may pipeline freely.

The request path composes the serving subsystems in order: a
per-request **deadline** (``deadline_ms`` field, or the server-wide
default) wraps everything; the :class:`AdmissionController` sheds
size-budget violations and queues or sheds on the concurrency budget;
reads go through the :class:`QueryCoalescer`; mutations take the
tenant's lock and run through :class:`IncrementalJoin`'s journaled
insert/delete.  Each request runs inside a ``serve.request`` trace
span and feeds the latency histogram, so the existing JSONL /
Chrome-trace exporters and the metrics registry see the serving layer
with no extra plumbing.

Shutdown is graceful: the listener closes first, in-flight request
tasks drain, open coalescing windows flush (their waiters get real
answers, not cancellations), and every tenant session closes — which
fsyncs journals, so a restarted server re-attaches persisted tenants
byte-identically.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Set

from repro.core.backends import resolve_kernel_backend
from repro.core.config import JoinSpec
from repro.errors import AdmissionError, InvalidParameterError, ReproError
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController
from repro.serve.batching import QueryCoalescer
from repro.serve.protocol import (
    REQUEST_OPS,
    ProtocolError,
    decode_ids,
    decode_points,
    error_response,
    read_frame,
    write_frame,
)
from repro.serve.sessions import SessionManager

__all__ = ["JoinServer"]

#: JoinSpec fields an ``attach`` request may set.  Deliberately the
#: structural + streaming knobs (plus the ``kernel_backend`` runtime
#: knob, which defaults to the server-wide setting); operational fields
#: like ``persist_path`` have dedicated request fields.
_ATTACH_SPEC_FIELDS = (
    "epsilon",
    "metric",
    "leaf_size",
    "delta_threshold",
    "sketch_bits",
    "admission_threshold",
    "kernel_backend",
)


class JoinServer:
    """Serve similarity-join sessions over TCP to concurrent tenants."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coalesce_window: float = 0.0,
        max_predicted_pairs: Optional[float] = None,
        max_inflight: int = 8,
        max_pending: int = 64,
        default_deadline: Optional[float] = None,
        default_kernel_backend: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
        manager: Optional[SessionManager] = None,
    ):
        self.host = host
        self.port = port
        self.default_deadline = default_deadline
        # Applied to attach requests that do not name a backend; the
        # eager resolve validates the value and logs the "auto" choice
        # once at server construction instead of on the first query.
        self.default_kernel_backend = default_kernel_backend
        self.resolved_kernel_backend = resolve_kernel_backend(
            default_kernel_backend
        ).name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.manager = (
            manager
            if manager is not None
            else SessionManager(metrics=self.metrics)
        )
        self.admission = AdmissionController(
            max_predicted_pairs=max_predicted_pairs,
            max_inflight=max_inflight,
            max_pending=max_pending,
            metrics=self.metrics,
        )
        self.coalescer = QueryCoalescer(coalesce_window, metrics=self.metrics)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._handlers: Set[asyncio.Task] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._stop_requested = asyncio.Event()
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections; resolves ``self.port``."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request arrives, then stop gracefully."""
        if self._server is None:
            await self.start()
        await self._stop_requested.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, flush, close sessions."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
        # Drain in-flight request tasks before touching connections so
        # every accepted request still gets its response.
        while self._tasks:
            pending = [t for t in self._tasks if t is not asyncio.current_task()]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        await self.coalescer.flush_all()
        # Closing the connections unblocks handler loops parked in
        # read_frame; await them explicitly — before 3.12 wait_closed()
        # does not cover handler tasks, and leaving one parked lets the
        # event-loop teardown cancel it mid-read (a noisy traceback).
        for writer in list(self._connections):
            writer.close()
        handlers = [t for t in self._handlers if t is not asyncio.current_task()]
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        self.manager.close_all()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        self._connections.add(writer)
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
            handler.add_done_callback(self._handlers.discard)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (ProtocolError, ConnectionError, OSError) as exc:
                    # Framing is broken (or the peer vanished); report
                    # once if possible, then hang up.
                    try:
                        async with write_lock:
                            await write_frame(
                                writer, error_response(None, "protocol", str(exc))
                            )
                    except (ConnectionError, OSError):
                        pass
                    break
                if request is None:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = request.get("id")
        op = request.get("op")
        started = time.perf_counter()
        self.metrics.counter("serve.requests").inc()
        try:
            if op not in REQUEST_OPS:
                raise ProtocolError(f"unknown op {op!r}")
            deadline = request.get("deadline_ms")
            deadline = (
                self.default_deadline if deadline is None else float(deadline) / 1e3
            )
            with trace.span(
                "serve.request",
                op=op,
                tenant=request.get("tenant"),
                kernel_backend=self._request_backend(request),
            ):
                handler = self._dispatch(request, op)
                if deadline is not None:
                    response = await asyncio.wait_for(handler, timeout=deadline)
                else:
                    response = await handler
            response["id"] = request_id
            response["ok"] = True
        except AdmissionError as exc:
            response = error_response(request_id, "admission", str(exc))
        except asyncio.TimeoutError:
            self.metrics.counter("serve.deadline_exceeded").inc()
            response = error_response(
                request_id, "deadline", f"{op} missed its deadline"
            )
        except ProtocolError as exc:
            response = error_response(request_id, "protocol", str(exc))
        except InvalidParameterError as exc:
            response = error_response(request_id, "invalid", str(exc))
        except ReproError as exc:
            response = error_response(request_id, type(exc).__name__, str(exc))
        except Exception as exc:  # never let a handler bug kill the connection
            response = error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.metrics.histogram("serve.latency_seconds").observe(
            time.perf_counter() - started
        )
        try:
            async with write_lock:
                await write_frame(writer, response)
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it

    def _dispatch(self, request: Dict[str, Any], op: str):
        return getattr(self, f"_op_{op}")(request)

    def _request_backend(self, request: Dict[str, Any]) -> str:
        """Resolved kernel backend serving this request's tenant.

        Attached tenants report their own spec's backend; everything
        else (attach itself, ping) reports the server default.  Recorded
        on the ``serve.request`` span and as a
        ``serve.kernel_backend.<name>`` marker gauge so traces show
        which backend ran each request.
        """
        name = request.get("tenant")
        backend = self.resolved_kernel_backend
        if isinstance(name, str) and name in self.manager:
            backend = resolve_kernel_backend(
                self.manager.get(name).spec.kernel_backend
            ).name
        self.metrics.gauge(f"serve.kernel_backend.{backend}").set(1.0)
        return backend

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "tenants": self.manager.names()}

    def _tenant(self, request: Dict[str, Any]):
        name = request.get("tenant")
        if not isinstance(name, str) or not name:
            raise ProtocolError("request needs a non-empty 'tenant' field")
        return self.manager.get(name)

    async def _op_attach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("tenant")
        if not isinstance(name, str) or not name:
            raise ProtocolError("attach needs a non-empty 'tenant' field")
        spec = None
        spec_fields = {
            key: request[key]
            for key in _ATTACH_SPEC_FIELDS
            if request.get(key) is not None
        }
        if spec_fields:
            if "epsilon" not in spec_fields:
                raise ProtocolError("attach spec fields require 'epsilon'")
            spec_fields.setdefault("kernel_backend", self.default_kernel_backend)
            spec = JoinSpec(**spec_fields)
        session = self.manager.attach(
            name,
            spec=spec,
            path=request.get("path"),
            keep_generations=request.get("keep_generations"),
            sync_mode=request.get("sync_mode"),
        )
        return {
            "tenant": name,
            "n_live": session.n_live,
            "dims": session.dims,
            "epsilon": session.spec.epsilon,
            "last_update_seq": session.last_update_seq,
            "persisted": session.persisted,
            # "view" while queries run off the memmapped snapshot; flips
            # to "session" on the first mutating operation.
            "mode": "view" if session.is_view else "session",
        }

    async def _op_insert(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._tenant(request)
        points = decode_points(request.get("points"))
        await session.materialize()
        async with self.admission.slot():
            async with session.lock:
                delta = session.insert(points)
        return {
            "ids": delta.ids.tolist(),
            "n_live": session.n_live,
            "seq": session.last_update_seq,
        }

    async def _op_delete(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._tenant(request)
        ids = decode_ids(request.get("ids"))
        await session.materialize()
        async with self.admission.slot():
            async with session.lock:
                delta = session.delete(ids)
        return {
            "removed": delta.ids.tolist(),
            "n_live": session.n_live,
            "seq": session.last_update_seq,
        }

    async def _op_range_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._tenant(request)
        point = decode_points([request.get("point")], "point")[0]
        eps = request.get("eps")
        eps = None if eps is None else float(eps)
        self.admission.check_size(session, 1, "range_query")
        async with self.admission.slot():
            ids = await self.coalescer.submit(session, point, eps=eps)
        return {"ids": ids.tolist()}

    async def _op_mini_join(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._tenant(request)
        points = decode_points(request.get("points"))
        eps = request.get("eps")
        eps = None if eps is None else float(eps)
        self.admission.check_size(session, len(points), "mini_join")
        await session.materialize()
        async with self.admission.slot():
            pairs = session.mini_join(points, eps=eps)
        if session.last_plan is not None:
            self.metrics.counter(
                f"serve.plan.{session.last_plan.chosen}"
            ).inc()
        return {"pairs": pairs.tolist(), "count": len(pairs)}

    async def _op_pairs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._tenant(request)
        join = await session.materialize()
        async with self.admission.slot():
            pairs = join.current_pairs()
        return {"pairs": pairs.tolist(), "count": len(pairs)}

    async def _op_compact(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._tenant(request)
        join = await session.materialize()
        async with self.admission.slot():
            async with session.lock:
                join.compact()
        return {"n_live": session.n_live}

    async def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        response: Dict[str, Any] = {"server": self.metrics.as_dict()}
        response["server"]["queue_depth"] = self.admission.queue_depth
        latency = self.metrics.histogram("serve.latency_seconds")
        response["server"]["latency_p50"] = latency.percentile(50)
        response["server"]["latency_p99"] = latency.percentile(99)
        name = request.get("tenant")
        if name is not None:
            session = self.manager.get(name)
            response["tenant"] = {
                "name": name,
                "n_live": session.n_live,
                "dims": session.dims,
                "delta_size": session.delta_size,
                "estimated_join_size": session.estimated_join_size,
                "last_update_seq": session.last_update_seq,
                "mode": "view" if session.is_view else "session",
                "stats": session.stats.as_dict(),
            }
        return response

    async def _op_detach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("tenant")
        if not isinstance(name, str) or not name:
            raise ProtocolError("detach needs a non-empty 'tenant' field")
        self.manager.detach(name)
        return {"tenant": name, "detached": True}

    async def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._stop_requested.set()
        return {"stopping": True}
