"""Async client for the similarity-join server.

:class:`ServeClient` speaks the length-prefixed JSON protocol and
pipelines: every request gets a client-assigned ``id``, a background
reader task matches responses back to waiting futures, so any number
of requests may be in flight on one connection — which is exactly what
the server's query coalescer needs to see to batch them.

Responses with ``ok: false`` are raised as exceptions on the awaiting
caller: ``code == "admission"`` becomes the same
:class:`~repro.errors.AdmissionError` the engine raises locally, and
everything else becomes :class:`RemoteError` carrying the code, so
client code can handle shedding distinctly from real failures.

Array payloads come back as numpy arrays with the engine's dtypes
(``int64`` ids/pairs), so a remote answer compares byte-for-byte
against a local :class:`~repro.core.incremental.IncrementalJoin` call.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.errors import AdmissionError, ReproError
from repro.serve.protocol import ProtocolError, read_frame, write_frame

__all__ = ["RemoteError", "ServeClient"]


class RemoteError(ReproError, RuntimeError):
    """The server answered a request with a non-admission failure."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServeClient:
    """One pipelined connection to a :class:`~repro.serve.server.JoinServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiting: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_waiters(ConnectionError("client closed"))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                response = await read_frame(self._reader)
                if response is None:
                    self._fail_waiters(ConnectionError("server closed connection"))
                    return
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_waiters(exc)

    def _fail_waiters(self, exc: Exception) -> None:
        for future in self._waiting.values():
            if not future.done():
                future.set_exception(exc)
        self._waiting.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its response; raise on failure."""
        self._next_id += 1
        request_id = self._next_id
        message = {"op": op, "id": request_id}
        message.update({k: v for k, v in fields.items() if v is not None})
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._waiting[request_id] = future
        await write_frame(self._writer, message)
        response = await future
        if not response.get("ok"):
            code = response.get("code", "internal")
            message_text = response.get("error", "")
            if code == "admission":
                raise AdmissionError(message_text)
            if code == "protocol":
                raise ProtocolError(message_text)
            raise RemoteError(code, message_text)
        return response

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def attach(
        self,
        tenant: str,
        *,
        epsilon: Optional[float] = None,
        path: Optional[str] = None,
        keep_generations: Optional[int] = None,
        **spec_fields: Any,
    ) -> Dict[str, Any]:
        return await self.request(
            "attach",
            tenant=tenant,
            epsilon=epsilon,
            path=path,
            keep_generations=keep_generations,
            **spec_fields,
        )

    async def insert(self, tenant: str, points: np.ndarray) -> np.ndarray:
        response = await self.request(
            "insert", tenant=tenant, points=np.asarray(points).tolist()
        )
        return np.asarray(response["ids"], dtype=np.int64)

    async def delete(self, tenant: str, ids: Sequence[int]) -> np.ndarray:
        response = await self.request(
            "delete", tenant=tenant, ids=np.asarray(ids).tolist()
        )
        return np.asarray(response["removed"], dtype=np.int64)

    async def range_query(
        self,
        tenant: str,
        point: np.ndarray,
        eps: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        response = await self.request(
            "range_query",
            tenant=tenant,
            point=np.asarray(point, dtype=np.float64).tolist(),
            eps=eps,
            deadline_ms=deadline_ms,
        )
        return np.asarray(response["ids"], dtype=np.int64)

    async def mini_join(
        self, tenant: str, points: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        response = await self.request(
            "mini_join",
            tenant=tenant,
            points=np.asarray(points).tolist(),
            eps=eps,
        )
        pairs = np.asarray(response["pairs"], dtype=np.int64)
        return pairs.reshape(-1, 2) if pairs.size else np.empty((0, 2), dtype=np.int64)

    async def pairs(self, tenant: str) -> np.ndarray:
        response = await self.request("pairs", tenant=tenant)
        pairs = np.asarray(response["pairs"], dtype=np.int64)
        return pairs.reshape(-1, 2) if pairs.size else np.empty((0, 2), dtype=np.int64)

    async def stats(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        return await self.request("stats", tenant=tenant)

    async def compact(self, tenant: str) -> Dict[str, Any]:
        return await self.request("compact", tenant=tenant)

    async def detach(self, tenant: str) -> Dict[str, Any]:
        return await self.request("detach", tenant=tenant)

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request("shutdown")
