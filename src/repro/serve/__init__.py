"""Async serving layer: multi-tenant similarity-join sessions over TCP.

The batch engine answers "join these two files"; this package answers
"keep many evolving datasets resident and answer questions about them
concurrently".  Pieces, each its own module:

* :mod:`repro.serve.protocol` — length-prefixed JSON wire format.
* :mod:`repro.serve.sessions` — per-tenant
  :class:`~repro.core.incremental.IncrementalJoin` sessions behind a
  :class:`SessionManager`.
* :mod:`repro.serve.batching` — :class:`QueryCoalescer`, merging
  concurrent range queries into single batched tree traversals.
* :mod:`repro.serve.admission` — :class:`AdmissionController`,
  sketch-based size budgets plus a bounded request queue.
* :mod:`repro.serve.server` — :class:`JoinServer`, the asyncio TCP
  front-end composing all of the above.
* :mod:`repro.serve.client` — :class:`ServeClient`, a pipelined async
  client returning engine-dtype numpy arrays.

Typical use (see ``docs/serving.md`` for the full tour)::

    server = JoinServer(coalesce_window=0.002)
    await server.start()
    client = await ServeClient.connect(server.host, server.port)
    await client.attach("logs", epsilon=0.1)
    ids = await client.insert("logs", points)
    hits = await client.range_query("logs", points[0])
"""

from repro.serve.admission import AdmissionController
from repro.serve.batching import QueryCoalescer
from repro.serve.client import RemoteError, ServeClient
from repro.serve.protocol import MAX_FRAME_BYTES, ProtocolError
from repro.serve.server import JoinServer
from repro.serve.sessions import SessionManager, TenantSession

__all__ = [
    "AdmissionController",
    "JoinServer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueryCoalescer",
    "RemoteError",
    "ServeClient",
    "SessionManager",
    "TenantSession",
]
