"""Wire protocol for the similarity-join server: length-prefixed JSON.

Every message — request or response — is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
JSON keeps the protocol debuggable (``nc`` + a hex editor suffice) and
the length prefix makes framing trivial and strict: a frame longer than
:data:`MAX_FRAME_BYTES` is refused before any allocation, so a garbage
prefix cannot make the server try to buffer gigabytes.

Requests are objects with an ``op`` (one of :data:`REQUEST_OPS`), an
optional client-chosen ``id`` echoed back verbatim, and op-specific
fields.  Responses always carry ``ok``; failures add a machine-readable
``code`` (see :func:`error_response`) plus a human ``error`` string.
Array payloads (points, ids, pairs) travel as nested JSON lists and are
converted back to the engine's ``float64``/``int64`` dtypes at the
boundary, so a round trip through the wire is byte-identical to calling
the engine directly.

The codec functions are synchronous and pure (property-tested in
``tests/test_serve.py``); :func:`read_frame`/:func:`write_frame` are
thin asyncio wrappers over them.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "ProtocolError",
    "decode_frame",
    "decode_ids",
    "decode_points",
    "encode_frame",
    "error_response",
    "read_frame",
    "write_frame",
]

#: Hard ceiling on a single frame's JSON payload.  Large enough for a
#: ~million-point insert batch, small enough that a corrupt length
#: prefix fails fast instead of exhausting memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Operations the server understands.
REQUEST_OPS = (
    "ping",
    "attach",
    "insert",
    "delete",
    "range_query",
    "mini_join",
    "pairs",
    "stats",
    "compact",
    "detach",
    "shutdown",
)

_HEADER = struct.Struct(">I")


class ProtocolError(ReproError, RuntimeError):
    """A frame violated the wire format (bad length, not JSON, not an object)."""


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (header + JSON body)."""
    body = json.dumps(obj, separators=(",", ":"), allow_nan=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Parse one frame *body* (the JSON bytes after the header)."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one complete frame; ``None`` on a clean EOF between frames.

    EOF in the *middle* of a frame (header or body truncated) raises
    :class:`ProtocolError` — the peer died mid-message.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header declares {length} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, obj: Dict[str, Any]) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(obj))
    await writer.drain()


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    """Build the standard failure envelope.

    ``code`` values used by the server: ``"admission"`` (request shed by
    the admission controller), ``"deadline"`` (per-request deadline
    expired), ``"protocol"`` (malformed request), ``"invalid"``
    (engine-level parameter error), ``"unknown_tenant"``, and
    ``"internal"`` for anything unexpected.
    """
    return {"id": request_id, "ok": False, "code": code, "error": message}


def decode_points(value: Any, name: str = "points") -> np.ndarray:
    """Convert a JSON nested list to a float64 ``(n, d)`` point array."""
    try:
        points = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{name} is not a numeric array: {exc}") from exc
    if points.ndim == 1 and len(points) == 0:
        points = points.reshape(0, 0)
    if points.ndim != 2:
        raise ProtocolError(
            f"{name} must be a list of equal-length rows, got ndim={points.ndim}"
        )
    return points


def decode_ids(value: Any, name: str = "ids") -> np.ndarray:
    """Convert a JSON list to an int64 id array."""
    try:
        ids = np.asarray(value, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"{name} is not an integer array: {exc}") from exc
    if ids.ndim != 1:
        raise ProtocolError(f"{name} must be a flat list, got ndim={ids.ndim}")
    return ids
