"""Admission control: shed or queue requests before they get expensive.

Two independent guards, both applied *before* a request touches the
engine:

* **Size budget** — ``max_predicted_pairs`` bounds the predicted result
  size of a single request.  The prediction comes from the tenant's
  live :class:`~repro.core.incremental.JoinSizeSketch` (maintained for
  free by every insert/delete): the sketch estimates the session's
  self-join size, so a point probed against ``n`` live points expects
  about ``2 * estimate / n`` partners.  Before the sketch has counted
  anything, the analytical cost model's uniform-data expectation
  (:func:`repro.analysis.cost_model.predict_expected_output`) stands
  in.  A request predicted over budget is *shed*: refused with
  :class:`~repro.errors.AdmissionError` and counted in ``serve.shed``,
  leaving the session untouched.
* **Concurrency budget** — ``max_inflight`` requests execute at once;
  up to ``max_pending`` may wait in the queue behind them (counted in
  ``serve.queued``, depth exported as the ``serve.queue_depth`` gauge).
  Arrivals beyond ``max_pending`` are shed instead of queued, so a
  flood degrades into fast refusals rather than unbounded memory.

Neither guard is clairvoyant — the sketch overestimates skewed data —
but both fail *closed* and cheaply, which is the property a serving
front-end needs.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Optional

from repro.analysis.cost_model import predict_expected_output
from repro.errors import AdmissionError
from repro.obs.metrics import MetricsRegistry
from repro.serve.sessions import TenantSession

__all__ = ["AdmissionController"]


class AdmissionController:
    """Sketch-budget shedding plus a bounded admission queue."""

    def __init__(
        self,
        max_predicted_pairs: Optional[float] = None,
        max_inflight: int = 8,
        max_pending: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.max_predicted_pairs = (
            None if max_predicted_pairs is None else float(max_predicted_pairs)
        )
        self.max_inflight = int(max_inflight)
        self.max_pending = int(max_pending)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._semaphore = asyncio.Semaphore(self.max_inflight)
        self._inflight = 0
        self._waiting = 0

    # ------------------------------------------------------------------
    # size budget
    # ------------------------------------------------------------------
    def predict_pairs(self, session: TenantSession, n_probes: int) -> float:
        """Predicted output pairs for ``n_probes`` points probing ``session``."""
        # Session-level accessors work in both view and materialized
        # mode; a view keeps no sketch, so the analytic model covers it.
        n_live = session.n_live
        if n_live == 0 or n_probes == 0:
            return 0.0
        estimate = session.estimated_join_size
        if estimate <= 0:
            dims = session.dims or 1
            spec = session.spec
            estimate = predict_expected_output(
                n_live, dims, spec.epsilon, spec.metric.name
            )
        per_probe = 2.0 * estimate / n_live
        return float(n_probes) * per_probe

    def check_size(self, session: TenantSession, n_probes: int, op: str) -> float:
        """Shed ``op`` if its predicted output exceeds the budget."""
        predicted = self.predict_pairs(session, n_probes)
        budget = self.max_predicted_pairs
        if budget is not None and predicted > budget:
            self.metrics.counter("serve.shed").inc()
            raise AdmissionError(
                f"{op} with {n_probes} probe(s) refused: predicted "
                f"{predicted:.0f} output pairs exceeds the per-request "
                f"budget {budget:.0f}"
            )
        return predicted

    # ------------------------------------------------------------------
    # concurrency budget
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for an execution slot."""
        return self._waiting

    @asynccontextmanager
    async def slot(self):
        """Hold one execution slot; queue if busy, shed if the queue is full."""
        if self._waiting >= self.max_pending:
            self.metrics.counter("serve.shed").inc()
            raise AdmissionError(
                f"request shed: {self._waiting} requests already queued "
                f"(max_pending={self.max_pending})"
            )
        queued = self._inflight >= self.max_inflight
        if queued:
            self.metrics.counter("serve.queued").inc()
        self._waiting += 1
        self.metrics.gauge("serve.queue_depth").set(self._waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
            self.metrics.gauge("serve.queue_depth").set(self._waiting)
        self._inflight += 1
        try:
            yield
        finally:
            self._inflight -= 1
            self._semaphore.release()
