"""Per-tenant session state for the serving layer.

A *tenant* is one named dataset with its own :class:`IncrementalJoin`
session (in-memory or persisted), its own :class:`TreeCache` (so an
epsilon sweep by one tenant never evicts another's structures), and an
``asyncio.Lock`` that serializes mutations.  Reads (range queries,
mini-joins, pair enumeration) go straight to the engine without the
lock: the engine is synchronous numpy code, so a read that has started
runs to completion before the event loop can schedule a mutation —
tasks only interleave at ``await`` points.

:class:`SessionManager` owns the tenant table.  ``attach`` is
idempotent: re-attaching an existing tenant returns the live session
(a spec, if supplied, must match), which is what lets many concurrent
clients share one tenant's index.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import JoinSpec
from repro.core.flat_build import TreeCache
from repro.core.incremental import IncrementalJoin, UpdateDelta
from repro.core.join import epsilon_kdb_join
from repro.errors import InvalidParameterError

__all__ = ["SessionManager", "TenantSession"]


class TenantSession:
    """One tenant's engine session plus its serving-side bookkeeping."""

    def __init__(self, name: str, join: IncrementalJoin):
        self.name = name
        self.join = join
        self.lock = asyncio.Lock()

    # Thin delegates so the server and coalescer never reach through to
    # ``join`` for the read paths they batch.
    def range_query(self, point: np.ndarray, eps: Optional[float] = None) -> np.ndarray:
        return self.join.range_query(point, eps=eps)

    def batch_range_query(
        self, queries: np.ndarray, eps: Optional[float] = None
    ) -> List[np.ndarray]:
        return self.join.batch_range_query(queries, eps=eps)

    def mini_join(
        self, batch: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        """Join a probe batch against the live points, in session ids.

        Returns ``(k, 2)`` int64 pairs ``(batch row, live point id)``,
        sorted by batch row then id — the two-set analogue of
        :meth:`IncrementalJoin.batch_range_query`.
        """
        spec = self.join.spec
        if eps is None:
            eps = spec.epsilon
        eps = float(eps)
        if not np.isfinite(eps) or eps <= 0:
            raise InvalidParameterError(
                f"mini_join radius must be a positive finite number, got {eps!r}"
            )
        live = self.join.live_points()
        ids = self.join.live_ids()
        if len(live) == 0 or len(batch) == 0:
            return np.empty((0, 2), dtype=np.int64)
        join_spec = replace(spec, epsilon=eps, persist_path=None)
        result = epsilon_kdb_join(batch, live, join_spec)
        pairs = result.pairs
        if len(pairs) == 0:
            return np.empty((0, 2), dtype=np.int64)
        # live_points() is ascending-id order, so column 1 row indices
        # map to session ids by a single gather.
        mapped = np.column_stack([pairs[:, 0], ids[pairs[:, 1]]])
        order = np.lexsort((mapped[:, 1], mapped[:, 0]))
        return np.ascontiguousarray(mapped[order])

    def insert(self, points: np.ndarray) -> UpdateDelta:
        return self.join.insert(points)

    def delete(self, ids: np.ndarray) -> UpdateDelta:
        return self.join.delete(ids)


class SessionManager:
    """Tenant table: attach/get/detach plus orderly close of everything."""

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantSession] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def attach(
        self,
        name: str,
        *,
        spec: Optional[JoinSpec] = None,
        path: Optional[str] = None,
        keep_generations: Optional[int] = None,
        sync_mode: Optional[str] = None,
    ) -> TenantSession:
        """Open (or return) the tenant ``name``.

        A ``path`` opens/creates a persisted session via
        :meth:`IncrementalJoin.open` (``spec`` required only when the
        path holds nothing yet); without one the session is in-memory
        and ``spec`` is required.  Re-attaching an existing tenant
        returns the live session; a spec passed alongside must match
        its structural fingerprint.
        """
        if not name or not isinstance(name, str):
            raise InvalidParameterError(
                f"tenant name must be a non-empty string, got {name!r}"
            )
        existing = self._tenants.get(name)
        if existing is not None:
            if (
                spec is not None
                and spec.fingerprint() != existing.join.spec.fingerprint()
            ):
                raise InvalidParameterError(
                    f"tenant {name!r} is already attached with a different "
                    "spec; detach it first to change structural parameters"
                )
            return existing
        cache = TreeCache()
        if path is not None:
            join = IncrementalJoin.open(
                path,
                spec=spec,
                sync_mode=sync_mode,
                structure_cache=cache,
                keep_generations=keep_generations,
            )
        else:
            if spec is None:
                raise InvalidParameterError(
                    f"attaching in-memory tenant {name!r} requires a spec"
                )
            if keep_generations is not None:
                spec = replace(spec, keep_generations=keep_generations)
            join = IncrementalJoin(spec, structure_cache=cache)
        session = TenantSession(name, join)
        self._tenants[name] = session
        return session

    def get(self, name: str) -> TenantSession:
        session = self._tenants.get(name)
        if session is None:
            raise InvalidParameterError(f"unknown tenant {name!r}; attach it first")
        return session

    def detach(self, name: str) -> None:
        session = self._tenants.pop(name, None)
        if session is None:
            raise InvalidParameterError(f"unknown tenant {name!r}")
        session.join.close()

    def close_all(self) -> None:
        """Close every session (flushing journals); used at shutdown."""
        for name in list(self._tenants):
            self._tenants.pop(name).join.close()
