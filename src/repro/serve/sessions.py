"""Per-tenant session state for the serving layer.

A *tenant* is one named dataset with its own engine state, its own
:class:`TreeCache` (so an epsilon sweep by one tenant never evicts
another's structures), and an ``asyncio.Lock`` that serializes
mutations.  Reads (range queries, mini-joins, pair enumeration) go
straight to the engine without the lock: the engine is synchronous
numpy code, so a read that has started runs to completion before the
event loop can schedule a mutation — tasks only interleave at ``await``
points.

A tenant attached from a persisted directory starts in one of two
modes, chosen by the cost-based planner (:mod:`repro.planner`): a
**zero-materialization** :class:`~repro.storage.view.SnapshotView`
answering range queries straight off the memmapped snapshot arrays, or
a fully recovered :class:`IncrementalJoin`.  The view is the common
winner for read-only traffic (no array copies, no WAL machinery); the
first mutating operation — insert, delete, compact, pairs, mini-join —
*promotes* the tenant by materializing the real session underneath, so
clients never see the difference beyond latency.

:class:`SessionManager` owns the tenant table.  ``attach`` is
idempotent: re-attaching an existing tenant returns the live session
(a spec, if supplied, must match), which is what lets many concurrent
clients share one tenant's index.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import JoinSpec
from repro.core.flat_build import TreeCache
from repro.core.incremental import IncrementalJoin, UpdateDelta
from repro.core.join import epsilon_kdb_join
from repro.core.parallel import parallel_join
from repro.core.result import JoinStats
from repro.errors import InvalidParameterError, StorageError
from repro.obs import trace
from repro.planner import ExecutionPlan, plan_execution
from repro.storage.snapshot import list_snapshots
from repro.storage.view import SnapshotView

__all__ = ["SessionManager", "TenantSession"]


class TenantSession:
    """One tenant's engine session plus its serving-side bookkeeping.

    Exactly one of ``join`` / ``view`` is set at a time.  The
    session-level accessors (``spec``, ``n_live``, ``dims``, ...) hide
    which mode is active; mutating callers ``await materialize()``
    first, which swaps the view for a recovered session under the lock.
    """

    def __init__(
        self,
        name: str,
        join: Optional[IncrementalJoin] = None,
        *,
        view: Optional[SnapshotView] = None,
        opener: Optional[Callable[[], IncrementalJoin]] = None,
        on_promote: Optional[Callable[["TenantSession"], None]] = None,
    ):
        if (join is None) == (view is None):
            raise InvalidParameterError(
                "a TenantSession takes exactly one of join/view"
            )
        if view is not None and opener is None:
            raise InvalidParameterError(
                "a view-backed TenantSession needs an opener to "
                "materialize from"
            )
        self.name = name
        self.join = join
        self.view = view
        self._opener = opener
        self._on_promote = on_promote
        self.lock = asyncio.Lock()
        self.last_plan: Optional[ExecutionPlan] = None
        # Serving-side stats for view mode (a recovered join brings its
        # own); records the plan decision so `stats` requests show it.
        self._view_stats = JoinStats()
        if view is not None:
            self._view_stats.planned_strategy = "snapshot-reuse"
            self._view_stats.snapshot_bytes = view.snapshot_bytes

    # ------------------------------------------------------------------
    # mode-independent accessors
    # ------------------------------------------------------------------
    @property
    def is_view(self) -> bool:
        """True while queries are served off the memmapped snapshot."""
        return self.join is None

    def _engine(self):
        # Not `join or view`: an empty IncrementalJoin is falsy
        # (defines __len__), so truthiness would mis-dispatch.
        return self.join if self.join is not None else self.view

    @property
    def spec(self) -> JoinSpec:
        return self._engine().spec

    @property
    def n_live(self) -> int:
        return self._engine().n_live

    @property
    def dims(self) -> Optional[int]:
        return self._engine().dims

    @property
    def delta_size(self) -> int:
        return self.join.delta_size if self.join is not None else 0

    @property
    def estimated_join_size(self) -> float:
        # The view keeps no sketch; admission control falls back to the
        # analytic output model when this is 0.
        return self.join.estimated_join_size if self.join is not None else 0.0

    @property
    def last_update_seq(self) -> int:
        return self._engine().last_update_seq

    @property
    def stats(self) -> JoinStats:
        return self.join.stats if self.join is not None else self._view_stats

    @property
    def persisted(self) -> bool:
        if self.join is not None:
            return self.join.spec.persist_path is not None
        return True  # a view only ever comes from a persisted directory

    async def materialize(self) -> IncrementalJoin:
        """Promote a view-backed tenant to a full recovered session.

        Idempotent and cheap once promoted.  Taken under the session
        lock so concurrent mutations promote exactly once; the planner's
        stats carry over the ``snapshot-reuse`` decision that preceded
        the promotion.
        """
        if self.join is not None:
            return self.join
        async with self.lock:
            if self.join is None:
                with trace.span("serve.promote", tenant=self.name):
                    join = self._opener()
                view, self.view = self.view, None
                self.join = join
                join.stats.merge(self._view_stats)
                if view is not None:
                    view.close()
                if self._on_promote is not None:
                    self._on_promote(self)
        return self.join

    # ------------------------------------------------------------------
    # reads (work in both modes)
    # ------------------------------------------------------------------
    def range_query(
        self, point: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        return self._engine().range_query(point, eps=eps)

    def batch_range_query(
        self, queries: np.ndarray, eps: Optional[float] = None
    ) -> List[np.ndarray]:
        return self._engine().batch_range_query(queries, eps=eps)

    def mini_join(
        self, batch: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        """Join a probe batch against the live points, in session ids.

        Returns ``(k, 2)`` int64 pairs ``(batch row, live point id)``,
        sorted by batch row then id — the two-set analogue of
        :meth:`IncrementalJoin.batch_range_query`.  The execution
        strategy (serial vs parallel two-set join) is planned per
        request from the batch size, the live-set size, and the
        session's join-size sketch; both strategies emit byte-identical
        pairs.  Requires a materialized session.
        """
        if self.join is None:
            raise InvalidParameterError(
                f"tenant {self.name!r} is view-backed; materialize() "
                "before mini_join"
            )
        spec = self.join.spec
        if eps is None:
            eps = spec.epsilon
        eps = float(eps)
        if not np.isfinite(eps) or eps <= 0:
            raise InvalidParameterError(
                f"mini_join radius must be a positive finite number, got {eps!r}"
            )
        live = self.join.live_points()
        ids = self.join.live_ids()
        if len(live) == 0 or len(batch) == 0:
            return np.empty((0, 2), dtype=np.int64)
        join_spec = replace(spec, epsilon=eps, persist_path=None)
        plan = plan_execution(
            join_spec,
            len(batch),
            live.shape[1],
            n2=len(live),
            sketch_estimate=self.join.estimated_join_size or None,
            strategies=("serial", "parallel"),
        )
        self.last_plan = plan
        if plan.chosen == "parallel":
            result = parallel_join(batch, live, join_spec)
        else:
            result = epsilon_kdb_join(batch, live, join_spec)
        pairs = result.pairs
        if len(pairs) == 0:
            return np.empty((0, 2), dtype=np.int64)
        # live_points() is ascending-id order, so column 1 row indices
        # map to session ids by a single gather.
        mapped = np.column_stack([pairs[:, 0], ids[pairs[:, 1]]])
        order = np.lexsort((mapped[:, 1], mapped[:, 0]))
        return np.ascontiguousarray(mapped[order])

    # ------------------------------------------------------------------
    # mutations (caller must materialize() first)
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray) -> UpdateDelta:
        return self.join.insert(points)

    def delete(self, ids: np.ndarray) -> UpdateDelta:
        return self.join.delete(ids)

    def close(self) -> None:
        if self.join is not None:
            self.join.close()
        elif self.view is not None:
            self.view.close()


class SessionManager:
    """Tenant table: attach/get/detach plus orderly close of everything."""

    def __init__(self, metrics=None) -> None:
        self._tenants: Dict[str, TenantSession] = {}
        self.metrics = metrics

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def attach(
        self,
        name: str,
        *,
        spec: Optional[JoinSpec] = None,
        path: Optional[str] = None,
        keep_generations: Optional[int] = None,
        sync_mode: Optional[str] = None,
    ) -> TenantSession:
        """Open (or return) the tenant ``name``.

        A ``path`` opens/creates a persisted session: when the directory
        already holds snapshot generations, the cost-based planner
        weighs mapping the newest snapshot read-only (``snapshot-reuse``
        — a :class:`SnapshotView`, zero materialization) against a full
        recovery, and the view wins for the common read-only attach; a
        stale view (WAL ahead of the snapshot), a corrupt newest
        generation, or a losing plan falls back to
        :meth:`IncrementalJoin.open`.  Without a path the session is
        in-memory and ``spec`` is required.  Re-attaching an existing
        tenant returns the live session; a spec passed alongside must
        match its structural fingerprint.
        """
        if not name or not isinstance(name, str):
            raise InvalidParameterError(
                f"tenant name must be a non-empty string, got {name!r}"
            )
        existing = self._tenants.get(name)
        if existing is not None:
            if (
                spec is not None
                and spec.fingerprint() != existing.spec.fingerprint()
            ):
                raise InvalidParameterError(
                    f"tenant {name!r} is already attached with a different "
                    "spec; detach it first to change structural parameters"
                )
            return existing
        cache = TreeCache()
        session: Optional[TenantSession] = None
        if path is not None:
            def opener() -> IncrementalJoin:
                return IncrementalJoin.open(
                    path,
                    spec=spec,
                    sync_mode=sync_mode,
                    structure_cache=cache,
                    keep_generations=keep_generations,
                )

            session = self._try_view_attach(name, spec, path, opener)
            if session is None:
                session = TenantSession(name, opener())
        else:
            if spec is None:
                raise InvalidParameterError(
                    f"attaching in-memory tenant {name!r} requires a spec"
                )
            if keep_generations is not None:
                spec = replace(spec, keep_generations=keep_generations)
            session = TenantSession(
                name, IncrementalJoin(spec, structure_cache=cache)
            )
        self._tenants[name] = session
        return session

    def _try_view_attach(
        self,
        name: str,
        spec: Optional[JoinSpec],
        path: str,
        opener: Callable[[], IncrementalJoin],
    ) -> Optional[TenantSession]:
        """Attach ``name`` as a SnapshotView when the planner prefers it.

        Returns ``None`` (→ materialize instead) when the directory
        holds no snapshot yet, the view would be stale or corrupt, or
        the plan favors recovery.  A structural-spec mismatch raises,
        mirroring :meth:`IncrementalJoin.open`.
        """
        if not list_snapshots(path):
            return None
        try:
            view = SnapshotView.open(path)
        except StorageError:
            # Stale (WAL ahead) or damaged newest generation: recovery
            # handles both (replay / generation fallback).
            self._count("serve.view_fallback")
            return None
        if spec is not None and spec.fingerprint() != view.spec.fingerprint():
            view.close()
            raise InvalidParameterError(
                "the given spec does not match the persisted session "
                f"(fingerprint {spec.fingerprint()} != "
                f"{view.spec.fingerprint()}); attach without a spec to "
                "use the stored one"
            )
        plan = plan_execution(
            view.spec,
            view.n_live,
            view.dims or 1,
            snapshot_bytes=view.snapshot_bytes,
            strategies=("serial", "snapshot-reuse"),
        )
        self._count(f"serve.plan.{plan.chosen}")
        if plan.chosen != "snapshot-reuse":
            view.close()
            return None
        session = TenantSession(
            name,
            view=view,
            opener=opener,
            on_promote=lambda s: self._count("serve.tenant_promoted"),
        )
        session.last_plan = plan
        session._view_stats.predicted_cost = plan.predicted_cost
        session._view_stats.plan_seconds = plan.plan_seconds
        return session

    def get(self, name: str) -> TenantSession:
        session = self._tenants.get(name)
        if session is None:
            raise InvalidParameterError(f"unknown tenant {name!r}; attach it first")
        return session

    def detach(self, name: str) -> None:
        session = self._tenants.pop(name, None)
        if session is None:
            raise InvalidParameterError(f"unknown tenant {name!r}")
        session.close()

    def close_all(self) -> None:
        """Close every session (flushing journals); used at shutdown."""
        for name in list(self._tenants):
            self._tenants.pop(name).close()
