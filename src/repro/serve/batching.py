"""Query coalescing: merge concurrent range queries into batched passes.

Point lookups against a shared index are the serving layer's hot path,
and :meth:`FlatEpsilonKdbTree.batch_range_query` answers ``Q`` queries
in one leaf-directed traversal for far less than ``Q`` times the cost
of one.  The coalescer exploits that: the first query to arrive for a
``(tenant, radius)`` key opens a *window* of ``window_seconds``; every
query for the same key that lands inside the window joins the batch;
when the window closes, one batched traversal answers all of them and
each caller's future resolves with its own result array.

Because a single :meth:`~TenantSession.range_query` is itself a batch
of one, a coalesced answer is byte-identical to the answer the same
query would have gotten alone — batching changes latency, never
results (asserted in ``tests/test_serve.py``).

``window_seconds <= 0`` disables coalescing entirely (each submit runs
its own traversal synchronously); that is the naive baseline the E20
benchmark compares against.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.serve.sessions import TenantSession

__all__ = ["QueryCoalescer"]


class _Batch:
    """Queries accumulated for one (tenant, radius) window."""

    __slots__ = ("session", "eps", "points", "futures", "timer")

    def __init__(self, session: TenantSession, eps: Optional[float]):
        self.session = session
        self.eps = eps
        self.points: List[np.ndarray] = []
        self.futures: List[asyncio.Future] = []
        self.timer: Optional[asyncio.Task] = None


class QueryCoalescer:
    """Batches concurrent range queries per (tenant, radius) key."""

    def __init__(
        self,
        window_seconds: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.window_seconds = float(window_seconds)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pending: Dict[Tuple[str, Optional[float]], _Batch] = {}

    async def submit(
        self,
        session: TenantSession,
        point: np.ndarray,
        eps: Optional[float] = None,
    ) -> np.ndarray:
        """Answer one range query, possibly coalesced with concurrent ones."""
        if self.window_seconds <= 0:
            self.metrics.histogram("serve.coalesce_width").observe(1)
            return session.range_query(point, eps=eps)
        key = (session.name, eps)
        batch = self._pending.get(key)
        if batch is None:
            batch = _Batch(session, eps)
            self._pending[key] = batch
            batch.timer = asyncio.ensure_future(self._flush_later(key, batch))
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        batch.points.append(np.asarray(point, dtype=np.float64))
        batch.futures.append(future)
        return await future

    async def _flush_later(self, key, batch: _Batch) -> None:
        try:
            await asyncio.sleep(self.window_seconds)
        except asyncio.CancelledError:
            return  # flush_all took over this batch
        if self._pending.get(key) is batch:
            del self._pending[key]
        self._run(batch)

    def _run(self, batch: _Batch) -> None:
        """Execute one batched traversal and resolve every waiter."""
        if not batch.futures:
            return
        self.metrics.histogram("serve.coalesce_width").observe(len(batch.futures))
        try:
            queries = np.stack(batch.points)
            results = batch.session.batch_range_query(queries, eps=batch.eps)
        except Exception as exc:  # propagate to every waiter, not the loop
            for future in batch.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, ids in zip(batch.futures, results):
            if not future.done():
                future.set_result(ids)

    async def flush_all(self) -> None:
        """Flush every open window immediately (graceful shutdown)."""
        batches = list(self._pending.values())
        self._pending.clear()
        for batch in batches:
            if batch.timer is not None:
                batch.timer.cancel()
            self._run(batch)
        # Let cancelled timers unwind before the caller tears the loop down.
        await asyncio.sleep(0)
