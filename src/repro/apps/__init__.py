"""End-to-end applications built on the similarity join.

The paper motivates the join with two concrete systems; this package
implements both as complete pipelines:

* :mod:`repro.apps.sequences` — whole-sequence similar-time-sequence
  matching: z-normalize, reduce to DFT features whose distance provably
  lower-bounds the true distance (no false dismissals), join the
  features, verify the candidates.
* :mod:`repro.apps.images` — near-duplicate image detection over color
  histograms, with duplicate *groups* produced by a union-find over the
  join output.
"""

from repro.apps.images import DuplicateGroups, find_duplicate_images
from repro.apps.sequences import SequenceMatchResult, find_similar_sequences

__all__ = [
    "find_similar_sequences",
    "SequenceMatchResult",
    "find_duplicate_images",
    "DuplicateGroups",
]
