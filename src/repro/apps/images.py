"""Near-duplicate image detection — the paper's second application.

Images are color histograms; two images are near-duplicates when their
histograms are within epsilon under L1.  On top of the raw join output,
curators want duplicate *groups*, so this module adds a union-find over
the joined pairs and reports connected components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.join import epsilon_kdb_self_join
from repro.core.result import JoinStats
from repro.errors import InvalidParameterError


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    def __init__(self, size: int):
        if size < 0:
            raise InvalidParameterError(f"size must be >= 0, got {size}")
        self._parent = np.arange(size, dtype=np.int64)
        self._size = np.ones(size, dtype=np.int64)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = int(self._parent[root])
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, int(self._parent[item])
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already merged."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def components(self) -> Dict[int, List[int]]:
        """Map each root to the sorted members of its set."""
        groups: Dict[int, List[int]] = {}
        for item in range(len(self._parent)):
            groups.setdefault(self.find(item), []).append(item)
        return groups


@dataclass
class DuplicateGroups:
    """Join output organized for a curator.

    ``groups`` lists every connected component with at least two
    members, largest first; ``pairs`` is the raw verified join output.
    """

    pairs: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    groups: List[List[int]] = field(default_factory=list)
    join_stats: JoinStats = field(default_factory=JoinStats)

    @property
    def duplicate_images(self) -> int:
        return sum(len(group) for group in self.groups)


def find_duplicate_images(
    histograms: np.ndarray,
    epsilon: float,
    metric: str = "l1",
    leaf_size: int = 128,
) -> DuplicateGroups:
    """Join histograms at ``epsilon`` and group the duplicates.

    Rows of ``histograms`` are expected (but not required) to be
    normalized color histograms; any feature matrix works.
    """
    histograms = validate_points(histograms, "histograms")
    spec = JoinSpec(epsilon=epsilon, metric=metric, leaf_size=leaf_size)
    result = epsilon_kdb_self_join(histograms, spec)
    forest = UnionFind(len(histograms))
    for left, right in result.pairs:
        forest.union(int(left), int(right))
    groups = [
        sorted(members)
        for members in forest.components().values()
        if len(members) > 1
    ]
    groups.sort(key=lambda group: (-len(group), group[0]))
    return DuplicateGroups(
        pairs=result.pairs, groups=groups, join_stats=result.stats
    )
