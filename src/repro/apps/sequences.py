"""Whole-sequence similarity matching — the paper's flagship application.

Pipeline (the GEMINI recipe of the similar-time-sequences literature the
paper builds on):

1. z-normalize every sequence, so similarity means shape;
2. reduce each to its leading DFT coefficients;
3. **similarity-join the feature vectors** — the step this paper's
   contribution accelerates;
4. verify every candidate pair against the true (full-length) distance.

Step 3 is safe because of a Parseval lower bound: with the unitary DFT,
the squared distance between two z-normalized real sequences equals the
squared distance between their full spectra, and the symmetric half of
the spectrum appears twice.  Keeping coefficients ``1..c`` and scaling
by sqrt(2) therefore gives feature vectors with

    dist(features) <= dist(sequences)

so joining the features at the query threshold epsilon returns a
*superset* of the true matches — candidates may be false positives
(removed in step 4) but **never false dismissals**.  The result object
reports the candidate and match counts so the filter's quality (the
classic "candidate ratio" metric) is observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import JoinSpec
from repro.core.join import epsilon_kdb_self_join
from repro.core.result import JoinStats
from repro.datasets.timeseries import dft_features
from repro.errors import InvalidParameterError


@dataclass
class SequenceMatchResult:
    """Outcome of one whole-sequence matching run.

    ``matches`` holds ``(i, j, distance)`` per verified pair (as an
    ``(m, 2)`` int array plus a parallel distance array); ``candidates``
    counts the feature-join output before verification.
    """

    pairs: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    distances: np.ndarray = field(default_factory=lambda: np.empty(0))
    candidates: int = 0
    join_stats: JoinStats = field(default_factory=JoinStats)

    @property
    def matches(self) -> int:
        return int(len(self.pairs))

    @property
    def candidate_ratio(self) -> float:
        """Candidates per true match; 1.0 is a perfect filter."""
        if self.matches == 0:
            return math.inf if self.candidates else 1.0
        return self.candidates / self.matches


def normalized_sequences(series: np.ndarray) -> np.ndarray:
    """z-normalize rows (zero mean, unit variance; constant rows -> 0)."""
    series = np.asarray(series, dtype=np.float64)
    mean = series.mean(axis=1, keepdims=True)
    std = series.std(axis=1, keepdims=True)
    std[std == 0.0] = 1.0
    return (series - mean) / std


def true_distances(
    normalized: np.ndarray, pairs: np.ndarray
) -> np.ndarray:
    """Exact Euclidean distances between paired normalized sequences."""
    if len(pairs) == 0:
        return np.empty(0)
    diff = normalized[pairs[:, 0]] - normalized[pairs[:, 1]]
    return np.sqrt(np.sum(diff * diff, axis=1))


def find_similar_sequences(
    series: np.ndarray,
    epsilon: float,
    coefficients: int = 8,
    leaf_size: int = 128,
    keep_candidates: Optional[bool] = False,
) -> SequenceMatchResult:
    """All pairs of sequences within ``epsilon`` in z-normalized L2.

    Args:
        series: ``(count, length)`` array of raw sequences.
        epsilon: threshold on the *true* distance between z-normalized
            sequences (inclusive).
        coefficients: DFT coefficients kept for the filter step; more
            coefficients mean a tighter filter (fewer candidates) at a
            higher join dimensionality — the tradeoff experiment E12
            sweeps.
        leaf_size: forwarded to the epsilon-kdB join.
        keep_candidates: retain the unverified candidate pairs on the
            result (as ``result.candidate_pairs``) for diagnostics.

    Returns:
        :class:`SequenceMatchResult` with verified pairs only.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise InvalidParameterError(
            f"series must be 2-D (count, length), got shape {series.shape}"
        )
    if not np.isfinite(epsilon) or epsilon <= 0:
        raise InvalidParameterError(
            f"epsilon must be a positive finite number, got {epsilon!r}"
        )
    result = SequenceMatchResult()
    if len(series) < 2:
        return result

    # sqrt(2): each kept coefficient represents itself and its conjugate
    # mirror, so doubling its energy preserves the lower bound exactly.
    features = math.sqrt(2.0) * dft_features(
        series, coefficients=coefficients, normalize=True
    )
    spec = JoinSpec(epsilon=epsilon, metric="l2", leaf_size=leaf_size)
    join_result = epsilon_kdb_self_join(features, spec)
    candidates = join_result.pairs
    result.candidates = len(candidates)
    result.join_stats = join_result.stats

    normalized = normalized_sequences(series)
    distances = true_distances(normalized, candidates)
    keep = distances <= epsilon
    result.pairs = candidates[keep]
    result.distances = distances[keep]
    if keep_candidates:
        result.candidate_pairs = candidates  # type: ignore[attr-defined]
    return result
