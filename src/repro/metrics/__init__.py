"""Distance metrics used by every join algorithm in the package.

The similarity-join algorithms prune candidates per coordinate, which is
valid for any L_p metric because ``|x_k - y_k|`` is a lower bound on every
L_p distance.  The kernels here provide scalar, row-gather and blocked
evaluation so both the tree traversals and the vectorized leaf joins can
share one implementation.
"""

from repro.metrics.lp import (
    L1,
    L2,
    LINF,
    ChebyshevMetric,
    LpMetric,
    Metric,
    WeightedLpMetric,
    get_metric,
    lp_metric,
)

__all__ = [
    "Metric",
    "LpMetric",
    "ChebyshevMetric",
    "WeightedLpMetric",
    "L1",
    "L2",
    "LINF",
    "lp_metric",
    "get_metric",
]
