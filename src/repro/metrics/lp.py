"""L_p distance kernels.

Three evaluation shapes are provided by every metric:

* ``pair(x, y)`` — scalar distance between two points.
* ``within_rows(X, Y, i, j, eps)`` — boolean mask for gathered row pairs
  ``(X[i[k]], Y[j[k]])``; this is the hot path of the vectorized leaf
  sort-merge joins.
* ``within_block(A, B, eps)`` — dense ``(m, n)`` boolean matrix; used by
  the blocked brute-force baseline.

All comparisons against ``eps`` are inclusive (``distance <= eps``), which
matches the join predicate of the paper.  For L2 the kernels compare
squared quantities so no square roots are taken on the hot path.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import InvalidParameterError

#: Rows processed per chunk in ``within_rows``; bounds peak memory of the
#: gathered coordinate blocks at roughly ``2 * CHUNK * d`` floats.
_ROW_CHUNK = 262_144


class Metric:
    """Abstract base class for distance metrics.

    Subclasses implement :meth:`_reduce_abs_diff`, which folds an array of
    absolute coordinate differences (last axis = dimension) into a
    comparable "distance key", and expose :meth:`key` which maps an
    ``eps`` threshold into the same key space.  Distances are then
    compared as ``reduced <= key(eps)``.
    """

    #: Human-readable name; also the lookup key for :func:`get_metric`.
    name: str = "abstract"

    #: Whether :meth:`accumulate_abs_diff` is implemented, i.e. the
    #: distance key can be built up over dimension blocks in any order.
    #: The filter-cascade kernels (:mod:`repro.core.kernels`) only engage
    #: for metrics that set this.
    supports_cascade: bool = False

    def _reduce_abs_diff(self, diff: np.ndarray) -> np.ndarray:
        """Fold ``|x - y|`` along the last axis into a distance key."""
        raise NotImplementedError

    def accumulate_abs_diff(
        self, acc: np.ndarray, diff_block: np.ndarray, dims: Sequence[int]
    ) -> np.ndarray:
        """Fold a block of ``|x - y|`` columns into a running distance key.

        ``acc`` is the per-row partial key so far (``0`` for an empty
        prefix), ``diff_block`` is ``(m, b)`` absolute differences for the
        original dimensions ``dims`` (needed by weighted metrics), and the
        return value is the updated ``(m,)`` partial key.  Because every
        L_p key is a dimension-wise sum (or max), partial keys are
        monotonically non-decreasing — the property the short-circuit
        kernels rely on to drop rows early.
        """
        raise NotImplementedError

    def key(self, eps: float) -> float:
        """Map a distance threshold into the reduced key space."""
        raise NotImplementedError

    def unkey(self, key_value: float) -> float:
        """Inverse of :meth:`key`; maps a key back to a distance."""
        raise NotImplementedError

    def coordinate_bound(self, eps: float) -> float:
        """Largest single-coordinate difference a pair within ``eps`` can have.

        Every pruning structure in the library (grid cells, band sweeps,
        stripes) filters on one coordinate at a time; this bound is the
        width they must use.  For unweighted L_p metrics it is ``eps``
        itself; a weighted metric with a coordinate weight below 1 allows
        larger per-coordinate differences and must report them here, or
        the adjacent-cell rule would silently drop pairs.
        """
        return float(eps)

    # ------------------------------------------------------------------
    # public evaluation shapes
    # ------------------------------------------------------------------
    def pair(self, x: np.ndarray, y: np.ndarray) -> float:
        """Distance between two points given as 1-D arrays."""
        diff = np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float))
        return self.unkey(float(self._reduce_abs_diff(diff)))

    def within_pair(self, x: np.ndarray, y: np.ndarray, eps: float) -> bool:
        """Whether two points are within ``eps`` of each other."""
        diff = np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float))
        return bool(self._reduce_abs_diff(diff) <= self.key(eps))

    def within_rows(
        self,
        points_a: np.ndarray,
        points_b: np.ndarray,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        eps: float,
    ) -> np.ndarray:
        """Boolean mask: ``dist(points_a[rows_a[k]], points_b[rows_b[k]]) <= eps``.

        Evaluates in fixed-size chunks so candidate lists of arbitrary
        length never materialize more than ``_ROW_CHUNK`` gathered rows.
        """
        rows_a = np.asarray(rows_a)
        rows_b = np.asarray(rows_b)
        n = rows_a.shape[0]
        if rows_b.shape[0] != n:
            raise InvalidParameterError(
                "row index arrays must have equal length: "
                f"{n} != {rows_b.shape[0]}"
            )
        threshold = self.key(eps)
        out = np.empty(n, dtype=bool)
        for start in range(0, n, _ROW_CHUNK):
            stop = min(start + _ROW_CHUNK, n)
            diff = np.abs(
                points_a[rows_a[start:stop]] - points_b[rows_b[start:stop]]
            )
            out[start:stop] = self._reduce_abs_diff(diff) <= threshold
        return out

    def within_block(
        self, block_a: np.ndarray, block_b: np.ndarray, eps: float
    ) -> np.ndarray:
        """Dense ``(m, n)`` mask of pairs within ``eps``.

        ``block_a`` is ``(m, d)`` and ``block_b`` is ``(n, d)``.  Callers
        are responsible for keeping ``m * n`` modest; the brute-force
        baseline tiles its input accordingly.
        """
        diff = np.abs(block_a[:, None, :] - block_b[None, :, :])
        return self._reduce_abs_diff(diff) <= self.key(eps)

    def within_gap(self, gaps: np.ndarray, eps: float) -> np.ndarray:
        """Whether per-coordinate gap vectors are within ``eps``.

        ``gaps`` holds non-negative per-dimension separations (last axis
        = dimension), e.g. the coordinate-wise distance between two
        bounding boxes.  Returns ``mindist <= eps`` without computing
        roots.  Used by the R-tree join for box-level pruning.
        """
        return self._reduce_abs_diff(np.asarray(gaps)) <= self.key(eps)

    def distance_rows(
        self,
        points_a: np.ndarray,
        points_b: np.ndarray,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
    ) -> np.ndarray:
        """Exact distances for gathered row pairs (used in reporting)."""
        diff = np.abs(points_a[np.asarray(rows_a)] - points_b[np.asarray(rows_b)])
        reduced = self._reduce_abs_diff(diff)
        return np.array([self.unkey(v) for v in np.atleast_1d(reduced)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Metric {self.name}>"


class LpMetric(Metric):
    """Minkowski metric of order ``p`` for finite ``p >= 1``.

    The reduced key is ``sum(|x_k - y_k| ** p)`` and thresholds are
    compared as ``key <= eps ** p``, avoiding the ``p``-th root on the
    hot path.
    """

    supports_cascade = True

    def __init__(self, p: float):
        if not np.isfinite(p) or p < 1:
            raise InvalidParameterError(
                f"Lp metrics require finite p >= 1, got {p!r}"
            )
        self.p = float(p)
        self.name = f"l{p:g}"

    def _reduce_abs_diff(self, diff: np.ndarray) -> np.ndarray:
        if self.p == 1.0:
            return diff.sum(axis=-1)
        if self.p == 2.0:
            # squaring is much faster than a general power
            return np.square(diff).sum(axis=-1)
        return np.power(diff, self.p).sum(axis=-1)

    def accumulate_abs_diff(
        self, acc: np.ndarray, diff_block: np.ndarray, dims: Sequence[int]
    ) -> np.ndarray:
        return acc + self._reduce_abs_diff(diff_block)

    def key(self, eps: float) -> float:
        return float(eps) ** self.p

    def unkey(self, key_value: float) -> float:
        return float(key_value) ** (1.0 / self.p)


class ChebyshevMetric(Metric):
    """The L-infinity (maximum-coordinate-difference) metric."""

    name = "linf"
    supports_cascade = True

    def _reduce_abs_diff(self, diff: np.ndarray) -> np.ndarray:
        return diff.max(axis=-1)

    def accumulate_abs_diff(
        self, acc: np.ndarray, diff_block: np.ndarray, dims: Sequence[int]
    ) -> np.ndarray:
        return np.maximum(acc, diff_block.max(axis=-1))

    def key(self, eps: float) -> float:
        return float(eps)

    def unkey(self, key_value: float) -> float:
        return float(key_value)


class WeightedLpMetric(Metric):
    """Weighted Minkowski metric: ``(sum w_k |x_k - y_k|**p) ** (1/p)``.

    The weighted Euclidean distance (``p=2``) is what the
    similar-sequences literature uses to emphasize some feature
    coordinates over others.  All weights must be positive; with
    ``p=inf`` the metric is ``max_k w_k |x_k - y_k|``.

    The per-coordinate pruning bound is ``eps / min(w) ** (1/p)``
    (``eps / min(w)`` for the weighted maximum), which
    :meth:`coordinate_bound` reports so grids and band sweeps stay
    exact even when some weights are below one.
    """

    supports_cascade = True

    def __init__(self, p: float, weights):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise InvalidParameterError(
                f"weights must be a non-empty 1-D array, got shape "
                f"{weights.shape}"
            )
        if not np.isfinite(weights).all() or np.any(weights <= 0):
            raise InvalidParameterError("weights must be positive and finite")
        if p != np.inf and (not np.isfinite(p) or p < 1):
            raise InvalidParameterError(
                f"weighted Lp metrics require p >= 1 or inf, got {p!r}"
            )
        self.p = float(p)
        self.weights = weights
        self.name = f"weighted-l{p:g}"
        self._weight_cache: dict = {weights.dtype: weights}

    def _weights_as(self, dtype: np.dtype) -> np.ndarray:
        """The weight vector in ``dtype``, so float32 inputs stay float32.

        Multiplying float64 weights into a float32 diff block would
        silently upcast the whole block (doubling its peak memory); the
        cast-once-and-cache here keeps the kernels dtype-preserving.
        Non-float inputs keep the float64 weights (an int diff must
        upcast to hold the weighted key at all).
        """
        if not np.issubdtype(dtype, np.floating):
            return self.weights
        cached = self._weight_cache.get(dtype)
        if cached is None:
            cached = self._weight_cache[dtype] = self.weights.astype(dtype)
        return cached

    def _reduce_abs_diff(self, diff: np.ndarray) -> np.ndarray:
        if diff.shape[-1] != len(self.weights):
            raise InvalidParameterError(
                f"metric has {len(self.weights)} weights but points have "
                f"{diff.shape[-1]} dimensions"
            )
        weights = self._weights_as(diff.dtype)
        if self.p == np.inf:
            return (weights * diff).max(axis=-1)
        if self.p == 2.0:
            return (weights * np.square(diff)).sum(axis=-1)
        return (weights * np.power(diff, self.p)).sum(axis=-1)

    def accumulate_abs_diff(
        self, acc: np.ndarray, diff_block: np.ndarray, dims: Sequence[int]
    ) -> np.ndarray:
        weights = self._weights_as(diff_block.dtype)[np.asarray(dims)]
        if self.p == np.inf:
            return np.maximum(acc, (weights * diff_block).max(axis=-1))
        if self.p == 2.0:
            return acc + (weights * np.square(diff_block)).sum(axis=-1)
        return acc + (weights * np.power(diff_block, self.p)).sum(axis=-1)

    def key(self, eps: float) -> float:
        if self.p == np.inf:
            return float(eps)
        return float(eps) ** self.p

    def unkey(self, key_value: float) -> float:
        if self.p == np.inf:
            return float(key_value)
        return float(key_value) ** (1.0 / self.p)

    def coordinate_bound(self, eps: float) -> float:
        min_weight = float(self.weights.min())
        if self.p == np.inf:
            return float(eps) / min_weight
        return float(eps) / min_weight ** (1.0 / self.p)


#: Shared singleton instances for the common metrics.
L1 = LpMetric(1)
L2 = LpMetric(2)
LINF = ChebyshevMetric()

_NAMED = {
    "l1": L1,
    "manhattan": L1,
    "l2": L2,
    "euclidean": L2,
    "linf": LINF,
    "chebyshev": LINF,
    "max": LINF,
}


def lp_metric(p: float) -> Metric:
    """Return the L_p metric for ``p`` (``inf`` gives Chebyshev)."""
    if np.isinf(p):
        return LINF
    return LpMetric(p)


def get_metric(metric: Union[str, float, Metric]) -> Metric:
    """Resolve a metric given by name, order ``p`` or instance.

    Accepts the names ``l1``/``manhattan``, ``l2``/``euclidean``,
    ``linf``/``chebyshev``/``max``, a numeric Minkowski order, or an
    existing :class:`Metric` (returned unchanged).
    """
    if isinstance(metric, Metric):
        return metric
    if isinstance(metric, str):
        try:
            return _NAMED[metric.lower()]
        except KeyError:
            raise InvalidParameterError(
                f"unknown metric name {metric!r}; expected one of "
                f"{sorted(_NAMED)}"
            ) from None
    if isinstance(metric, (int, float)):
        return lp_metric(float(metric))
    raise InvalidParameterError(f"cannot interpret {metric!r} as a metric")
