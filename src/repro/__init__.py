"""repro — high-dimensional similarity joins.

A from-scratch reproduction of *"High Dimensional Similarity Joins:
Algorithms and Performance Evaluation"*: the epsilon-kdB tree and its
join algorithms, the baselines the paper evaluates against (R-tree
spatial join, sort-merge, brute force, epsilon-grid), the synthetic and
feature-vector workloads of its evaluation, and an external-memory
variant over a simulated paged disk.

Quickstart::

    import numpy as np
    from repro import similarity_join

    points = np.random.default_rng(0).random((5000, 16))
    pairs = similarity_join(points, epsilon=0.3)          # (n, 2) indices
    pairs_rs = similarity_join(points, points2, epsilon=0.3)

The full machinery (pre-built trees, counting sinks, statistics, the
baselines) is available from the subpackages; see README.md.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Union

import numpy as np

from repro.apps import (
    DuplicateGroups,
    SequenceMatchResult,
    find_duplicate_images,
    find_similar_sequences,
)
from repro.baselines import (
    RPlusTree,
    RTree,
    brute_force_join,
    brute_force_self_join,
    grid_join,
    grid_self_join,
    index_nested_loop_join,
    rplus_join,
    rplus_self_join,
    rtree_join,
    rtree_self_join,
    sort_merge_join,
    sort_merge_self_join,
    zorder_join,
    zorder_self_join,
)
from repro.core import (
    EpsilonKdbTree,
    ExternalJoinReport,
    FaultPlan,
    FlatEpsilonKdbTree,
    Grid,
    IncrementalJoin,
    JoinResult,
    JoinSizeSketch,
    JoinSpec,
    JoinStats,
    PairCollector,
    PairCounter,
    ParallelJoinExecutor,
    TreeCache,
    UpdateDelta,
    apply_update_stream,
    epsilon_kdb_join,
    epsilon_kdb_self_join,
    epsilon_sweep,
    external_join,
    external_self_join,
    parallel_join,
    parallel_self_join,
    subtract_pairs,
)
from repro.errors import (
    AdmissionError,
    CorruptSnapshotError,
    DomainError,
    InvalidParameterError,
    ReproError,
    SessionCrashError,
    StorageError,
    TaskTimeoutError,
    TransientIoError,
    WorkerCrashError,
)
from repro.metrics import (
    L1,
    L2,
    LINF,
    Metric,
    WeightedLpMetric,
    get_metric,
    lp_metric,
)
from repro.obs import MetricsRegistry, Tracer, trace
from repro.planner import (
    CostProfile,
    ExecutionPlan,
    calibrate,
    plan_execution,
)

__version__ = "1.0.0"

#: Algorithm registry used by :func:`similarity_join` and the CLI.
_SELF_JOIN_ALGORITHMS = {
    "epsilon-kdb": epsilon_kdb_self_join,
    "epsilon-kdb-parallel": parallel_self_join,
    "rtree": rtree_self_join,
    "rplus": rplus_self_join,
    "zorder": zorder_self_join,
    "sort-merge": sort_merge_self_join,
    "grid": grid_self_join,
    "brute-force": brute_force_self_join,
}

_TWO_SET_ALGORITHMS = {
    "epsilon-kdb": epsilon_kdb_join,
    "epsilon-kdb-parallel": parallel_join,
    "rtree": rtree_join,
    "rplus": rplus_join,
    "zorder": zorder_join,
    "index-nested-loop": index_nested_loop_join,
    "sort-merge": sort_merge_join,
    "grid": grid_join,
    "brute-force": brute_force_join,
}

ALGORITHMS = tuple(_SELF_JOIN_ALGORITHMS)

#: Strategies the facade planner scores for a batch join; delta-probe
#: and snapshot-reuse only make sense against a live or persisted
#: session, which the serve layer plans separately.
_PLANNED_STRATEGIES = ("serial", "pointer", "parallel", "external", "sort-merge")


def _run_planned_strategy(plan, points, points2, spec):
    """Execute the strategy ``plan`` chose; every branch emits pairs
    byte-identical to the serial epsilon-kdb join (the differential
    suite proves it)."""
    strategy = plan.chosen
    if strategy == "pointer":
        spec = replace(spec, build="pointer")
    if points2 is None:
        if strategy == "parallel":
            return parallel_self_join(points, spec)
        if strategy == "sort-merge":
            return sort_merge_self_join(points, spec)
        if strategy == "external":
            report = external_self_join(
                points, spec, memory_points=max(2, len(points))
            )
            return JoinResult(stats=report.stats, pairs=report.pairs)
        return epsilon_kdb_self_join(points, spec)
    if strategy == "parallel":
        return parallel_join(points, points2, spec)
    if strategy == "sort-merge":
        return sort_merge_join(points, points2, spec)
    if strategy == "external":
        report = external_join(
            points, points2, spec,
            memory_points=max(2, len(points) + len(points2)),
        )
        return JoinResult(stats=report.stats, pairs=report.pairs)
    return epsilon_kdb_join(points, points2, spec)


def similarity_join(
    points: np.ndarray,
    points2: Optional[np.ndarray] = None,
    *,
    epsilon: float,
    metric: Union[str, float, Metric] = "l2",
    algorithm: str = "epsilon-kdb",
    leaf_size: int = 128,
    parallel: bool = False,
    n_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    max_task_retries: Optional[int] = None,
    cascade: str = "auto",
    filter_dims: Optional[int] = None,
    kernel_backend: str = "auto",
    build: str = "auto",
    engine: str = "auto",
    updates: Optional[Sequence] = None,
    delta_threshold: Optional[int] = None,
    persist_path: Optional[str] = None,
    sync_mode: Optional[str] = None,
    keep_generations: Optional[int] = None,
    return_result: bool = False,
):
    """Find all point pairs within ``epsilon`` of each other.

    With one array, performs a self-join and returns an ``(m, 2)`` array
    of index pairs ``i < j``.  With two arrays, performs an R-against-S
    join and returns pairs ``(i, j)`` indexing the first and second array
    respectively.

    Args:
        points: ``(n, d)`` array of points.
        points2: optional second point set for a two-set join.
        epsilon: join distance threshold (inclusive).
        metric: ``"l1"``, ``"l2"``, ``"linf"``, a Minkowski order, or a
            :class:`~repro.metrics.Metric` instance.
        algorithm: one of ``"epsilon-kdb"`` (the paper's contribution,
            default), ``"epsilon-kdb-parallel"`` (its multi-core
            stripe-partitioned executor), ``"rplus"`` (the paper's
            R+-tree baseline), ``"rtree"``, ``"zorder"``,
            ``"sort-merge"``, ``"grid"``, ``"brute-force"``.
        leaf_size: epsilon-kdB leaf split threshold (ignored by the
            baselines).
        parallel: shorthand for ``algorithm="epsilon-kdb-parallel"``;
            only valid with the default algorithm.  Output is identical
            to the serial join.
        n_workers: worker-process count for the parallel executor
            (``None``: all cores; ``1``: serial path).  Implies
            ``parallel`` when set.
        task_timeout: per-stripe-task deadline in seconds for the
            parallel executor; timed-out attempts are retried (and
            counted in ``stats.tasks_timed_out``).  ``None`` disables
            deadlines.  Only meaningful with the parallel algorithm.
        max_task_retries: pool re-dispatch budget per stripe task before
            the final in-parent attempt.  ``None`` keeps the
            :class:`~repro.core.config.JoinSpec` default.
        cascade: filter-cascade kernel policy for the distance checks:
            ``"auto"`` (default; on for d >= 8 when the metric supports
            it), ``"on"``, or ``"off"``.  Never changes the result, only
            the work per candidate.
        filter_dims: number of single-dimension pre-filter stages the
            cascade runs before the blocked distance reduction
            (``None``: scale with dimensionality).
        kernel_backend: which
            :class:`~repro.core.backends.KernelBackend` executes the
            cascade: ``"auto"`` (default; numba when importable, else
            numpy), ``"numpy"``, or ``"numba"`` (falls back to numpy
            with a warning when numba is absent).  Every backend emits
            byte-identical pairs; ``result.stats.kernel_backend``
            records which one ran.
        build: epsilon-kdB tree construction strategy: ``"auto"``
            (default, currently the flat build), ``"flat"`` (vectorized
            radix cell-coding build), or ``"pointer"`` (per-node object
            build).  Both builds produce byte-identical pairs; only the
            build cost differs.  Ignored by the baselines.
        engine: which execution strategy runs the ``epsilon-kdb``
            algorithm: ``"auto"`` (default) asks the cost-based planner
            (:mod:`repro.planner`) to score serial, pointer-build,
            parallel, external, and sort-merge execution against the
            host's calibrated :class:`~repro.planner.CostProfile` and
            run the predicted-cheapest; a pinned value runs that
            strategy directly (the plan is still computed and recorded
            for the mispredict metrics).  Every strategy emits
            byte-identical pairs; ``result.stats.planned_strategy`` /
            ``predicted_cost`` / ``plan_seconds`` and ``result.plan``
            record the decision.  Only meaningful with the default
            algorithm; update/persisted sessions accept ``"serial"`` or
            ``"parallel"``.
        updates: optional sequence of ``("insert", points)`` /
            ``("delete", ids)`` operations (or the equivalent ``{"op":
            ...}`` mappings) applied *after* ``points`` through an
            :class:`~repro.core.incremental.IncrementalJoin` session.
            ``points`` seeds the session with ids ``0..n-1``; inserted
            batches continue the id sequence.  The returned pairs are
            the surviving *id* pairs — byte-identical to a from-scratch
            join over the surviving points mapped to their ids.  Only
            the ``epsilon-kdb`` algorithms support updates; incompatible
            with ``points2``.
        delta_threshold: delta-buffer compaction trigger for the update
            session (``None``: scale with the base size).  Only
            meaningful with ``updates``.
        persist_path: directory for a crash-consistent on-disk session
            (checksummed snapshots plus a write-ahead log; see
            ``docs/persistence.md``).  An empty or missing directory
            starts a fresh session; a directory already holding one is
            *resumed* — its durable state is recovered first, then
            ``points`` (if non-empty) and ``updates`` are applied on
            top.  The returned pairs are the surviving *id* pairs of the
            whole session, byte-identical to a never-interrupted run.
            Implies the epsilon-kdb update session even when ``updates``
            is ``None``.
        sync_mode: WAL durability policy for ``persist_path``:
            ``"always"`` (fsync per update), ``"batch"`` (default;
            fsync at snapshot boundaries), or ``"off"``.
        keep_generations: snapshot generations the ``persist_path``
            session retains on disk (older ones are pruned at each
            compaction).  ``None`` keeps the spec default of 2; must be
            at least 1.  A runtime knob: it may differ freely between
            runs over the same session directory.
        return_result: when true, return the full
            :class:`~repro.core.result.JoinResult` (pairs *and*
            statistics) instead of just the pair array.

    Returns:
        ``(m, 2)`` int64 array of qualifying index pairs, or a
        :class:`~repro.core.result.JoinResult` when ``return_result``.
    """
    if parallel or n_workers is not None:
        if algorithm not in ("epsilon-kdb", "epsilon-kdb-parallel"):
            raise InvalidParameterError(
                "parallel execution is only available for the epsilon-kdb "
                f"algorithm, not {algorithm!r}"
            )
        if engine not in ("auto", "parallel"):
            raise InvalidParameterError(
                f"parallel=True/n_workers conflicts with engine={engine!r}"
            )
        algorithm = "epsilon-kdb-parallel"
    if engine != "auto" and algorithm not in (
        "epsilon-kdb", "epsilon-kdb-parallel"
    ):
        raise InvalidParameterError(
            "engine selection only applies to the epsilon-kdb algorithm, "
            f"not {algorithm!r}"
        )
    spec_kwargs = dict(
        epsilon=epsilon,
        metric=metric,
        leaf_size=leaf_size,
        n_workers=n_workers,
        cascade=cascade,
        filter_dims=filter_dims,
        kernel_backend=kernel_backend,
        build=build,
        engine=engine,
    )
    if task_timeout is not None:
        spec_kwargs["task_timeout"] = task_timeout
    if max_task_retries is not None:
        spec_kwargs["max_task_retries"] = max_task_retries
    if delta_threshold is not None:
        spec_kwargs["delta_threshold"] = delta_threshold
    spec = JoinSpec(**spec_kwargs)
    if sync_mode is not None and persist_path is None:
        raise InvalidParameterError(
            "sync_mode is only meaningful together with persist_path"
        )
    if keep_generations is not None and persist_path is None:
        raise InvalidParameterError(
            "keep_generations is only meaningful together with persist_path"
        )
    if updates is not None or persist_path is not None:
        if points2 is not None:
            raise InvalidParameterError(
                "update/persisted sessions are only supported for "
                "self-joins, not two-set joins"
            )
        if algorithm not in ("epsilon-kdb", "epsilon-kdb-parallel"):
            raise InvalidParameterError(
                "update/persisted sessions are only supported by the "
                f"epsilon-kdb algorithms, not {algorithm!r}"
            )
        if engine not in ("auto", "serial", "parallel"):
            raise InvalidParameterError(
                "update/persisted sessions execute serially or in "
                f"parallel, not engine={engine!r}"
            )
        session_engine = (
            "parallel"
            if algorithm == "epsilon-kdb-parallel" or engine == "parallel"
            else "serial"
        )
        stream = list(updates) if updates is not None else []
        points = np.asarray(points, dtype=np.float64)
        if len(points):
            stream.insert(0, ("insert", points))
        if persist_path is not None:
            session = IncrementalJoin.open(
                persist_path,
                spec=spec,
                sync_mode=sync_mode,
                engine=session_engine,
                keep_generations=keep_generations,
            )
            try:
                apply_update_stream(session, stream)
                # The accumulated live pair set — identical to what a
                # fresh session's added-minus-retracted ledger yields,
                # but also correct when the session was resumed.
                pairs = session.current_pairs()
                stats = session.stats
            finally:
                session.close()
            if not return_result:
                return pairs
            return JoinResult(stats=stats, pairs=pairs)
        session = IncrementalJoin(spec, engine=session_engine)
        added, retracted = apply_update_stream(session, stream)
        pairs = subtract_pairs(added, retracted)
        if not return_result:
            return pairs
        result = JoinResult(stats=session.stats, pairs=pairs)
        return result
    registry = _SELF_JOIN_ALGORITHMS if points2 is None else _TWO_SET_ALGORITHMS
    try:
        runner = registry[algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(registry)}"
        ) from None
    if algorithm == "epsilon-kdb":
        pts = np.asarray(points, dtype=np.float64)
        pts2 = (
            np.asarray(points2, dtype=np.float64)
            if points2 is not None
            else None
        )
        plannable = pts.ndim == 2 and (pts2 is None or pts2.ndim == 2)
        if plannable:
            plan = plan_execution(
                spec,
                len(pts),
                pts.shape[1],
                n2=len(pts2) if pts2 is not None else None,
                strategies=_PLANNED_STRATEGIES,
                forced=None if engine == "auto" else engine,
            )
            with trace.span(
                "plan",
                strategy=plan.chosen,
                predicted_seconds=plan.predicted_cost,
                plan_seconds=plan.plan_seconds,
                forced=bool(plan.forced),
            ):
                result = _run_planned_strategy(plan, pts, pts2, spec)
            result.stats.planned_strategy = plan.chosen
            result.stats.predicted_cost = plan.predicted_cost
            result.stats.plan_seconds = plan.plan_seconds
            result.plan = plan
            return result if return_result else result.pairs
    if points2 is None:
        result = runner(points, spec)
    else:
        result = runner(points, points2, spec)
    return result if return_result else result.pairs


__all__ = [
    "__version__",
    "similarity_join",
    "ALGORITHMS",
    # core
    "JoinSpec",
    "Grid",
    "EpsilonKdbTree",
    "FlatEpsilonKdbTree",
    "TreeCache",
    "epsilon_kdb_self_join",
    "epsilon_kdb_join",
    "epsilon_sweep",
    "external_self_join",
    "external_join",
    "ExternalJoinReport",
    "ParallelJoinExecutor",
    "parallel_self_join",
    "parallel_join",
    "FaultPlan",
    "PairCollector",
    "PairCounter",
    "JoinStats",
    "JoinResult",
    "IncrementalJoin",
    "JoinSizeSketch",
    "UpdateDelta",
    "apply_update_stream",
    "subtract_pairs",
    # planner
    "CostProfile",
    "ExecutionPlan",
    "calibrate",
    "plan_execution",
    # observability
    "Tracer",
    "MetricsRegistry",
    # baselines
    "RTree",
    "rtree_self_join",
    "rtree_join",
    "RPlusTree",
    "rplus_self_join",
    "rplus_join",
    "zorder_self_join",
    "zorder_join",
    "index_nested_loop_join",
    "sort_merge_self_join",
    "sort_merge_join",
    "grid_self_join",
    "grid_join",
    "brute_force_self_join",
    "brute_force_join",
    # applications
    "find_similar_sequences",
    "SequenceMatchResult",
    "find_duplicate_images",
    "DuplicateGroups",
    # metrics
    "Metric",
    "WeightedLpMetric",
    "L1",
    "L2",
    "LINF",
    "lp_metric",
    "get_metric",
    # errors
    "ReproError",
    "AdmissionError",
    "InvalidParameterError",
    "DomainError",
    "StorageError",
    "CorruptSnapshotError",
    "SessionCrashError",
    "TransientIoError",
    "WorkerCrashError",
    "TaskTimeoutError",
]
