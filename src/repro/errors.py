"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside its valid domain.

    Raised for things like a non-positive ``epsilon``, an unknown metric
    name, a malformed points array, or mismatched dimensionalities between
    the two sides of a join.
    """


class ConfigError(InvalidParameterError):
    """A configuration knob holds an unknown or inconsistent value.

    A specialization of :class:`InvalidParameterError` for mode strings
    and backend selectors (``cascade``, ``kernel_backend``, ...): the
    message always lists the valid values.  Raised both at
    :class:`~repro.core.config.JoinSpec` validation time and again at
    the point of use (e.g. :func:`~repro.core.kernels.build_kernel_context`),
    so a spec mutated after construction cannot silently fall through to
    a default behavior.
    """


class DomainError(ReproError, ValueError):
    """Points fall outside the declared grid domain.

    The epsilon-kdB grid is defined over a bounding box.  Points outside
    that box would be assigned to clamped cells, which silently breaks the
    adjacent-cell pruning rule, so the library refuses them instead.
    """


class StorageError(ReproError, RuntimeError):
    """Misuse of the simulated paged-storage layer.

    Examples: unpinning a page that is not pinned, requesting a page past
    the end of a file, or evicting with every buffer frame pinned.
    """


class TransientIoError(StorageError):
    """A page read failed in a way that is expected to succeed on retry.

    Models the flaky-device / interrupted-syscall class of failure.  The
    external-memory joins retry these a bounded number of times (counted
    in ``JoinStats.storage_retries``) before giving up and re-raising.
    """


class CorruptSnapshotError(StorageError):
    """No durable snapshot prefix survives on disk.

    Recovery tolerates a damaged write-ahead-log suffix and falls back
    across snapshot generations; this error surfaces only when *every*
    snapshot file fails its magic/version/length/checksum validation, so
    there is no consistent state to resume from.
    """


class StaleSnapshotError(StorageError):
    """A snapshot exists but the write-ahead log is ahead of it.

    The zero-materialization :class:`~repro.storage.view.SnapshotView`
    answers queries straight off the memmapped snapshot arrays and
    cannot replay WAL records; when the session directory holds journal
    entries newer than the snapshot's watermark, serving from the view
    would silently ignore committed updates.  Callers catch this and
    fall back to a full :class:`~repro.core.incremental.IncrementalJoin`
    recovery, which replays the log.
    """


class SessionCrashError(ReproError, RuntimeError):
    """The session process was (deliberately) crashed mid-operation.

    Raised by injected storage faults that model a process dying between
    two durability steps — e.g. after a torn write-ahead-log append, or
    after writing a snapshot temp file but before its atomic publish.
    Real crashes never surface as an exception; tests catch this one,
    discard the in-memory session, and re-open from disk.
    """


class WorkerCrashError(ReproError, RuntimeError):
    """A parallel stripe task died (or was deliberately crashed).

    Raised inside a worker by injected faults, and by the parallel
    executor when a stripe task has exhausted its retry budget —
    including the final in-process attempt in the parent.
    """


class AdmissionError(ReproError, RuntimeError):
    """A request was refused because its predicted output exceeds a budget.

    Raised by :class:`~repro.core.incremental.IncrementalJoin` when
    ``spec.admission_threshold`` is set and the join-size sketch predicts
    an insert would push the session past it, and by the serving layer's
    admission controller for queries whose predicted result size exceeds
    the configured budget.  Admission happens *before* any journaling or
    state mutation, so a refused request leaves the session untouched.
    """


class TaskTimeoutError(ReproError, TimeoutError):
    """A parallel stripe task exceeded its ``task_timeout`` deadline.

    Timed-out tasks are re-dispatched (counted in
    ``JoinStats.tasks_timed_out``); this error surfaces only when the
    retry budget is exhausted as well.
    """
