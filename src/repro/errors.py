"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside its valid domain.

    Raised for things like a non-positive ``epsilon``, an unknown metric
    name, a malformed points array, or mismatched dimensionalities between
    the two sides of a join.
    """


class DomainError(ReproError, ValueError):
    """Points fall outside the declared grid domain.

    The epsilon-kdB grid is defined over a bounding box.  Points outside
    that box would be assigned to clamped cells, which silently breaks the
    adjacent-cell pruning rule, so the library refuses them instead.
    """


class StorageError(ReproError, RuntimeError):
    """Misuse of the simulated paged-storage layer.

    Examples: unpinning a page that is not pinned, requesting a page past
    the end of a file, or evicting with every buffer frame pinned.
    """
