"""Result sinks and machine-independent join statistics.

Join algorithms emit candidate verdicts through a sink object instead of
returning Python lists, so the same traversal code can either materialize
the joined pairs (:class:`PairCollector`) or merely count them
(:class:`PairCounter`) — the latter is what the benchmark harness uses to
measure algorithmic work without the memory cost of huge outputs.

:class:`JoinStats` carries the hardware-independent counters that the
paper's evaluation reasons about: how many full distance computations an
algorithm performed, how many node pairs its traversal visited, and how
many leaf joins it executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Tuple

import numpy as np


@dataclass
class JoinStats:
    """Counters describing the work one join execution performed.

    Attributes:
        distance_computations: candidate pairs whose full distance was
            evaluated (after all per-coordinate pruning).
        node_pairs_visited: pairs of index nodes (or grid cells, or
            tree nodes, depending on the algorithm) the traversal
            touched.
        leaf_joins: leaf-level join invocations.
        pairs_emitted: qualifying pairs reported.
        pages_read / pages_written: simulated I/O, filled in only by the
            external-memory variants.
        stripes: partitions planned, filled in only by the parallel and
            external-memory variants.
        workers_used: process-pool size, filled in only by the parallel
            executor (0 means the serial path ran).
        duplicate_pairs_merged: boundary pairs found by more than one
            stripe task and removed by the deterministic merge.
        worker_seconds: per-stripe-task wall-clock times, in stripe
            order (not completion order).
        tasks_retried: stripe-task dispatches that repeated a failed or
            timed-out attempt (including the final in-parent attempt).
        tasks_timed_out: stripe-task attempts that exceeded the
            ``task_timeout`` deadline.
        degraded_to_serial: the parallel executor abandoned the process
            pool (creation failure or ``BrokenProcessPool``) and fell
            back to the serial join.
        faults_injected: faults a :class:`~repro.core.resilience.FaultPlan`
            deliberately injected into this run.
        storage_retries: transient page-read failures the external joins
            retried successfully.
        cascade_candidates: candidate rows that entered the filter
            cascade (:mod:`repro.core.kernels`); 0 when the monolithic
            kernel ran.
        cascade_survivors: rows still alive after each cascade stage
            (the pre-filter stages followed by the short-circuit
            reduction), monotonically non-increasing.  Rendered by
            :meth:`as_dict` as ``cascade_survivors_stage{N}`` keys.
        coordinates_touched: individual point coordinates the cascade
            kernels actually read; the monolithic kernel would have read
            ``cascade_candidates * d``.
        build_nodes: nodes in the epsilon-kdB tree(s) built for this
            join; filled in by the flat build (0 on the pointer path).
        build_sort_seconds: wall-clock the flat build spent in its
            ``lexsort`` calls, the dominant build cost.
        structure_cache_hits: tree builds satisfied from a
            :class:`~repro.core.flat_build.TreeCache` instead of sorting.
        updates_applied: insert/delete batches an incremental session
            applied (:mod:`repro.core.incremental`); 0 for batch joins.
        delta_size: live rows currently in the incremental session's
            delta buffer (a gauge: ``merge`` keeps the maximum observed).
        compactions: delta-buffer merges the incremental session ran
            (automatic threshold triggers and explicit ``compact()``).
        pairs_retracted: pairs un-reported by ``delete()`` calls; the
            session's net result size is
            ``pairs_emitted - pairs_retracted``.
        estimated_join_size: one-pass sketch estimate of the self-join
            size over the session's live points (a gauge: ``merge``
            keeps the maximum observed).
        wal_records_replayed: write-ahead-log records a persisted
            session re-applied while recovering (0 for a clean open).
        snapshot_bytes: size of the largest snapshot this session
            published or recovered from (a gauge: ``merge`` keeps the
            maximum observed).
        recovery_seconds: wall-clock spent in
            :meth:`~repro.core.incremental.IncrementalJoin.open`
            recovery (snapshot validation, memmap open, WAL replay).
        corrupt_frames_discarded: damaged storage artifacts recovery
            detected and discarded — torn or checksum-failed WAL
            suffixes plus snapshot generations that failed validation.
        batches_rejected: update batches refused by sketch-based
            admission control (``spec.admission_threshold``); a refused
            batch journals nothing and mutates nothing.
        kernel_backend: name of the
            :class:`~repro.core.backends.KernelBackend` that executed
            the leaf filter cascade (``"numpy"`` or ``"numba"``; empty
            when the monolithic kernel ran without a cascade context).
        kernel_blocks: candidate tiles the leaf work-queue dispatched to
            the filter kernel (cascaded or monolithic).
        kernel_tile_rows: capacity of the leaf work-queue's tiles, in
            candidate row pairs (a gauge; ``merge`` keeps the maximum).
        kernel_seconds: wall-clock spent inside the leaf filter kernel,
            summed over work-queue tiles — the denominator E21 uses to
            compare backends.
        planned_strategy: execution strategy the cost-based planner
            chose (:mod:`repro.planner`); empty when the caller pinned
            an engine without planning or called an algorithm directly.
        predicted_cost: the planner's predicted wall-clock seconds for
            the chosen strategy — compare against the measured time for
            the mispredict ratio E22 charts (a gauge; ``merge`` keeps
            the maximum).
        plan_seconds: wall-clock spent scoring strategies, the overhead
            ``engine="auto"`` pays over a pinned engine.
    """

    distance_computations: int = 0
    node_pairs_visited: int = 0
    leaf_joins: int = 0
    pairs_emitted: int = 0
    pages_read: int = 0
    pages_written: int = 0
    stripes: int = 0
    workers_used: int = 0
    duplicate_pairs_merged: int = 0
    worker_seconds: List[float] = field(default_factory=list)
    tasks_retried: int = 0
    tasks_timed_out: int = 0
    degraded_to_serial: bool = False
    faults_injected: int = 0
    storage_retries: int = 0
    cascade_candidates: int = 0
    cascade_survivors: List[int] = field(default_factory=list)
    coordinates_touched: int = 0
    build_nodes: int = 0
    build_sort_seconds: float = 0.0
    structure_cache_hits: int = 0
    updates_applied: int = 0
    delta_size: int = 0
    compactions: int = 0
    pairs_retracted: int = 0
    estimated_join_size: float = 0.0
    wal_records_replayed: int = 0
    snapshot_bytes: int = 0
    recovery_seconds: float = 0.0
    corrupt_frames_discarded: int = 0
    batches_rejected: int = 0
    kernel_backend: str = ""
    kernel_blocks: int = 0
    kernel_tile_rows: int = 0
    kernel_seconds: float = 0.0
    planned_strategy: str = ""
    predicted_cost: float = 0.0
    plan_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Every counter as JSON-ready data, in field order.

        Consumers that render or export stats (the CLI's stat lines and
        ``--stats-json``, :meth:`repro.obs.metrics.MetricsRegistry.ingest_stats`)
        iterate this generically, so new fields added here flow through
        without touching them.  ``cascade_survivors`` expands into one
        ``cascade_survivors_stage{N}`` integer per stage.
        """
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "cascade_survivors":
                for stage, survivors in enumerate(value):
                    out[f"cascade_survivors_stage{stage + 1}"] = int(survivors)
                continue
            if isinstance(value, (list, tuple)):
                value = [float(v) for v in value]
            out[spec.name] = value
        return out

    def merge(self, other: "JoinStats") -> None:
        """Accumulate another stats object into this one."""
        self.distance_computations += other.distance_computations
        self.node_pairs_visited += other.node_pairs_visited
        self.leaf_joins += other.leaf_joins
        self.pairs_emitted += other.pairs_emitted
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.stripes += other.stripes
        self.workers_used = max(self.workers_used, other.workers_used)
        self.duplicate_pairs_merged += other.duplicate_pairs_merged
        self.worker_seconds.extend(other.worker_seconds)
        self.tasks_retried += other.tasks_retried
        self.tasks_timed_out += other.tasks_timed_out
        self.degraded_to_serial = bool(
            self.degraded_to_serial or other.degraded_to_serial
        )
        self.faults_injected += other.faults_injected
        self.storage_retries += other.storage_retries
        self.cascade_candidates += other.cascade_candidates
        if other.cascade_survivors:
            # Element-wise sum; zero-pad the shorter list so stripes that
            # ran with fewer stages (or none) still merge cleanly.
            if len(self.cascade_survivors) < len(other.cascade_survivors):
                self.cascade_survivors.extend(
                    [0] * (len(other.cascade_survivors) - len(self.cascade_survivors))
                )
            for stage, survivors in enumerate(other.cascade_survivors):
                self.cascade_survivors[stage] += survivors
        self.coordinates_touched += other.coordinates_touched
        self.build_nodes += other.build_nodes
        self.build_sort_seconds += other.build_sort_seconds
        self.structure_cache_hits += other.structure_cache_hits
        self.updates_applied += other.updates_applied
        self.delta_size = max(self.delta_size, other.delta_size)
        self.compactions += other.compactions
        self.pairs_retracted += other.pairs_retracted
        self.estimated_join_size = max(
            self.estimated_join_size, other.estimated_join_size
        )
        self.wal_records_replayed += other.wal_records_replayed
        self.snapshot_bytes = max(self.snapshot_bytes, other.snapshot_bytes)
        self.recovery_seconds += other.recovery_seconds
        self.corrupt_frames_discarded += other.corrupt_frames_discarded
        self.batches_rejected += other.batches_rejected
        if not self.kernel_backend:
            self.kernel_backend = other.kernel_backend
        self.kernel_blocks += other.kernel_blocks
        self.kernel_tile_rows = max(self.kernel_tile_rows, other.kernel_tile_rows)
        self.kernel_seconds += other.kernel_seconds
        if not self.planned_strategy:
            self.planned_strategy = other.planned_strategy
        self.predicted_cost = max(self.predicted_cost, other.predicted_cost)
        self.plan_seconds += other.plan_seconds


_EMPTY_I64 = np.empty(0, dtype=np.int64)


class PairSink:
    """Interface accepted by every join algorithm.

    ``emit(left, right)`` receives two equal-length int arrays of point
    indices; each position is one qualifying pair.  For self-joins the
    convention is ``left < right`` element-wise and each unordered pair
    appears exactly once.
    """

    def emit(self, left: np.ndarray, right: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def count(self) -> int:
        raise NotImplementedError


class PairCounter(PairSink):
    """Sink that only counts qualifying pairs."""

    def __init__(self) -> None:
        self._count = 0

    def emit(self, left: np.ndarray, right: np.ndarray) -> None:
        self._count += int(len(left))

    @property
    def count(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PairCounter count={self._count}>"


class PairCollector(PairSink):
    """Sink that materializes every qualifying pair.

    Pairs are buffered as the chunks the algorithms emit and concatenated
    once at the end, so collection is O(pairs) with no per-pair Python
    object overhead.
    """

    def __init__(self) -> None:
        self._left: List[np.ndarray] = []
        self._right: List[np.ndarray] = []
        self._count = 0

    def emit(self, left: np.ndarray, right: np.ndarray) -> None:
        if len(left):
            self._left.append(np.asarray(left, dtype=np.int64))
            self._right.append(np.asarray(right, dtype=np.int64))
            self._count += int(len(left))

    @property
    def count(self) -> int:
        return self._count

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the collected pairs as two aligned index arrays."""
        if not self._left:
            return _EMPTY_I64.copy(), _EMPTY_I64.copy()
        return np.concatenate(self._left), np.concatenate(self._right)

    def pairs(self) -> np.ndarray:
        """Return the collected pairs as an ``(n, 2)`` array."""
        left, right = self.arrays()
        return np.column_stack([left, right])

    def sorted_pairs(self) -> np.ndarray:
        """Pairs as a canonical ``(n, 2)`` array, lexicographically sorted.

        Useful for comparing the output of two algorithms; does not
        reorder within a pair (self-join pairs are already ``i < j``).
        """
        out = self.pairs()
        if len(out) == 0:
            return out
        order = np.lexsort((out[:, 1], out[:, 0]))
        return out[order]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PairCollector count={self._count}>"


@dataclass
class JoinResult:
    """Bundle of a join's output pairs (optional) and its statistics.

    ``build_seconds`` and ``join_seconds`` split the wall-clock cost into
    structure construction and traversal, mirroring the paper's
    discussion of the epsilon-kdB tree being cheap to build per join.
    """

    stats: JoinStats = field(default_factory=JoinStats)
    pairs: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    build_seconds: float = 0.0
    join_seconds: float = 0.0
    # An ExecutionPlan when the cost-based planner drove this execution
    # (typed loosely: core must not import repro.planner at module level).
    plan: Any = None

    @property
    def count(self) -> int:
        return self.stats.pairs_emitted

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.join_seconds


def canonicalize_self_pairs(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Normalize self-join pairs: orient ``i < j``, dedupe, sort.

    Baselines that generate pairs in arbitrary orientation use this to
    produce the canonical form for comparison.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    keep = lo != hi
    pairs = np.column_stack([lo[keep], hi[keep]])
    if len(pairs) == 0:
        return pairs
    pairs = np.unique(pairs, axis=0)
    return pairs


def canonicalize_two_set_pairs(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Normalize two-set pairs: keep sides, dedupe, sort lexicographically.

    The parallel merge uses this to fold boundary pairs reported by two
    adjacent stripe tasks into one occurrence; the result matches the
    serial traversal's ``PairCollector.sorted_pairs()`` ordering exactly.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    pairs = np.column_stack([left, right])
    if len(pairs) == 0:
        return pairs
    return np.unique(pairs, axis=0)
