"""Similarity-join traversals over epsilon-kdB trees.

The traversal applies the paper's adjacent-cell rule: inside a split
dimension, a qualifying pair (distance <= epsilon under any L_p) must
fall into the same or adjacent cells, so a node's child ``i`` only ever
joins children ``i-1``, ``i`` and ``i+1`` of the other node.  Leaf-level
joins are vectorized sort-merge sweeps along one unsplit dimension with a
full-distance filter.

Self-joins emit each unordered pair once with ``left < right``; two-set
joins emit ``(r_index, s_index)`` with sides preserved.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.backends import LeafBatchQueue
from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import EpsilonKdbTree, Grid, InternalNode, LeafNode
from repro.core.flat_build import FlatEpsilonKdbTree, TreeCache
from repro.core.kernels import KernelContext, KernelSource, build_kernel_context
from repro.core.result import JoinResult, JoinStats, PairCollector, PairCounter, PairSink
from repro.core.sweep import band_pairs_cross, band_pairs_self
from repro.errors import InvalidParameterError
from repro.obs import trace

# A "flat" node during traversal: (indices, sort-dim values), both sorted
# by the sort dimension.  Real leaves are converted to this form and
# leaf-vs-internal recursion produces filtered fragments of it.
_Flat = Tuple[np.ndarray, np.ndarray]
_TraversalNode = Union[InternalNode, _Flat]


class _JoinContext:
    """State threaded through one traversal."""

    __slots__ = (
        "points_a",
        "points_b",
        "grid",
        "eps",
        "band",
        "metric",
        "sink",
        "stats",
        "self_mode",
        "adjacency_pruning",
        "kernel",
        "perm_a",
        "perm_b",
        "queue",
    )

    def __init__(
        self,
        points_a: np.ndarray,
        points_b: np.ndarray,
        grid: Grid,
        spec: JoinSpec,
        sink: PairSink,
        self_mode: bool,
        kernel: Optional[KernelContext] = None,
        perm_a: Optional[np.ndarray] = None,
        perm_b: Optional[np.ndarray] = None,
    ):
        self.points_a = points_a
        self.points_b = points_b
        self.grid = grid
        self.eps = spec.epsilon
        self.band = spec.band_width
        self.metric = spec.metric
        self.sink = sink
        self.stats = JoinStats()
        self.self_mode = self_mode
        self.adjacency_pruning = spec.adjacency_pruning
        self.kernel = kernel
        # Flat trees traverse permuted row ids; the perms translate them
        # back to caller indices at emit time (None = identity).
        self.perm_a = perm_a
        self.perm_b = perm_b
        # Batched leaf-pair work-queue: leaves enqueue band-sweep
        # candidates and the filter kernel runs once per full tile
        # instead of once per leaf.  Callers must invoke finish().
        self.queue = LeafBatchQueue(self._filter_rows, self._emit)
        self.stats.kernel_tile_rows = self.queue.tile_rows
        if kernel is not None:
            self.stats.kernel_backend = kernel.backend.name

    # ------------------------------------------------------------------
    # leaf-level joins
    # ------------------------------------------------------------------
    def leaf_self(self, flat: _Flat) -> None:
        indices, values = flat
        self.stats.leaf_joins += 1
        pos_a, pos_b = band_pairs_self(values, self.band)
        self.stats.distance_computations += len(pos_a)
        if not len(pos_a):
            return
        self.queue.add(indices[pos_a], indices[pos_b])

    def leaf_cross(self, flat_a: _Flat, flat_b: _Flat) -> None:
        indices_a, values_a = flat_a
        indices_b, values_b = flat_b
        self.stats.leaf_joins += 1
        pos_a, pos_b = band_pairs_cross(values_a, values_b, self.band)
        self.stats.distance_computations += len(pos_a)
        if not len(pos_a):
            return
        self.queue.add(indices_a[pos_a], indices_b[pos_b])

    def _filter_rows(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Filter one work-queue tile; records per-backend kernel stats."""
        started = time.perf_counter()
        if self.kernel is not None:
            mask = self.kernel.within_rows(left, right, self.stats)
        else:
            mask = self.metric.within_rows(
                self.points_a,
                self.points_a if self.self_mode else self.points_b,
                left,
                right,
                self.eps,
            )
        self.stats.kernel_seconds += time.perf_counter() - started
        self.stats.kernel_blocks += 1
        return mask

    def finish(self) -> None:
        """Flush the leaf work-queue; must run before the sink is read."""
        self.queue.flush()

    def _emit(self, left: np.ndarray, right: np.ndarray) -> None:
        if not len(left):
            return
        if self.perm_a is not None:
            left = self.perm_a[left]
        if self.perm_b is not None:
            right = self.perm_b[right]
        if self.self_mode:
            lo = np.minimum(left, right)
            hi = np.maximum(left, right)
            self.sink.emit(lo, hi)
        else:
            self.sink.emit(left, right)
        self.stats.pairs_emitted += int(len(left))


def _flatten(node: _TraversalNode) -> _TraversalNode:
    """Convert real leaves to the flat (indices, values) form."""
    if isinstance(node, LeafNode):
        if node.sort_values is None:
            raise InvalidParameterError(
                "tree must be finalized before joining; call tree.finalize()"
            )
        return (node.indices, node.sort_values)
    return node


def _self_join_node(ctx: _JoinContext, node: _TraversalNode) -> None:
    node = _flatten(node)
    ctx.stats.node_pairs_visited += 1
    if isinstance(node, tuple):
        ctx.leaf_self(node)
        return
    cells = sorted(node.children)
    for cell in cells:
        _self_join_node(ctx, node.children[cell])
        if ctx.adjacency_pruning:
            neighbor = node.children.get(cell + 1)
            if neighbor is not None:
                _cross_join(ctx, node.children[cell], neighbor)
        else:
            for other in cells:
                if other > cell:
                    _cross_join(ctx, node.children[cell], node.children[other])


def _cross_join(
    ctx: _JoinContext, a: _TraversalNode, b: _TraversalNode
) -> None:
    """Join every pair (x in a-side subtree, y in b-side subtree)."""
    a = _flatten(a)
    b = _flatten(b)
    ctx.stats.node_pairs_visited += 1
    a_leaf = isinstance(a, tuple)
    b_leaf = isinstance(b, tuple)
    if a_leaf and (not a[0].size):
        return
    if b_leaf and (not b[0].size):
        return
    if a_leaf and b_leaf:
        ctx.leaf_cross(a, b)
    elif not a_leaf and not b_leaf:
        if a.split_dim != b.split_dim:
            raise InvalidParameterError(
                "cross-joined internal nodes disagree on split dimension; "
                "the two trees were not built with a shared grid and order"
            )
        for cell_a, child_a in a.children.items():
            if ctx.adjacency_pruning:
                neighbors = (cell_a - 1, cell_a, cell_a + 1)
            else:
                neighbors = tuple(b.children)
            for cell_b in neighbors:
                child_b = b.children.get(cell_b)
                if child_b is not None:
                    _cross_join(ctx, child_a, child_b)
    elif a_leaf:
        _leaf_vs_internal(ctx, a, b, leaf_on_left=True)
    else:
        _leaf_vs_internal(ctx, b, a, leaf_on_left=False)


def _leaf_vs_internal(
    ctx: _JoinContext, flat: _Flat, internal: InternalNode, leaf_on_left: bool
) -> None:
    """Join a flat leaf fragment against an internal subtree.

    The fragment's points are filtered by cell in the internal node's
    split dimension: only points in cells ``j-1..j+1`` can pair with the
    child at cell ``j``.  Filtering preserves the fragment's sort order,
    so no re-sort is needed.
    """
    indices, values = flat
    points = ctx.points_a if leaf_on_left else ctx.points_b
    dim = internal.split_dim
    cells = ctx.grid.cell_of(points[indices, dim], dim)
    for cell_b, child in internal.children.items():
        if ctx.adjacency_pruning:
            mask = np.abs(cells - cell_b) <= 1
            if not mask.any():
                continue
            fragment: _Flat = (indices[mask], values[mask])
        else:
            fragment = flat
        if leaf_on_left:
            _cross_join(ctx, fragment, child)
        else:
            _cross_join(ctx, child, fragment)


# ----------------------------------------------------------------------
# flat-tree traversal
# ----------------------------------------------------------------------
# The flat traversal mirrors the pointer traversal call for call (same
# node-pair visits, same leaf joins, same pruning decisions) over the
# CSR node table of a FlatEpsilonKdbTree.  Row ids are positions in the
# tree's leaf-contiguous permuted array, so leaves are zero-copy slices;
# ``_JoinContext.perm_a/perm_b`` translate back to caller indices.
_FlatNode = Union[int, _Flat]


def _flat_leaf(tree: FlatEpsilonKdbTree, node: int) -> _Flat:
    start = int(tree.node_start[node])
    stop = int(tree.node_stop[node])
    return (
        np.arange(start, stop, dtype=np.int64),
        tree.sort_values[start:stop],
    )


def _flat_resolve(tree: FlatEpsilonKdbTree, node: _FlatNode) -> _FlatNode:
    """Convert leaf node ids to the flat (rows, values) form."""
    if isinstance(node, tuple):
        return node
    if tree.node_leaf[node]:
        return _flat_leaf(tree, node)
    return int(node)


def flat_self_join(ctx: _JoinContext, tree: FlatEpsilonKdbTree, node: int) -> None:
    resolved = _flat_resolve(tree, node)
    ctx.stats.node_pairs_visited += 1
    if isinstance(resolved, tuple):
        ctx.leaf_self(resolved)
        return
    first = int(tree.node_first_child[resolved])
    count = int(tree.node_n_children[resolved])
    digits = tree.node_digit
    for child in range(first, first + count):
        flat_self_join(ctx, tree, child)
        if ctx.adjacency_pruning:
            if child + 1 < first + count and digits[child + 1] == digits[child] + 1:
                flat_cross_join(ctx, tree, child, tree, child + 1)
        else:
            for other in range(child + 1, first + count):
                flat_cross_join(ctx, tree, child, tree, other)


def flat_cross_join(
    ctx: _JoinContext,
    tree_a: FlatEpsilonKdbTree,
    a: _FlatNode,
    tree_b: FlatEpsilonKdbTree,
    b: _FlatNode,
) -> None:
    a = _flat_resolve(tree_a, a)
    b = _flat_resolve(tree_b, b)
    ctx.stats.node_pairs_visited += 1
    a_leaf = isinstance(a, tuple)
    b_leaf = isinstance(b, tuple)
    if a_leaf and (not a[0].size):
        return
    if b_leaf and (not b[0].size):
        return
    if a_leaf and b_leaf:
        ctx.leaf_cross(a, b)
    elif not a_leaf and not b_leaf:
        dim_a = int(tree_a.level_dims[tree_a.node_depth[a]])
        dim_b = int(tree_b.level_dims[tree_b.node_depth[b]])
        if dim_a != dim_b:
            raise InvalidParameterError(
                "cross-joined internal nodes disagree on split dimension; "
                "the two trees were not built with a shared grid and order"
            )
        a_first = int(tree_a.node_first_child[a])
        a_count = int(tree_a.node_n_children[a])
        b_first = int(tree_b.node_first_child[b])
        b_count = int(tree_b.node_n_children[b])
        b_digits = tree_b.node_digit[b_first:b_first + b_count]
        for child_a in range(a_first, a_first + a_count):
            if ctx.adjacency_pruning:
                digit = tree_a.node_digit[child_a]
                lo = int(np.searchsorted(b_digits, digit - 1))
                hi = int(np.searchsorted(b_digits, digit + 1, side="right"))
                targets = range(b_first + lo, b_first + hi)
            else:
                targets = range(b_first, b_first + b_count)
            for child_b in targets:
                flat_cross_join(ctx, tree_a, child_a, tree_b, child_b)
    elif a_leaf:
        _flat_leaf_vs_internal(ctx, tree_a, a, tree_b, b, leaf_on_left=True)
    else:
        _flat_leaf_vs_internal(ctx, tree_b, b, tree_a, a, leaf_on_left=False)


def _flat_leaf_vs_internal(
    ctx: _JoinContext,
    frag_tree: FlatEpsilonKdbTree,
    flat: _Flat,
    node_tree: FlatEpsilonKdbTree,
    internal: int,
    leaf_on_left: bool,
) -> None:
    """Flat analogue of :func:`_leaf_vs_internal`.

    The fragment's cells along the internal node's split level come from
    the fragment tree's precomputed digit row — code arithmetic instead
    of a ``cell_of`` recomputation; both trees share the grid, so the
    digit rows align level for level.
    """
    rows, values = flat
    depth = int(node_tree.node_depth[internal])
    cells = frag_tree.digits[depth][rows]
    first = int(node_tree.node_first_child[internal])
    count = int(node_tree.node_n_children[internal])
    for child in range(first, first + count):
        if ctx.adjacency_pruning:
            mask = np.abs(cells - node_tree.node_digit[child]) <= 1
            if not mask.any():
                continue
            fragment: _Flat = (rows[mask], values[mask])
        else:
            fragment = flat
        if leaf_on_left:
            flat_cross_join(ctx, frag_tree, fragment, node_tree, child)
        else:
            flat_cross_join(ctx, node_tree, child, frag_tree, fragment)


def _flat_self_join_range(
    tree: FlatEpsilonKdbTree,
    spec: JoinSpec,
    child_lo: int,
    child_hi: int,
    sink: PairSink,
    kernel: Optional[KernelContext] = None,
) -> JoinStats:
    """Self-join one contiguous range of the root's children.

    Task ``[child_lo, child_hi)`` covers each child's own self-join plus
    its cross with the right-adjacent sibling (which may fall in the
    next range — crosses belong to the left child's owner).  Ranges that
    partition ``[0, n_children)`` therefore partition the serial root
    visit exactly: every pair is found by exactly one task, so the
    parallel merge sees no duplicates.  Two children whose cells are not
    adjacent cannot hold a qualifying pair (the gap between their cells
    exceeds the per-coordinate bound), so skipping non-adjacent crosses
    is exact even with ``adjacency_pruning`` off.
    """
    ctx = _JoinContext(
        tree.points_flat,
        tree.points_flat,
        tree.grid,
        spec,
        sink,
        self_mode=True,
        kernel=kernel,
        perm_a=tree.perm,
        perm_b=tree.perm,
    )
    first = int(tree.node_first_child[0])
    count = int(tree.node_n_children[0])
    digits = tree.node_digit
    for child in range(first + child_lo, first + child_hi):
        flat_self_join(ctx, tree, child)
        if child + 1 < first + count and (
            not ctx.adjacency_pruning or digits[child + 1] == digits[child] + 1
        ):
            flat_cross_join(ctx, tree, child, tree, child + 1)
    ctx.finish()
    return ctx.stats


def _flat_cross_join_range(
    tree_r: FlatEpsilonKdbTree,
    tree_s: FlatEpsilonKdbTree,
    spec: JoinSpec,
    cell_lo: int,
    cell_hi: int,
    sink: PairSink,
    kernel: Optional[KernelContext] = None,
) -> JoinStats:
    """Two-set join over one half-open range of root cells.

    The task owning cell ``g`` joins ``(R_g, S_g)``, ``(R_g, S_{g+1})``
    and ``(R_{g+1}, S_g)`` — every adjacent child pair assigned to the
    *smaller* of its two cells, so cell ranges that partition the cell
    axis partition the adjacent pairs exactly.  Non-adjacent cells
    cannot hold qualifying pairs (see :func:`_flat_self_join_range`).
    """
    ctx = _JoinContext(
        tree_r.points_flat,
        tree_s.points_flat,
        tree_r.grid,
        spec,
        sink,
        self_mode=False,
        kernel=kernel,
        perm_a=tree_r.perm,
        perm_b=tree_s.perm,
    )
    r_first = int(tree_r.node_first_child[0])
    r_count = int(tree_r.node_n_children[0])
    s_first = int(tree_s.node_first_child[0])
    s_count = int(tree_s.node_n_children[0])
    r_digits = tree_r.node_digit[r_first:r_first + r_count]
    s_digits = tree_s.node_digit[s_first:s_first + s_count]

    def child_at(digits: np.ndarray, first: int, cell: int) -> Optional[int]:
        pos = int(np.searchsorted(digits, cell))
        if pos < len(digits) and digits[pos] == cell:
            return first + pos
        return None

    cells = np.union1d(r_digits, s_digits)
    for cell in cells[(cells >= cell_lo) & (cells < cell_hi)]:
        cell = int(cell)
        r_here = child_at(r_digits, r_first, cell)
        s_here = child_at(s_digits, s_first, cell)
        r_next = child_at(r_digits, r_first, cell + 1)
        s_next = child_at(s_digits, s_first, cell + 1)
        if r_here is not None and s_here is not None:
            flat_cross_join(ctx, tree_r, r_here, tree_s, s_here)
        if r_here is not None and s_next is not None:
            flat_cross_join(ctx, tree_r, r_here, tree_s, s_next)
        if r_next is not None and s_here is not None:
            flat_cross_join(ctx, tree_r, r_next, tree_s, s_here)
    ctx.finish()
    return ctx.stats


def _check_tree_reuse(spec: JoinSpec, tree_epsilon: float, cell_width: float) -> None:
    """Reject reuse of a tree built for a smaller epsilon.

    A tree built for a larger epsilon remains valid for any smaller
    threshold: its cells are at least tree-epsilon wide, so the
    adjacent-cell rule still over-approximates the spec-epsilon
    predicate.  The reverse would silently drop pairs.
    """
    if spec.epsilon > tree_epsilon or spec.band_width > cell_width:
        raise InvalidParameterError(
            f"join epsilon {spec.epsilon} (band {spec.band_width}) "
            f"exceeds the tree's build epsilon {tree_epsilon} "
            f"(cell width {cell_width}); rebuild the tree"
        )


def _flat_kernel_source(
    tree_a: FlatEpsilonKdbTree,
    source: Optional[KernelSource],
    tree_b: Optional[FlatEpsilonKdbTree] = None,
) -> Optional[KernelSource]:
    """Recompose a caller's kernel source for flat (permuted) row ids.

    The traversal hands the kernel flat rows; composing each side's
    ``row_map`` with the tree's permutation makes the caller's column
    stores (built over the original row space) address them correctly.
    """
    if source is None:
        return None

    def composed(row_map: Optional[np.ndarray], perm: np.ndarray) -> np.ndarray:
        if row_map is None:
            return perm
        return np.asarray(row_map)[perm]

    row_map_a = composed(source.row_map_a, tree_a.perm)
    if tree_b is None:
        return KernelSource(cols_a=source.cols_a, row_map_a=row_map_a)
    row_map_b = composed(source.row_map_b, tree_b.perm)
    cols_b = source.cols_a if source.cols_b is None else source.cols_b
    return KernelSource(
        cols_a=source.cols_a,
        row_map_a=row_map_a,
        cols_b=cols_b,
        row_map_b=row_map_b,
    )


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def epsilon_kdb_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    tree: Optional[Union[EpsilonKdbTree, FlatEpsilonKdbTree]] = None,
    kernel_source: Optional[KernelSource] = None,
    structure_cache: Optional[TreeCache] = None,
) -> JoinResult:
    """Self-join: all pairs ``i < j`` with ``dist(points[i], points[j]) <= eps``.

    Builds an epsilon-kdB tree (unless a pre-built ``tree`` over the same
    points and spec is supplied), traverses it with the adjacent-cell
    rule, and returns a :class:`JoinResult`.  ``spec.build`` selects the
    flat vectorized build (the default) or the pointer build; a pre-built
    ``tree`` of either kind routes to its own traversal.  Pass a
    :class:`~repro.core.result.PairCounter` as ``sink`` to count without
    materializing pairs.  ``kernel_source`` supplies pre-built column
    stores for the filter-cascade kernels (the parallel executor's
    zero-copy path); without it the cascade builds its own per join when
    ``spec.cascade_enabled(d)``.  ``structure_cache`` (a
    :class:`~repro.core.flat_build.TreeCache`) reuses a flat tree built
    at a coarser epsilon over the same data instead of re-sorting.
    """
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points) < 2:
        return result
    flat_tree: Optional[FlatEpsilonKdbTree] = None
    cache_hit = False
    built_here = False
    build_seconds = 0.0
    if isinstance(tree, FlatEpsilonKdbTree):
        # A pre-built flat tree is traversal-ready; no build span opens,
        # so a trace of a join over a reloaded (memmapped) tree shows no
        # construction work at all.
        _check_tree_reuse(spec, tree.spec.epsilon, tree.grid.eps)
        flat_tree = tree
    else:
        with trace.span(
            "build", points=len(points), dims=points.shape[1], epsilon=spec.epsilon
        ) as build_span:
            if tree is not None:
                _check_tree_reuse(spec, tree.spec.epsilon, tree.grid.eps)
                tree.finalize()
            elif structure_cache is not None:
                flat_tree, cache_hit = structure_cache.get_or_build(points, spec)
                built_here = not cache_hit
            elif spec.resolved_build() == "flat":
                flat_tree = FlatEpsilonKdbTree.build(points, spec)
                built_here = True
            else:
                tree = EpsilonKdbTree.build(points, spec)
        build_seconds = build_span.duration
    if flat_tree is not None:
        kernel = build_kernel_context(
            spec,
            flat_tree.points_flat,
            grid=flat_tree.grid,
            split_dims=flat_tree.split_dims(),
            sort_dim=flat_tree.sort_dim,
            source=_flat_kernel_source(flat_tree, kernel_source),
        )
        with trace.span("self-join-traversal", points=len(points)) as join_span:
            ctx = _JoinContext(
                flat_tree.points_flat,
                flat_tree.points_flat,
                flat_tree.grid,
                spec,
                sink,
                self_mode=True,
                kernel=kernel,
                perm_a=flat_tree.perm,
                perm_b=flat_tree.perm,
            )
            flat_self_join(ctx, flat_tree, 0)
            ctx.finish()
            join_span.set_attribute("pairs", sink.count)
            join_span.set_attribute("leaf_joins", ctx.stats.leaf_joins)
        ctx.stats.build_nodes = flat_tree.n_nodes
        ctx.stats.build_sort_seconds = (
            flat_tree.build_sort_seconds if built_here else 0.0
        )
        ctx.stats.structure_cache_hits = 1 if cache_hit else 0
    else:
        kernel = build_kernel_context(
            spec,
            points,
            grid=tree.grid,
            split_dims=tree.split_dims(),
            sort_dim=tree.sort_dim,
            source=kernel_source,
        )
        with trace.span("self-join-traversal", points=len(points)) as join_span:
            ctx = _JoinContext(
                points, points, tree.grid, spec, sink, self_mode=True, kernel=kernel
            )
            _self_join_node(ctx, tree.root)
            ctx.finish()
            join_span.set_attribute("pairs", sink.count)
            join_span.set_attribute("leaf_joins", ctx.stats.leaf_joins)
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = build_seconds
    result.join_seconds = join_span.duration
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def epsilon_kdb_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    kernel_source: Optional[KernelSource] = None,
) -> JoinResult:
    """Two-set join: all ``(i, j)`` with ``dist(points_r[i], points_s[j]) <= eps``.

    Builds one epsilon-kdB tree per side over a shared grid covering the
    union of both bounding boxes, then runs the synchronized traversal.
    """
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality: "
            f"{points_r.shape[1]} != {points_s.shape[1]}"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    flat = spec.resolved_build() == "flat"
    with trace.span(
        "build",
        points_r=len(points_r),
        points_s=len(points_s),
        dims=points_r.shape[1],
        epsilon=spec.epsilon,
    ) as build_span:
        grid = Grid.fit_union(points_r, points_s, spec.band_width)
        if flat:
            tree_r = FlatEpsilonKdbTree.build(points_r, spec, grid=grid)
            tree_s = FlatEpsilonKdbTree.build(points_s, spec, grid=grid)
            # A leaf in one tree reads its digits at the other tree's
            # internal depths, which may exceed its own depth.
            shared_levels = max(len(tree_r.digits), len(tree_s.digits))
            tree_r.ensure_digit_levels(shared_levels)
            tree_s.ensure_digit_levels(shared_levels)
        else:
            tree_r = EpsilonKdbTree.build(points_r, spec, grid=grid)
            tree_s = EpsilonKdbTree.build(points_s, spec, grid=grid)
    split_dims = tuple(set(tree_r.split_dims()) | set(tree_s.split_dims()))
    if flat:
        kernel = build_kernel_context(
            spec,
            tree_r.points_flat,
            points_b=tree_s.points_flat,
            grid=grid,
            split_dims=split_dims,
            sort_dim=tree_r.sort_dim,
            source=_flat_kernel_source(tree_r, kernel_source, tree_b=tree_s),
        )
    else:
        kernel = build_kernel_context(
            spec,
            points_r,
            points_b=points_s,
            grid=grid,
            split_dims=split_dims,
            sort_dim=tree_r.sort_dim,
            source=kernel_source,
        )
    with trace.span("two-set-traversal") as join_span:
        if flat:
            ctx = _JoinContext(
                tree_r.points_flat,
                tree_s.points_flat,
                grid,
                spec,
                sink,
                self_mode=False,
                kernel=kernel,
                perm_a=tree_r.perm,
                perm_b=tree_s.perm,
            )
            flat_cross_join(ctx, tree_r, 0, tree_s, 0)
        else:
            ctx = _JoinContext(
                points_r, points_s, grid, spec, sink, self_mode=False, kernel=kernel
            )
            _cross_join(ctx, tree_r.root, tree_s.root)
        ctx.finish()
        join_span.set_attribute("pairs", sink.count)
        join_span.set_attribute("leaf_joins", ctx.stats.leaf_joins)
    result.stats = ctx.stats
    if flat:
        result.stats.build_nodes = tree_r.n_nodes + tree_s.n_nodes
        result.stats.build_sort_seconds = (
            tree_r.build_sort_seconds + tree_s.build_sort_seconds
        )
    result.stats.pairs_emitted = sink.count
    result.build_seconds = build_span.duration
    result.join_seconds = join_span.duration
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
