"""Similarity-join traversals over epsilon-kdB trees.

The traversal applies the paper's adjacent-cell rule: inside a split
dimension, a qualifying pair (distance <= epsilon under any L_p) must
fall into the same or adjacent cells, so a node's child ``i`` only ever
joins children ``i-1``, ``i`` and ``i+1`` of the other node.  Leaf-level
joins are vectorized sort-merge sweeps along one unsplit dimension with a
full-distance filter.

Self-joins emit each unordered pair once with ``left < right``; two-set
joins emit ``(r_index, s_index)`` with sides preserved.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import EpsilonKdbTree, Grid, InternalNode, LeafNode
from repro.core.kernels import KernelContext, KernelSource, build_kernel_context
from repro.core.result import JoinResult, JoinStats, PairCollector, PairCounter, PairSink
from repro.core.sweep import band_pairs_cross, band_pairs_self
from repro.errors import InvalidParameterError
from repro.obs import trace

# A "flat" node during traversal: (indices, sort-dim values), both sorted
# by the sort dimension.  Real leaves are converted to this form and
# leaf-vs-internal recursion produces filtered fragments of it.
_Flat = Tuple[np.ndarray, np.ndarray]
_TraversalNode = Union[InternalNode, _Flat]


class _JoinContext:
    """State threaded through one traversal."""

    __slots__ = (
        "points_a",
        "points_b",
        "grid",
        "eps",
        "band",
        "metric",
        "sink",
        "stats",
        "self_mode",
        "adjacency_pruning",
        "kernel",
    )

    def __init__(
        self,
        points_a: np.ndarray,
        points_b: np.ndarray,
        grid: Grid,
        spec: JoinSpec,
        sink: PairSink,
        self_mode: bool,
        kernel: Optional[KernelContext] = None,
    ):
        self.points_a = points_a
        self.points_b = points_b
        self.grid = grid
        self.eps = spec.epsilon
        self.band = spec.band_width
        self.metric = spec.metric
        self.sink = sink
        self.stats = JoinStats()
        self.self_mode = self_mode
        self.adjacency_pruning = spec.adjacency_pruning
        self.kernel = kernel

    # ------------------------------------------------------------------
    # leaf-level joins
    # ------------------------------------------------------------------
    def leaf_self(self, flat: _Flat) -> None:
        indices, values = flat
        self.stats.leaf_joins += 1
        pos_a, pos_b = band_pairs_self(values, self.band)
        self.stats.distance_computations += len(pos_a)
        if not len(pos_a):
            return
        left = indices[pos_a]
        right = indices[pos_b]
        if self.kernel is not None:
            mask = self.kernel.within_rows(left, right, self.stats)
        else:
            mask = self.metric.within_rows(
                self.points_a, self.points_a, left, right, self.eps
            )
        self._emit(left[mask], right[mask])

    def leaf_cross(self, flat_a: _Flat, flat_b: _Flat) -> None:
        indices_a, values_a = flat_a
        indices_b, values_b = flat_b
        self.stats.leaf_joins += 1
        pos_a, pos_b = band_pairs_cross(values_a, values_b, self.band)
        self.stats.distance_computations += len(pos_a)
        if not len(pos_a):
            return
        left = indices_a[pos_a]
        right = indices_b[pos_b]
        if self.kernel is not None:
            mask = self.kernel.within_rows(left, right, self.stats)
        else:
            mask = self.metric.within_rows(
                self.points_a, self.points_b, left, right, self.eps
            )
        self._emit(left[mask], right[mask])

    def _emit(self, left: np.ndarray, right: np.ndarray) -> None:
        if not len(left):
            return
        if self.self_mode:
            lo = np.minimum(left, right)
            hi = np.maximum(left, right)
            self.sink.emit(lo, hi)
        else:
            self.sink.emit(left, right)
        self.stats.pairs_emitted += int(len(left))


def _flatten(node: _TraversalNode) -> _TraversalNode:
    """Convert real leaves to the flat (indices, values) form."""
    if isinstance(node, LeafNode):
        if node.sort_values is None:
            raise InvalidParameterError(
                "tree must be finalized before joining; call tree.finalize()"
            )
        return (node.indices, node.sort_values)
    return node


def _self_join_node(ctx: _JoinContext, node: _TraversalNode) -> None:
    node = _flatten(node)
    ctx.stats.node_pairs_visited += 1
    if isinstance(node, tuple):
        ctx.leaf_self(node)
        return
    cells = sorted(node.children)
    for cell in cells:
        _self_join_node(ctx, node.children[cell])
        if ctx.adjacency_pruning:
            neighbor = node.children.get(cell + 1)
            if neighbor is not None:
                _cross_join(ctx, node.children[cell], neighbor)
        else:
            for other in cells:
                if other > cell:
                    _cross_join(ctx, node.children[cell], node.children[other])


def _cross_join(
    ctx: _JoinContext, a: _TraversalNode, b: _TraversalNode
) -> None:
    """Join every pair (x in a-side subtree, y in b-side subtree)."""
    a = _flatten(a)
    b = _flatten(b)
    ctx.stats.node_pairs_visited += 1
    a_leaf = isinstance(a, tuple)
    b_leaf = isinstance(b, tuple)
    if a_leaf and (not a[0].size):
        return
    if b_leaf and (not b[0].size):
        return
    if a_leaf and b_leaf:
        ctx.leaf_cross(a, b)
    elif not a_leaf and not b_leaf:
        if a.split_dim != b.split_dim:
            raise InvalidParameterError(
                "cross-joined internal nodes disagree on split dimension; "
                "the two trees were not built with a shared grid and order"
            )
        for cell_a, child_a in a.children.items():
            if ctx.adjacency_pruning:
                neighbors = (cell_a - 1, cell_a, cell_a + 1)
            else:
                neighbors = tuple(b.children)
            for cell_b in neighbors:
                child_b = b.children.get(cell_b)
                if child_b is not None:
                    _cross_join(ctx, child_a, child_b)
    elif a_leaf:
        _leaf_vs_internal(ctx, a, b, leaf_on_left=True)
    else:
        _leaf_vs_internal(ctx, b, a, leaf_on_left=False)


def _leaf_vs_internal(
    ctx: _JoinContext, flat: _Flat, internal: InternalNode, leaf_on_left: bool
) -> None:
    """Join a flat leaf fragment against an internal subtree.

    The fragment's points are filtered by cell in the internal node's
    split dimension: only points in cells ``j-1..j+1`` can pair with the
    child at cell ``j``.  Filtering preserves the fragment's sort order,
    so no re-sort is needed.
    """
    indices, values = flat
    points = ctx.points_a if leaf_on_left else ctx.points_b
    dim = internal.split_dim
    cells = ctx.grid.cell_of(points[indices, dim], dim)
    for cell_b, child in internal.children.items():
        if ctx.adjacency_pruning:
            mask = np.abs(cells - cell_b) <= 1
            if not mask.any():
                continue
            fragment: _Flat = (indices[mask], values[mask])
        else:
            fragment = flat
        if leaf_on_left:
            _cross_join(ctx, fragment, child)
        else:
            _cross_join(ctx, child, fragment)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def epsilon_kdb_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    tree: Optional[EpsilonKdbTree] = None,
    kernel_source: Optional[KernelSource] = None,
) -> JoinResult:
    """Self-join: all pairs ``i < j`` with ``dist(points[i], points[j]) <= eps``.

    Builds an epsilon-kdB tree (unless a pre-built ``tree`` over the same
    points and spec is supplied), traverses it with the adjacent-cell
    rule, and returns a :class:`JoinResult`.  Pass a
    :class:`~repro.core.result.PairCounter` as ``sink`` to count without
    materializing pairs.  ``kernel_source`` supplies pre-built column
    stores for the filter-cascade kernels (the parallel executor's
    zero-copy path); without it the cascade builds its own per join when
    ``spec.cascade_enabled(d)``.
    """
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points) < 2:
        return result
    with trace.span(
        "build", points=len(points), dims=points.shape[1], epsilon=spec.epsilon
    ) as build_span:
        if tree is None:
            tree = EpsilonKdbTree.build(points, spec)
        else:
            # A tree built for a larger epsilon remains valid for any
            # smaller threshold: its cells are at least tree-epsilon wide,
            # so the adjacent-cell rule still over-approximates the
            # spec-epsilon predicate.  The reverse would silently drop
            # pairs, so it is rejected.
            if spec.epsilon > tree.spec.epsilon or spec.band_width > tree.grid.eps:
                raise InvalidParameterError(
                    f"join epsilon {spec.epsilon} (band {spec.band_width}) "
                    f"exceeds the tree's build epsilon {tree.spec.epsilon} "
                    f"(cell width {tree.grid.eps}); rebuild the tree"
                )
            tree.finalize()
    kernel = build_kernel_context(
        spec,
        points,
        grid=tree.grid,
        split_dims=tree.split_dims(),
        sort_dim=tree.sort_dim,
        source=kernel_source,
    )
    with trace.span("self-join-traversal", points=len(points)) as join_span:
        ctx = _JoinContext(
            points, points, tree.grid, spec, sink, self_mode=True, kernel=kernel
        )
        _self_join_node(ctx, tree.root)
        join_span.set_attribute("pairs", sink.count)
        join_span.set_attribute("leaf_joins", ctx.stats.leaf_joins)
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = build_span.duration
    result.join_seconds = join_span.duration
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def epsilon_kdb_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    kernel_source: Optional[KernelSource] = None,
) -> JoinResult:
    """Two-set join: all ``(i, j)`` with ``dist(points_r[i], points_s[j]) <= eps``.

    Builds one epsilon-kdB tree per side over a shared grid covering the
    union of both bounding boxes, then runs the synchronized traversal.
    """
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality: "
            f"{points_r.shape[1]} != {points_s.shape[1]}"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    with trace.span(
        "build",
        points_r=len(points_r),
        points_s=len(points_s),
        dims=points_r.shape[1],
        epsilon=spec.epsilon,
    ) as build_span:
        grid = Grid.fit_union(points_r, points_s, spec.band_width)
        tree_r = EpsilonKdbTree.build(points_r, spec, grid=grid)
        tree_s = EpsilonKdbTree.build(points_s, spec, grid=grid)
    kernel = build_kernel_context(
        spec,
        points_r,
        points_b=points_s,
        grid=grid,
        split_dims=tuple(set(tree_r.split_dims()) | set(tree_s.split_dims())),
        sort_dim=tree_r.sort_dim,
        source=kernel_source,
    )
    with trace.span("two-set-traversal") as join_span:
        ctx = _JoinContext(
            points_r, points_s, grid, spec, sink, self_mode=False, kernel=kernel
        )
        _cross_join(ctx, tree_r.root, tree_s.root)
        join_span.set_attribute("pairs", sink.count)
        join_span.set_attribute("leaf_joins", ctx.stats.leaf_joins)
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = build_span.duration
    result.join_seconds = join_span.duration
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
