"""Parallel partitioned epsilon-kdB joins.

The epsilon-kdB decomposition is embarrassingly parallel along any split
dimension: child ``i`` of a split node only ever joins children
``i-1..i+1``, so a run of epsilon-wide cells (a *stripe*) joins only
itself and an epsilon-wide band at each neighbouring stripe.  The
external-memory driver (:mod:`repro.core.external`) already exploits
this to bound memory; this module exploits it to bound *latency*: it
plans overlapping stripes along the first split dimension, ships the
shared ``(n, d)`` point array to worker processes once via
``multiprocessing.shared_memory`` (workers receive only ``int64`` index
arrays, matching the tree's no-copy index-array design), runs one serial
epsilon-kdB join per stripe in a process pool, and merges the per-stripe
pair blocks deterministically.

Partitioning rule (self-join): stripe ``k`` *owns* the points whose
dimension-0 cell falls in its span; its task set is the owned points
plus the *boundary band* — points of later stripes within
``stripe_overlap`` (>= one cell width) of the stripe's upper boundary.
Every qualifying pair therefore appears in at least one task (both
points in one stripe, or spanning adjacent stripes with the upper point
in the band), and a pair can appear in at most two adjacent tasks (when
both points sit inside one band).  The merge removes those duplicates
with :func:`repro.core.result.canonicalize_self_pairs`, whose
``np.unique`` ordering is exactly the serial path's lexicographic
``sorted_pairs()`` ordering — so the parallel result is byte-identical
to the serial one.  Two-set joins stripe both relations on shared
boundaries planned from the combined histogram and merge with
:func:`repro.core.result.canonicalize_two_set_pairs`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import Grid
from repro.core.external import plan_stripes
from repro.core.flat_build import FlatEpsilonKdbTree
from repro.core.join import (
    _flat_cross_join_range,
    _flat_self_join_range,
    epsilon_kdb_join,
    epsilon_kdb_self_join,
)
from repro.core.kernels import KernelSource, build_kernel_context
from repro.core.resilience import DegradeToSerial, FaultPlan
from repro.core.result import (
    JoinResult,
    JoinStats,
    PairCollector,
    PairSink,
    canonicalize_self_pairs,
    canonicalize_two_set_pairs,
)
from repro.errors import InvalidParameterError, WorkerCrashError
from repro.obs import trace
from repro.obs.trace import Tracer

#: Below this many points (total, both sides for two-set joins) the
#: executor runs the serial path: process startup would dominate.
DEFAULT_SERIAL_THRESHOLD = 2048

#: Stripes planned per worker; a few per worker smooths out skew
#: (a slow stripe overlaps other workers' remaining stripes).
DEFAULT_STRIPES_PER_WORKER = 3

#: Base of the exponential backoff between task retries, in seconds.
DEFAULT_RETRY_BACKOFF = 0.05


@dataclass(frozen=True)
class StripePlan:
    """Partitioning of one join along a single dimension.

    ``spans`` are half-open cell ranges per stripe, as produced by
    :func:`repro.core.external.plan_stripes`; ``lo``/``cell_width``
    translate cells back to coordinates.  ``overlap`` is the boundary
    band width (>= ``cell_width``).
    """

    dim: int
    lo: float
    cell_width: float
    overlap: float
    n_cells: int
    spans: Tuple[Tuple[int, int], ...]

    @property
    def n_stripes(self) -> int:
        return len(self.spans)

    def boundaries(self) -> np.ndarray:
        """Upper-boundary coordinate of each stripe except the last."""
        stops = np.array([stop for _, stop in self.spans[:-1]], dtype=np.float64)
        return self.lo + stops * self.cell_width

    def cell_of(self, values: np.ndarray) -> np.ndarray:
        cells = np.floor((np.asarray(values) - self.lo) / self.cell_width)
        return np.clip(cells, 0, self.n_cells - 1).astype(np.int64)

    def owner_of(self, values: np.ndarray) -> np.ndarray:
        """Stripe id owning each value (by its dimension-0 cell)."""
        cell_to_stripe = np.empty(self.n_cells, dtype=np.int64)
        for sid, (start, stop) in enumerate(self.spans):
            cell_to_stripe[start:stop] = sid
        return cell_to_stripe[self.cell_of(values)]

    def task_indices(self, values: np.ndarray) -> List[np.ndarray]:
        """Global point indices of each stripe task, in ascending order.

        Task ``k`` holds stripe ``k``'s owned points plus the boundary
        band: points owned by later stripes whose coordinate is within
        ``overlap`` of stripe ``k``'s upper boundary.
        """
        values = np.asarray(values, dtype=np.float64)
        owners = self.owner_of(values)
        boundaries = self.boundaries()
        tasks: List[np.ndarray] = []
        for sid in range(self.n_stripes):
            mask = owners == sid
            if sid < self.n_stripes - 1:
                boundary = boundaries[sid]
                mask |= (owners > sid) & (values <= boundary + self.overlap)
            tasks.append(np.flatnonzero(mask))
        return tasks


def plan_parallel_stripes(
    values: np.ndarray,
    spec: JoinSpec,
    n_workers: int,
    stripes_per_worker: int = DEFAULT_STRIPES_PER_WORKER,
) -> StripePlan:
    """Plan load-balanced stripes over one coordinate array.

    Reuses the external driver's greedy :func:`plan_stripes` with a
    *capacity* target of roughly ``len(values) / (n_workers *
    stripes_per_worker)`` points per stripe, instead of a memory budget.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) and not np.isfinite(values).all():
        raise InvalidParameterError(
            "stripe planning requires finite coordinates; the values "
            "contain NaN or infinite entries"
        )
    if n_workers < 1:
        raise InvalidParameterError(f"n_workers must be >= 1, got {n_workers}")
    if stripes_per_worker < 1:
        raise InvalidParameterError(
            f"stripes_per_worker must be >= 1, got {stripes_per_worker}"
        )
    overlap = spec.resolved_stripe_overlap()
    cell_width = spec.band_width
    lo = float(values.min()) if len(values) else 0.0
    hi = float(values.max()) if len(values) else 0.0
    n_cells = max(1, int((hi - lo) // cell_width))
    plan_args = dict(
        dim=0, lo=lo, cell_width=cell_width, overlap=overlap, n_cells=n_cells
    )
    if n_cells == 1 or len(values) == 0:
        return StripePlan(spans=((0, n_cells),), **plan_args)
    cells = np.clip(
        np.floor((values - lo) / cell_width), 0, n_cells - 1
    ).astype(np.int64)
    histogram = np.bincount(cells, minlength=n_cells)
    capacity = max(2, -(-len(values) // (n_workers * stripes_per_worker)))
    spans = tuple(
        (span.start, span.stop)
        for span in plan_stripes(histogram, capacity)
    )
    return StripePlan(spans=spans, **plan_args)


# ----------------------------------------------------------------------
# worker-process machinery
# ----------------------------------------------------------------------
# Populated by the pool initializer in each worker (or directly by the
# in-process runner): side label -> (n, d) float64 view.
_WORKER_POINTS: Dict[str, np.ndarray] = {}
# Keeps attached segments alive for the worker's lifetime; with the
# fork start method all registrations share the parent's resource
# tracker, so only the parent's unlink() releases the segment.
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []


def _init_worker(segments: Dict[str, Tuple[str, Tuple[int, ...], str]]) -> None:
    _WORKER_POINTS.clear()
    for side, (name, shape, dtype) in segments.items():
        shm = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS.append(shm)
        _WORKER_POINTS[side] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf
        )


def _self_stripe_task(
    spec: JoinSpec, members: np.ndarray
) -> Tuple[np.ndarray, JoinStats, float]:
    started = time.perf_counter()
    points = _WORKER_POINTS["a"][members]
    # The shipped (d, n) column store backs the filter-cascade kernels
    # zero-copy: the stripe's tree indexes its local point subset, and
    # ``row_map`` translates those rows into the global store.
    cols = _WORKER_POINTS.get("a_cols")
    source = (
        KernelSource(cols_a=cols, row_map_a=members) if cols is not None else None
    )
    local = epsilon_kdb_self_join(points, spec, kernel_source=source)
    pairs = members[local.pairs] if len(local.pairs) else local.pairs
    return pairs, local.stats, time.perf_counter() - started


def _cross_stripe_task(
    spec: JoinSpec, members_r: np.ndarray, members_s: np.ndarray
) -> Tuple[np.ndarray, JoinStats, float]:
    started = time.perf_counter()
    points_r = _WORKER_POINTS["r"][members_r]
    points_s = _WORKER_POINTS["s"][members_s]
    cols_r = _WORKER_POINTS.get("r_cols")
    cols_s = _WORKER_POINTS.get("s_cols")
    if cols_r is not None and cols_s is not None:
        source = KernelSource(
            cols_a=cols_r,
            row_map_a=members_r,
            cols_b=cols_s,
            row_map_b=members_s,
        )
    else:
        source = None
    local = epsilon_kdb_join(points_r, points_s, spec, kernel_source=source)
    if len(local.pairs):
        pairs = np.column_stack(
            [members_r[local.pairs[:, 0]], members_s[local.pairs[:, 1]]]
        )
    else:
        pairs = local.pairs
    return pairs, local.stats, time.perf_counter() - started


# Upper bound of the last two-set flat task's cell range; absorbs any
# floating-point disagreement between the stripe plan's cell count and
# the grid's.
_CELL_RANGE_END = 2 ** 62


def _worker_flat_tree(prefix: str, spec: JoinSpec, grid: Grid) -> FlatEpsilonKdbTree:
    """Reassemble a shipped flat tree from this worker's shared segments."""
    return FlatEpsilonKdbTree.from_arrays(
        _WORKER_POINTS[prefix],
        _WORKER_POINTS[prefix + "_perm"],
        _WORKER_POINTS[prefix + "_digits"],
        _WORKER_POINTS[prefix + "_nodes"],
        spec,
        grid,
    )


def _flat_self_stripe_task(
    spec: JoinSpec, child_lo: int, child_hi: int
) -> Tuple[np.ndarray, JoinStats, float]:
    """Flat-mode self stripe task: join one range of root children.

    The tree is not rebuilt: its permuted point array, digit matrix and
    CSR node table arrive through shared memory, and the grid is refit
    from the data (min/max are permutation-invariant, so it is identical
    to the parent's).  The shipped flat column store backs the cascade
    kernels with no row translation at all — flat rows *are* kernel rows.
    """
    started = time.perf_counter()
    with trace.span("build", children=child_hi - child_lo):
        points_flat = _WORKER_POINTS["a"]
        grid = Grid.fit(points_flat, spec.band_width)
        tree = _worker_flat_tree("a", spec, grid)
        cols = _WORKER_POINTS.get("a_cols")
        source = KernelSource(cols_a=cols) if cols is not None else None
        kernel = build_kernel_context(
            spec,
            points_flat,
            grid=grid,
            split_dims=tree.split_dims(),
            sort_dim=tree.sort_dim,
            source=source,
        )
    collector = PairCollector()
    with trace.span("self-join-traversal", points=len(points_flat)) as join_span:
        stats = _flat_self_join_range(
            tree, spec, child_lo, child_hi, collector, kernel
        )
        join_span.set_attribute("pairs", collector.count)
        join_span.set_attribute("leaf_joins", stats.leaf_joins)
    return collector.pairs(), stats, time.perf_counter() - started


def _flat_cross_stripe_task(
    spec: JoinSpec, cell_lo: int, cell_hi: int
) -> Tuple[np.ndarray, JoinStats, float]:
    """Flat-mode two-set stripe task: join one range of root cells."""
    started = time.perf_counter()
    with trace.span("build", cell_lo=cell_lo):
        points_r = _WORKER_POINTS["r"]
        points_s = _WORKER_POINTS["s"]
        grid = Grid.fit_union(points_r, points_s, spec.band_width)
        tree_r = _worker_flat_tree("r", spec, grid)
        tree_s = _worker_flat_tree("s", spec, grid)
        cols_r = _WORKER_POINTS.get("r_cols")
        cols_s = _WORKER_POINTS.get("s_cols")
        if cols_r is not None and cols_s is not None:
            source = KernelSource(cols_a=cols_r, cols_b=cols_s)
        else:
            source = None
        kernel = build_kernel_context(
            spec,
            points_r,
            points_b=points_s,
            grid=grid,
            split_dims=tuple(set(tree_r.split_dims()) | set(tree_s.split_dims())),
            sort_dim=tree_r.sort_dim,
            source=source,
        )
    collector = PairCollector()
    with trace.span("two-set-traversal") as join_span:
        stats = _flat_cross_join_range(
            tree_r, tree_s, spec, cell_lo, cell_hi, collector, kernel
        )
        join_span.set_attribute("pairs", collector.count)
        join_span.set_attribute("leaf_joins", stats.leaf_joins)
    return collector.pairs(), stats, time.perf_counter() - started


def _guarded_task(
    task, plan, task_id, attempt, spec, *args, in_process=False, traced=False
):
    """Run one stripe task attempt, applying any injected faults first.

    Module-level (picklable) so it can be submitted to the pool; the
    same wrapper runs in-process for the poolless mode and the final
    in-parent retry, keeping fault semantics identical on every path.

    Returns ``(task result, shipped spans)``.  When ``traced`` and
    running in a pool worker, the attempt executes under a fresh local
    :class:`~repro.obs.trace.Tracer` whose spans are serialized and
    shipped back for the parent to stitch (spans of attempts that crash
    die with the worker; the parent records those from its side).
    In-process attempts trace straight into the parent's ambient tracer
    and ship nothing.
    """

    def attempt_span(tracer):
        return tracer.span(
            "stripe-task",
            task=task_id,
            attempt=attempt,
            pid=os.getpid(),
            in_parent=in_process,
        )

    def run(span):
        if plan is not None:
            plan.apply_task_faults(task_id, attempt, in_process=in_process)
        out = task(spec, *args)
        span.set_attribute("outcome", "ok")
        return out

    if traced and not in_process:
        tracer = Tracer()
        with trace.activate(tracer):
            with attempt_span(tracer) as span:
                out = run(span)
        return out, tracer.export()
    with attempt_span(trace.current_tracer()) as span:
        return run(span), None


def _export_shared(array: np.ndarray) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    try:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[:] = array
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm


def _release_shared(shm: shared_memory.SharedMemory) -> None:
    """Best-effort close + unlink; must never raise during cleanup."""
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class ParallelJoinExecutor:
    """Run epsilon-kdB joins across a process pool of stripe tasks.

    Degrades gracefully: ``n_workers=1``, inputs below
    ``serial_threshold`` points, or a plan with a single stripe all run
    the plain serial join — with output identical to the parallel path,
    which is itself byte-identical to the serial path (see module
    docstring).

    The pool path is fault-tolerant.  Every stripe task is a pure
    function of ``(points, spec, member indices)``, so recovery is
    re-execution: a crashed or timed-out task is re-dispatched up to
    ``max_task_retries`` times (exponential backoff), then run one final
    time *in the parent process*, so a task whose pool workers keep
    dying cannot fail the join.  A broken pool
    (``BrokenProcessPool``, e.g. an OOM-killed worker) or a pool that
    cannot be created at all degrades the whole join to the serial
    traversal.  Shared-memory segments are released on every one of
    those paths.  Because the merge dedups deterministically, the
    result stays byte-identical to the serial join no matter which
    recovery route ran; ``JoinStats`` reports the route taken
    (``tasks_retried``, ``tasks_timed_out``, ``degraded_to_serial``,
    ``faults_injected``).

    Args:
        spec: the join parameters; ``spec.n_workers``,
            ``spec.stripe_overlap``, ``spec.task_timeout`` and
            ``spec.max_task_retries`` supply defaults.
        n_workers: overrides ``spec.n_workers``; ``None`` falls back to
            the spec, then to ``os.cpu_count()``.
        stripes_per_worker: planned stripes per worker (load balance).
        serial_threshold: total point count below which the serial path
            runs directly.
        use_processes: when ``False``, run the same stripe tasks
            in-process (same planning, same merge, same retry
            accounting, no pool) — used by tests to exercise the
            decomposition and recovery logic cheaply.
        task_timeout: overrides ``spec.task_timeout`` (seconds).
        max_task_retries: overrides ``spec.max_task_retries``.
        retry_backoff: base of the exponential backoff between retries,
            in seconds (``0`` disables backoff sleeps).
        fault_plan: a :class:`~repro.core.resilience.FaultPlan` to
            inject deterministic faults into this executor's runs.
    """

    def __init__(
        self,
        spec: JoinSpec,
        n_workers: Optional[int] = None,
        stripes_per_worker: int = DEFAULT_STRIPES_PER_WORKER,
        serial_threshold: int = DEFAULT_SERIAL_THRESHOLD,
        use_processes: bool = True,
        task_timeout: Optional[float] = None,
        max_task_retries: Optional[int] = None,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if n_workers is None:
            n_workers = spec.n_workers
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if int(n_workers) < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1, got {n_workers!r}"
            )
        self.spec = spec
        self.n_workers = int(n_workers)
        self.stripes_per_worker = int(stripes_per_worker)
        self.serial_threshold = int(serial_threshold)
        self.use_processes = use_processes
        self.task_timeout = (
            spec.task_timeout if task_timeout is None else float(task_timeout)
        )
        self.max_task_retries = (
            spec.max_task_retries
            if max_task_retries is None
            else int(max_task_retries)
        )
        if self.max_task_retries < 0:
            raise InvalidParameterError(
                f"max_task_retries must be >= 0, got {max_task_retries!r}"
            )
        self.retry_backoff = float(retry_backoff)
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    def self_join(
        self, points: np.ndarray, sink: Optional[PairSink] = None
    ) -> JoinResult:
        """Parallel self-join; same contract as ``epsilon_kdb_self_join``."""
        points = validate_points(points)
        with trace.span(
            "parallel-self-join", points=len(points), n_workers=self.n_workers
        ):
            if self.n_workers == 1 or len(points) < max(2, self.serial_threshold):
                trace.add_event("serial-fallback", reason="small input or 1 worker")
                return self._serial(
                    lambda: epsilon_kdb_self_join(points, self.spec, sink=sink)
                )
            started = time.perf_counter()
            with trace.span("plan") as plan_span:
                dim = int(self.spec.resolved_split_order(points.shape[1])[0])
                plan = plan_parallel_stripes(
                    points[:, dim], self.spec, self.n_workers, self.stripes_per_worker
                )
                plan_span.set_attribute("stripes", plan.n_stripes)
            if plan.n_stripes < 2:
                trace.add_event("serial-fallback", reason="single stripe")
                return self._serial(
                    lambda: epsilon_kdb_self_join(points, self.spec, sink=sink)
                )
            if self.spec.resolved_build() == "flat":
                return self._flat_self(points, dim, plan, sink, started)
            tasks = [
                (members,)
                for members in plan.task_indices(points[:, dim])
                if len(members) >= 2
            ]
            segments = {"a": points}
            if self.spec.cascade_enabled(points.shape[1]):
                # One (d, n) structure-of-arrays copy, shipped once and
                # shared by every stripe's cascade kernels.
                segments["a_cols"] = np.ascontiguousarray(points.T)
            try:
                outcomes, planned, resilience = self._run(
                    _self_stripe_task, tasks, segments, started
                )
            except DegradeToSerial as signal:
                return self._degraded_serial(
                    lambda: epsilon_kdb_self_join(points, self.spec, sink=sink),
                    signal,
                )
            return self._merge(
                outcomes, planned, plan, sink, canonicalize_self_pairs, resilience
            )

    def join(
        self,
        points_r: np.ndarray,
        points_s: np.ndarray,
        sink: Optional[PairSink] = None,
    ) -> JoinResult:
        """Parallel two-set join; same contract as ``epsilon_kdb_join``."""
        points_r = validate_points(points_r, "points_r")
        points_s = validate_points(points_s, "points_s")
        if points_r.shape[1] != points_s.shape[1]:
            raise InvalidParameterError(
                "both sides of a join must have the same dimensionality: "
                f"{points_r.shape[1]} != {points_s.shape[1]}"
            )
        total = len(points_r) + len(points_s)
        with trace.span(
            "parallel-two-set-join",
            points_r=len(points_r),
            points_s=len(points_s),
            n_workers=self.n_workers,
        ):
            small = (
                self.n_workers == 1
                or total < self.serial_threshold
                or len(points_r) == 0
                or len(points_s) == 0
            )
            if small:
                trace.add_event("serial-fallback", reason="small input or 1 worker")
                return self._serial(
                    lambda: epsilon_kdb_join(points_r, points_s, self.spec, sink=sink)
                )
            started = time.perf_counter()
            with trace.span("plan") as plan_span:
                dim = int(self.spec.resolved_split_order(points_r.shape[1])[0])
                values_r = points_r[:, dim]
                values_s = points_s[:, dim]
                plan = plan_parallel_stripes(
                    np.concatenate([values_r, values_s]),
                    self.spec,
                    self.n_workers,
                    self.stripes_per_worker,
                )
                plan_span.set_attribute("stripes", plan.n_stripes)
            if plan.n_stripes < 2:
                trace.add_event("serial-fallback", reason="single stripe")
                return self._serial(
                    lambda: epsilon_kdb_join(points_r, points_s, self.spec, sink=sink)
                )
            if self.spec.resolved_build() == "flat":
                return self._flat_cross(points_r, points_s, plan, sink, started)
            tasks = [
                (members_r, members_s)
                for members_r, members_s in zip(
                    plan.task_indices(values_r), plan.task_indices(values_s)
                )
                if len(members_r) and len(members_s)
            ]
            segments = {"r": points_r, "s": points_s}
            if self.spec.cascade_enabled(points_r.shape[1]):
                segments["r_cols"] = np.ascontiguousarray(points_r.T)
                segments["s_cols"] = np.ascontiguousarray(points_s.T)
            try:
                outcomes, planned, resilience = self._run(
                    _cross_stripe_task, tasks, segments, started
                )
            except DegradeToSerial as signal:
                return self._degraded_serial(
                    lambda: epsilon_kdb_join(
                        points_r, points_s, self.spec, sink=sink
                    ),
                    signal,
                )
            return self._merge(
                outcomes, planned, plan, sink, canonicalize_two_set_pairs, resilience
            )

    # ------------------------------------------------------------------
    # flat-build mode
    # ------------------------------------------------------------------
    def _flat_self(self, points, dim, plan, sink, started) -> JoinResult:
        """Parallel self-join over one globally built flat tree.

        One vectorized build in the parent; workers receive the permuted
        array, digit matrix and CSR node table through shared memory and
        traverse disjoint root-child ranges (each child plus its cross
        with the right-adjacent sibling), so the stripe tasks partition
        the serial traversal exactly — no boundary bands, no duplicate
        pairs, and no per-task index-list shipping.
        """
        with trace.span(
            "build", points=len(points), dims=points.shape[1], epsilon=self.spec.epsilon
        ):
            tree = FlatEpsilonKdbTree.build(points, self.spec)

        def stamp(result: JoinResult) -> JoinResult:
            result.stats.build_nodes = tree.n_nodes
            result.stats.build_sort_seconds = tree.build_sort_seconds
            result.stats.structure_cache_hits = 0
            return result

        first = int(tree.node_first_child[0])
        count = int(tree.node_n_children[0])
        partitionable = (
            count >= 2
            and len(tree.level_dims)
            and int(tree.level_dims[0]) == dim
        )
        if not partitionable:
            trace.add_event("serial-fallback", reason="flat root not partitionable")
            return stamp(
                self._serial(
                    lambda: epsilon_kdb_self_join(
                        points, self.spec, sink=sink, tree=tree
                    )
                )
            )
        child_digits = tree.node_digit[first:first + count]
        bounds = (
            [0]
            + [
                int(np.searchsorted(child_digits, stop))
                for _, stop in plan.spans[:-1]
            ]
            + [count]
        )
        tasks = [
            (lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        segments = {
            "a": tree.points_flat,
            "a_perm": tree.perm,
            "a_digits": tree.digits,
            "a_nodes": tree.packed_nodes(),
        }
        if self.spec.cascade_enabled(points.shape[1]):
            segments["a_cols"] = np.ascontiguousarray(tree.points_flat.T)
        try:
            outcomes, planned, resilience = self._run(
                _flat_self_stripe_task, tasks, segments, started
            )
        except DegradeToSerial as signal:
            return stamp(
                self._degraded_serial(
                    lambda: epsilon_kdb_self_join(
                        points, self.spec, sink=sink, tree=tree
                    ),
                    signal,
                )
            )
        return stamp(
            self._merge(
                outcomes, planned, plan, sink, canonicalize_self_pairs, resilience
            )
        )

    def _flat_cross(self, points_r, points_s, plan, sink, started) -> JoinResult:
        """Parallel two-set join over two globally built flat trees.

        Tasks own half-open root-cell ranges; the task owning cell ``g``
        joins ``(R_g, S_g)``, ``(R_g, S_{g+1})`` and ``(R_{g+1}, S_g)``,
        which partitions the adjacent child pairs exactly.
        """
        with trace.span(
            "build",
            points_r=len(points_r),
            points_s=len(points_s),
            dims=points_r.shape[1],
            epsilon=self.spec.epsilon,
        ):
            grid = Grid.fit_union(points_r, points_s, self.spec.band_width)
            tree_r = FlatEpsilonKdbTree.build(points_r, self.spec, grid=grid)
            tree_s = FlatEpsilonKdbTree.build(points_s, self.spec, grid=grid)
            # Each tree's digits must cover the other tree's depths
            # before the digit matrices are shipped to the workers.
            shared_levels = max(len(tree_r.digits), len(tree_s.digits))
            tree_r.ensure_digit_levels(shared_levels)
            tree_s.ensure_digit_levels(shared_levels)

        def stamp(result: JoinResult) -> JoinResult:
            result.stats.build_nodes = tree_r.n_nodes + tree_s.n_nodes
            result.stats.build_sort_seconds = (
                tree_r.build_sort_seconds + tree_s.build_sort_seconds
            )
            result.stats.structure_cache_hits = 0
            return result

        partitionable = (
            int(tree_r.node_n_children[0]) >= 1
            and int(tree_s.node_n_children[0]) >= 1
            and len(tree_r.level_dims)
            and int(tree_r.level_dims[0]) == plan.dim
        )
        if not partitionable:
            trace.add_event("serial-fallback", reason="flat root not partitionable")
            return stamp(
                self._serial(
                    lambda: epsilon_kdb_join(
                        points_r, points_s, self.spec, sink=sink
                    )
                )
            )
        r_first = int(tree_r.node_first_child[0])
        s_first = int(tree_s.node_first_child[0])
        occupied = np.union1d(
            tree_r.node_digit[r_first:r_first + int(tree_r.node_n_children[0])],
            tree_s.node_digit[s_first:s_first + int(tree_s.node_n_children[0])],
        )
        tasks = []
        for index, (start, stop) in enumerate(plan.spans):
            cell_hi = _CELL_RANGE_END if index == plan.n_stripes - 1 else int(stop)
            lo = int(np.searchsorted(occupied, start))
            hi = int(np.searchsorted(occupied, cell_hi))
            if hi > lo:
                tasks.append((int(start), cell_hi))
        segments = {
            "r": tree_r.points_flat,
            "r_perm": tree_r.perm,
            "r_digits": tree_r.digits,
            "r_nodes": tree_r.packed_nodes(),
            "s": tree_s.points_flat,
            "s_perm": tree_s.perm,
            "s_digits": tree_s.digits,
            "s_nodes": tree_s.packed_nodes(),
        }
        if self.spec.cascade_enabled(points_r.shape[1]):
            segments["r_cols"] = np.ascontiguousarray(tree_r.points_flat.T)
            segments["s_cols"] = np.ascontiguousarray(tree_s.points_flat.T)
        try:
            outcomes, planned, resilience = self._run(
                _flat_cross_stripe_task, tasks, segments, started
            )
        except DegradeToSerial as signal:
            return stamp(
                self._degraded_serial(
                    lambda: epsilon_kdb_join(
                        points_r, points_s, self.spec, sink=sink
                    ),
                    signal,
                )
            )
        return stamp(
            self._merge(
                outcomes, planned, plan, sink, canonicalize_two_set_pairs, resilience
            )
        )

    # ------------------------------------------------------------------
    def _serial(self, run) -> JoinResult:
        result = run()
        result.stats.stripes = max(result.stats.stripes, 1)
        result.stats.workers_used = 0
        return result

    def _degraded_serial(self, run, signal: DegradeToSerial) -> JoinResult:
        """Serial fallback after the pool path failed; carries its stats."""
        trace.add_event("degraded-to-serial", reason=signal.reason)
        result = self._serial(run)
        stats = result.stats
        stats.degraded_to_serial = True
        stats.tasks_retried += signal.tasks_retried
        stats.tasks_timed_out += signal.tasks_timed_out
        stats.faults_injected += signal.faults_injected
        return result

    def _run(self, task, tasks, arrays, started):
        """Execute stripe tasks with retry, deadlines, and degradation.

        Returns ``(outcomes in task order, plan seconds, resilience
        counters)``.  Raises :class:`DegradeToSerial` when no pool can
        be created or the pool breaks mid-join; shared-memory segments
        are released on every exit path, including that one.
        """
        resilience = {
            "tasks_retried": 0,
            "tasks_timed_out": 0,
            "faults_injected": 0,
        }
        if not self.use_processes:
            _WORKER_POINTS.clear()
            _WORKER_POINTS.update(arrays)
            planned = time.perf_counter() - started
            try:
                with trace.span("dispatch", mode="in-process", tasks=len(tasks)):
                    outcomes = [
                        self._attempts_in_process(task, index, args, resilience)
                        for index, args in enumerate(tasks)
                    ]
                return outcomes, planned, resilience
            finally:
                _WORKER_POINTS.clear()
        shms: Dict[str, shared_memory.SharedMemory] = {}
        try:
            with trace.span("ship") as ship_span:
                for side, array in arrays.items():
                    shms[side] = _export_shared(array)
                segments = {
                    side: (
                        shms[side].name,
                        arrays[side].shape,
                        arrays[side].dtype.str,
                    )
                    for side in arrays
                }
                ship_span.set_attribute(
                    "bytes", int(sum(a.nbytes for a in arrays.values()))
                )
            workers = min(self.n_workers, max(1, len(tasks)))
            if self.fault_plan is not None and self.fault_plan.take_pool_failure():
                resilience["faults_injected"] += 1
                raise DegradeToSerial(
                    "injected pool-creation failure", **resilience
                )
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(segments,),
                )
            except (OSError, ValueError, RuntimeError) as exc:
                raise DegradeToSerial(
                    f"process pool creation failed: {exc}", **resilience
                ) from exc
            try:
                with pool:
                    planned = time.perf_counter() - started
                    with trace.span(
                        "dispatch", tasks=len(tasks), workers=workers
                    ):
                        futures = {
                            index: self._dispatch(
                                pool, task, index, 0, args, resilience
                            )
                            for index, args in enumerate(tasks)
                        }
                        outcomes = [
                            self._await_with_retries(
                                pool, task, index, args, futures[index],
                                arrays, resilience,
                            )
                            for index, args in enumerate(tasks)
                        ]
                return outcomes, planned, resilience
            except BrokenProcessPool as exc:
                raise DegradeToSerial(
                    f"process pool broke mid-join: {exc}", **resilience
                ) from exc
        finally:
            for shm in shms.values():
                _release_shared(shm)

    def _dispatch(self, pool, task, index, attempt, args, resilience):
        """Submit one attempt; returns ``(future, dispatch timestamp)``."""
        plan = self.fault_plan
        if plan is not None:
            resilience["faults_injected"] += plan.count_task_faults(index, attempt)
        future = pool.submit(
            _guarded_task,
            task,
            plan,
            index,
            attempt,
            self.spec,
            *args,
            traced=trace.is_enabled(),
        )
        return future, time.perf_counter()

    def _await_with_retries(
        self, pool, task, index, args, future, arrays, resilience
    ):
        """Wait on one stripe task, re-dispatching failed/timed-out attempts.

        Attempts ``0..max_task_retries`` run in the pool under the
        ``task_timeout`` deadline; the attempt after that runs in the
        parent process with no deadline, so a task whose workers keep
        failing still completes (or surfaces its real error).
        ``BrokenProcessPool`` propagates — the caller degrades the whole
        join to serial.

        Tracing: a successful attempt ships its worker-side spans back
        with the result, which are stitched into the ambient trace here;
        a failed attempt's spans die with the worker, so the parent
        records a ``stripe-task`` span for it from the dispatch
        timestamp (submission time, so it includes queueing).
        """
        future, dispatched_at = future
        attempt = 0
        while True:
            try:
                outcome, spans = future.result(timeout=self.task_timeout)
            except BrokenProcessPool:
                raise
            except FuturesTimeoutError:
                resilience["tasks_timed_out"] += 1
                trace.record_span(
                    "stripe-task",
                    dispatched_at,
                    time.perf_counter(),
                    task=index,
                    attempt=attempt,
                    outcome="timed-out",
                )
                future.cancel()
            except (WorkerCrashError, OSError) as exc:
                trace.record_span(
                    "stripe-task",
                    dispatched_at,
                    time.perf_counter(),
                    task=index,
                    attempt=attempt,
                    outcome=f"crashed:{type(exc).__name__}",
                )
            else:
                if spans:
                    trace.current_tracer().adopt(spans)
                return outcome
            attempt += 1
            resilience["tasks_retried"] += 1
            trace.add_event("task-retry", task=index, attempt=attempt)
            if attempt > self.max_task_retries:
                return self._final_attempt_in_parent(
                    task, index, attempt, args, arrays, resilience
                )
            if self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            future, dispatched_at = self._dispatch(
                pool, task, index, attempt, args, resilience
            )

    def _final_attempt_in_parent(
        self, task, index, attempt, args, arrays, resilience
    ):
        """Last-chance execution in the parent: no pool, no deadline."""
        plan = self.fault_plan
        if plan is not None:
            resilience["faults_injected"] += plan.count_task_faults(index, attempt)
        preserved = dict(_WORKER_POINTS)
        _WORKER_POINTS.clear()
        _WORKER_POINTS.update(arrays)
        try:
            outcome, _ = _guarded_task(
                task, plan, index, attempt, self.spec, *args, in_process=True
            )
            return outcome
        finally:
            _WORKER_POINTS.clear()
            _WORKER_POINTS.update(preserved)

    def _attempts_in_process(self, task, index, args, resilience):
        """Poolless counterpart of ``_await_with_retries``.

        Deadlines cannot preempt an in-process task, so they are
        emulated post-hoc: an attempt whose wall time exceeded
        ``task_timeout`` is discarded and retried, with the same
        accounting as the pool path.  The final attempt (the in-parent
        one on the pool path) has no deadline.
        """
        plan = self.fault_plan
        attempt = 0
        while True:
            if plan is not None:
                resilience["faults_injected"] += plan.count_task_faults(
                    index, attempt
                )
            final = attempt > self.max_task_retries
            try:
                began = time.perf_counter()
                outcome, _ = _guarded_task(
                    task, plan, index, attempt, self.spec, *args, in_process=True
                )
            except DegradeToSerial as signal:
                raise DegradeToSerial(signal.reason, **resilience) from None
            except (WorkerCrashError, OSError):
                if final:
                    raise
            else:
                elapsed = time.perf_counter() - began
                timed_out = (
                    not final
                    and self.task_timeout is not None
                    and elapsed > self.task_timeout
                )
                if not timed_out:
                    return outcome
                resilience["tasks_timed_out"] += 1
            attempt += 1
            resilience["tasks_retried"] += 1
            trace.add_event("task-retry", task=index, attempt=attempt)
            if self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _merge(
        self, outcomes, planned, plan, sink, canonicalize, resilience=None
    ) -> JoinResult:
        result = JoinResult()
        stats = result.stats
        with trace.span("merge", tasks=len(outcomes)) as merge_span:
            blocks: List[np.ndarray] = []
            for pairs, task_stats, seconds in outcomes:
                stats.merge(task_stats)
                stats.worker_seconds.append(seconds)
                if len(pairs):
                    blocks.append(pairs)
            if blocks:
                raw = np.vstack(blocks)
            else:
                raw = np.empty((0, 2), dtype=np.int64)
            canonical = canonicalize(raw[:, 0], raw[:, 1])
            stats.stripes = plan.n_stripes
            stats.workers_used = min(self.n_workers, max(1, len(outcomes)))
            stats.duplicate_pairs_merged = len(raw) - len(canonical)
            merge_span.set_attribute("pairs", len(canonical))
            merge_span.set_attribute(
                "duplicate_pairs_merged", stats.duplicate_pairs_merged
            )
            if resilience is not None:
                stats.tasks_retried += resilience["tasks_retried"]
                stats.tasks_timed_out += resilience["tasks_timed_out"]
                stats.faults_injected += resilience["faults_injected"]
            if sink is None:
                result.pairs = canonical
                stats.pairs_emitted = len(canonical)
            else:
                sink.emit(canonical[:, 0], canonical[:, 1])
                stats.pairs_emitted = sink.count
        result.build_seconds = planned
        result.join_seconds = merge_span.duration + max(
            stats.worker_seconds, default=0.0
        )
        return result


def parallel_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    n_workers: Optional[int] = None,
    **kwargs,
) -> JoinResult:
    """Function-style entry point mirroring ``epsilon_kdb_self_join``."""
    executor = ParallelJoinExecutor(spec, n_workers=n_workers, **kwargs)
    return executor.self_join(points, sink=sink)


def parallel_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    n_workers: Optional[int] = None,
    **kwargs,
) -> JoinResult:
    """Function-style entry point mirroring ``epsilon_kdb_join``."""
    executor = ParallelJoinExecutor(spec, n_workers=n_workers, **kwargs)
    return executor.join(points_r, points_s, sink=sink)
