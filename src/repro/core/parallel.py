"""Parallel partitioned epsilon-kdB joins.

The epsilon-kdB decomposition is embarrassingly parallel along any split
dimension: child ``i`` of a split node only ever joins children
``i-1..i+1``, so a run of epsilon-wide cells (a *stripe*) joins only
itself and an epsilon-wide band at each neighbouring stripe.  The
external-memory driver (:mod:`repro.core.external`) already exploits
this to bound memory; this module exploits it to bound *latency*: it
plans overlapping stripes along the first split dimension, ships the
shared ``(n, d)`` point array to worker processes once via
``multiprocessing.shared_memory`` (workers receive only ``int64`` index
arrays, matching the tree's no-copy index-array design), runs one serial
epsilon-kdB join per stripe in a process pool, and merges the per-stripe
pair blocks deterministically.

Partitioning rule (self-join): stripe ``k`` *owns* the points whose
dimension-0 cell falls in its span; its task set is the owned points
plus the *boundary band* — points of later stripes within
``stripe_overlap`` (>= one cell width) of the stripe's upper boundary.
Every qualifying pair therefore appears in at least one task (both
points in one stripe, or spanning adjacent stripes with the upper point
in the band), and a pair can appear in at most two adjacent tasks (when
both points sit inside one band).  The merge removes those duplicates
with :func:`repro.core.result.canonicalize_self_pairs`, whose
``np.unique`` ordering is exactly the serial path's lexicographic
``sorted_pairs()`` ordering — so the parallel result is byte-identical
to the serial one.  Two-set joins stripe both relations on shared
boundaries planned from the combined histogram and merge with
:func:`repro.core.result.canonicalize_two_set_pairs`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.external import plan_stripes
from repro.core.join import epsilon_kdb_join, epsilon_kdb_self_join
from repro.core.kernels import KernelSource
from repro.core.resilience import DegradeToSerial, FaultPlan
from repro.core.result import (
    JoinResult,
    JoinStats,
    PairSink,
    canonicalize_self_pairs,
    canonicalize_two_set_pairs,
)
from repro.errors import InvalidParameterError, WorkerCrashError
from repro.obs import trace
from repro.obs.trace import Tracer

#: Below this many points (total, both sides for two-set joins) the
#: executor runs the serial path: process startup would dominate.
DEFAULT_SERIAL_THRESHOLD = 2048

#: Stripes planned per worker; a few per worker smooths out skew
#: (a slow stripe overlaps other workers' remaining stripes).
DEFAULT_STRIPES_PER_WORKER = 3

#: Base of the exponential backoff between task retries, in seconds.
DEFAULT_RETRY_BACKOFF = 0.05


@dataclass(frozen=True)
class StripePlan:
    """Partitioning of one join along a single dimension.

    ``spans`` are half-open cell ranges per stripe, as produced by
    :func:`repro.core.external.plan_stripes`; ``lo``/``cell_width``
    translate cells back to coordinates.  ``overlap`` is the boundary
    band width (>= ``cell_width``).
    """

    dim: int
    lo: float
    cell_width: float
    overlap: float
    n_cells: int
    spans: Tuple[Tuple[int, int], ...]

    @property
    def n_stripes(self) -> int:
        return len(self.spans)

    def boundaries(self) -> np.ndarray:
        """Upper-boundary coordinate of each stripe except the last."""
        stops = np.array([stop for _, stop in self.spans[:-1]], dtype=np.float64)
        return self.lo + stops * self.cell_width

    def cell_of(self, values: np.ndarray) -> np.ndarray:
        cells = np.floor((np.asarray(values) - self.lo) / self.cell_width)
        return np.clip(cells, 0, self.n_cells - 1).astype(np.int64)

    def owner_of(self, values: np.ndarray) -> np.ndarray:
        """Stripe id owning each value (by its dimension-0 cell)."""
        cell_to_stripe = np.empty(self.n_cells, dtype=np.int64)
        for sid, (start, stop) in enumerate(self.spans):
            cell_to_stripe[start:stop] = sid
        return cell_to_stripe[self.cell_of(values)]

    def task_indices(self, values: np.ndarray) -> List[np.ndarray]:
        """Global point indices of each stripe task, in ascending order.

        Task ``k`` holds stripe ``k``'s owned points plus the boundary
        band: points owned by later stripes whose coordinate is within
        ``overlap`` of stripe ``k``'s upper boundary.
        """
        values = np.asarray(values, dtype=np.float64)
        owners = self.owner_of(values)
        boundaries = self.boundaries()
        tasks: List[np.ndarray] = []
        for sid in range(self.n_stripes):
            mask = owners == sid
            if sid < self.n_stripes - 1:
                boundary = boundaries[sid]
                mask |= (owners > sid) & (values <= boundary + self.overlap)
            tasks.append(np.flatnonzero(mask))
        return tasks


def plan_parallel_stripes(
    values: np.ndarray,
    spec: JoinSpec,
    n_workers: int,
    stripes_per_worker: int = DEFAULT_STRIPES_PER_WORKER,
) -> StripePlan:
    """Plan load-balanced stripes over one coordinate array.

    Reuses the external driver's greedy :func:`plan_stripes` with a
    *capacity* target of roughly ``len(values) / (n_workers *
    stripes_per_worker)`` points per stripe, instead of a memory budget.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) and not np.isfinite(values).all():
        raise InvalidParameterError(
            "stripe planning requires finite coordinates; the values "
            "contain NaN or infinite entries"
        )
    if n_workers < 1:
        raise InvalidParameterError(f"n_workers must be >= 1, got {n_workers}")
    if stripes_per_worker < 1:
        raise InvalidParameterError(
            f"stripes_per_worker must be >= 1, got {stripes_per_worker}"
        )
    overlap = spec.resolved_stripe_overlap()
    cell_width = spec.band_width
    lo = float(values.min()) if len(values) else 0.0
    hi = float(values.max()) if len(values) else 0.0
    n_cells = max(1, int((hi - lo) // cell_width))
    plan_args = dict(
        dim=0, lo=lo, cell_width=cell_width, overlap=overlap, n_cells=n_cells
    )
    if n_cells == 1 or len(values) == 0:
        return StripePlan(spans=((0, n_cells),), **plan_args)
    cells = np.clip(
        np.floor((values - lo) / cell_width), 0, n_cells - 1
    ).astype(np.int64)
    histogram = np.bincount(cells, minlength=n_cells)
    capacity = max(2, -(-len(values) // (n_workers * stripes_per_worker)))
    spans = tuple(
        (span.start, span.stop)
        for span in plan_stripes(histogram, capacity)
    )
    return StripePlan(spans=spans, **plan_args)


# ----------------------------------------------------------------------
# worker-process machinery
# ----------------------------------------------------------------------
# Populated by the pool initializer in each worker (or directly by the
# in-process runner): side label -> (n, d) float64 view.
_WORKER_POINTS: Dict[str, np.ndarray] = {}
# Keeps attached segments alive for the worker's lifetime; with the
# fork start method all registrations share the parent's resource
# tracker, so only the parent's unlink() releases the segment.
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []


def _init_worker(segments: Dict[str, Tuple[str, Tuple[int, int]]]) -> None:
    _WORKER_POINTS.clear()
    for side, (name, shape) in segments.items():
        shm = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS.append(shm)
        _WORKER_POINTS[side] = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)


def _self_stripe_task(
    spec: JoinSpec, members: np.ndarray
) -> Tuple[np.ndarray, JoinStats, float]:
    started = time.perf_counter()
    points = _WORKER_POINTS["a"][members]
    # The shipped (d, n) column store backs the filter-cascade kernels
    # zero-copy: the stripe's tree indexes its local point subset, and
    # ``row_map`` translates those rows into the global store.
    cols = _WORKER_POINTS.get("a_cols")
    source = (
        KernelSource(cols_a=cols, row_map_a=members) if cols is not None else None
    )
    local = epsilon_kdb_self_join(points, spec, kernel_source=source)
    pairs = members[local.pairs] if len(local.pairs) else local.pairs
    return pairs, local.stats, time.perf_counter() - started


def _cross_stripe_task(
    spec: JoinSpec, members_r: np.ndarray, members_s: np.ndarray
) -> Tuple[np.ndarray, JoinStats, float]:
    started = time.perf_counter()
    points_r = _WORKER_POINTS["r"][members_r]
    points_s = _WORKER_POINTS["s"][members_s]
    cols_r = _WORKER_POINTS.get("r_cols")
    cols_s = _WORKER_POINTS.get("s_cols")
    if cols_r is not None and cols_s is not None:
        source = KernelSource(
            cols_a=cols_r,
            row_map_a=members_r,
            cols_b=cols_s,
            row_map_b=members_s,
        )
    else:
        source = None
    local = epsilon_kdb_join(points_r, points_s, spec, kernel_source=source)
    if len(local.pairs):
        pairs = np.column_stack(
            [members_r[local.pairs[:, 0]], members_s[local.pairs[:, 1]]]
        )
    else:
        pairs = local.pairs
    return pairs, local.stats, time.perf_counter() - started


def _guarded_task(
    task, plan, task_id, attempt, spec, *args, in_process=False, traced=False
):
    """Run one stripe task attempt, applying any injected faults first.

    Module-level (picklable) so it can be submitted to the pool; the
    same wrapper runs in-process for the poolless mode and the final
    in-parent retry, keeping fault semantics identical on every path.

    Returns ``(task result, shipped spans)``.  When ``traced`` and
    running in a pool worker, the attempt executes under a fresh local
    :class:`~repro.obs.trace.Tracer` whose spans are serialized and
    shipped back for the parent to stitch (spans of attempts that crash
    die with the worker; the parent records those from its side).
    In-process attempts trace straight into the parent's ambient tracer
    and ship nothing.
    """

    def attempt_span(tracer):
        return tracer.span(
            "stripe-task",
            task=task_id,
            attempt=attempt,
            pid=os.getpid(),
            in_parent=in_process,
        )

    def run(span):
        if plan is not None:
            plan.apply_task_faults(task_id, attempt, in_process=in_process)
        out = task(spec, *args)
        span.set_attribute("outcome", "ok")
        return out

    if traced and not in_process:
        tracer = Tracer()
        with trace.activate(tracer):
            with attempt_span(tracer) as span:
                out = run(span)
        return out, tracer.export()
    with attempt_span(trace.current_tracer()) as span:
        return run(span), None


def _export_shared(array: np.ndarray) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    try:
        view = np.ndarray(array.shape, dtype=np.float64, buffer=shm.buf)
        view[:] = array
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm


def _release_shared(shm: shared_memory.SharedMemory) -> None:
    """Best-effort close + unlink; must never raise during cleanup."""
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class ParallelJoinExecutor:
    """Run epsilon-kdB joins across a process pool of stripe tasks.

    Degrades gracefully: ``n_workers=1``, inputs below
    ``serial_threshold`` points, or a plan with a single stripe all run
    the plain serial join — with output identical to the parallel path,
    which is itself byte-identical to the serial path (see module
    docstring).

    The pool path is fault-tolerant.  Every stripe task is a pure
    function of ``(points, spec, member indices)``, so recovery is
    re-execution: a crashed or timed-out task is re-dispatched up to
    ``max_task_retries`` times (exponential backoff), then run one final
    time *in the parent process*, so a task whose pool workers keep
    dying cannot fail the join.  A broken pool
    (``BrokenProcessPool``, e.g. an OOM-killed worker) or a pool that
    cannot be created at all degrades the whole join to the serial
    traversal.  Shared-memory segments are released on every one of
    those paths.  Because the merge dedups deterministically, the
    result stays byte-identical to the serial join no matter which
    recovery route ran; ``JoinStats`` reports the route taken
    (``tasks_retried``, ``tasks_timed_out``, ``degraded_to_serial``,
    ``faults_injected``).

    Args:
        spec: the join parameters; ``spec.n_workers``,
            ``spec.stripe_overlap``, ``spec.task_timeout`` and
            ``spec.max_task_retries`` supply defaults.
        n_workers: overrides ``spec.n_workers``; ``None`` falls back to
            the spec, then to ``os.cpu_count()``.
        stripes_per_worker: planned stripes per worker (load balance).
        serial_threshold: total point count below which the serial path
            runs directly.
        use_processes: when ``False``, run the same stripe tasks
            in-process (same planning, same merge, same retry
            accounting, no pool) — used by tests to exercise the
            decomposition and recovery logic cheaply.
        task_timeout: overrides ``spec.task_timeout`` (seconds).
        max_task_retries: overrides ``spec.max_task_retries``.
        retry_backoff: base of the exponential backoff between retries,
            in seconds (``0`` disables backoff sleeps).
        fault_plan: a :class:`~repro.core.resilience.FaultPlan` to
            inject deterministic faults into this executor's runs.
    """

    def __init__(
        self,
        spec: JoinSpec,
        n_workers: Optional[int] = None,
        stripes_per_worker: int = DEFAULT_STRIPES_PER_WORKER,
        serial_threshold: int = DEFAULT_SERIAL_THRESHOLD,
        use_processes: bool = True,
        task_timeout: Optional[float] = None,
        max_task_retries: Optional[int] = None,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if n_workers is None:
            n_workers = spec.n_workers
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if int(n_workers) < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1, got {n_workers!r}"
            )
        self.spec = spec
        self.n_workers = int(n_workers)
        self.stripes_per_worker = int(stripes_per_worker)
        self.serial_threshold = int(serial_threshold)
        self.use_processes = use_processes
        self.task_timeout = (
            spec.task_timeout if task_timeout is None else float(task_timeout)
        )
        self.max_task_retries = (
            spec.max_task_retries
            if max_task_retries is None
            else int(max_task_retries)
        )
        if self.max_task_retries < 0:
            raise InvalidParameterError(
                f"max_task_retries must be >= 0, got {max_task_retries!r}"
            )
        self.retry_backoff = float(retry_backoff)
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    def self_join(
        self, points: np.ndarray, sink: Optional[PairSink] = None
    ) -> JoinResult:
        """Parallel self-join; same contract as ``epsilon_kdb_self_join``."""
        points = validate_points(points)
        with trace.span(
            "parallel-self-join", points=len(points), n_workers=self.n_workers
        ):
            if self.n_workers == 1 or len(points) < max(2, self.serial_threshold):
                trace.add_event("serial-fallback", reason="small input or 1 worker")
                return self._serial(
                    lambda: epsilon_kdb_self_join(points, self.spec, sink=sink)
                )
            started = time.perf_counter()
            with trace.span("plan") as plan_span:
                dim = int(self.spec.resolved_split_order(points.shape[1])[0])
                plan = plan_parallel_stripes(
                    points[:, dim], self.spec, self.n_workers, self.stripes_per_worker
                )
                plan_span.set_attribute("stripes", plan.n_stripes)
            if plan.n_stripes < 2:
                trace.add_event("serial-fallback", reason="single stripe")
                return self._serial(
                    lambda: epsilon_kdb_self_join(points, self.spec, sink=sink)
                )
            tasks = [
                (members,)
                for members in plan.task_indices(points[:, dim])
                if len(members) >= 2
            ]
            segments = {"a": points}
            if self.spec.cascade_enabled(points.shape[1]):
                # One (d, n) structure-of-arrays copy, shipped once and
                # shared by every stripe's cascade kernels.
                segments["a_cols"] = np.ascontiguousarray(points.T)
            try:
                outcomes, planned, resilience = self._run(
                    _self_stripe_task, tasks, segments, started
                )
            except DegradeToSerial as signal:
                return self._degraded_serial(
                    lambda: epsilon_kdb_self_join(points, self.spec, sink=sink),
                    signal,
                )
            return self._merge(
                outcomes, planned, plan, sink, canonicalize_self_pairs, resilience
            )

    def join(
        self,
        points_r: np.ndarray,
        points_s: np.ndarray,
        sink: Optional[PairSink] = None,
    ) -> JoinResult:
        """Parallel two-set join; same contract as ``epsilon_kdb_join``."""
        points_r = validate_points(points_r, "points_r")
        points_s = validate_points(points_s, "points_s")
        if points_r.shape[1] != points_s.shape[1]:
            raise InvalidParameterError(
                "both sides of a join must have the same dimensionality: "
                f"{points_r.shape[1]} != {points_s.shape[1]}"
            )
        total = len(points_r) + len(points_s)
        with trace.span(
            "parallel-two-set-join",
            points_r=len(points_r),
            points_s=len(points_s),
            n_workers=self.n_workers,
        ):
            small = (
                self.n_workers == 1
                or total < self.serial_threshold
                or len(points_r) == 0
                or len(points_s) == 0
            )
            if small:
                trace.add_event("serial-fallback", reason="small input or 1 worker")
                return self._serial(
                    lambda: epsilon_kdb_join(points_r, points_s, self.spec, sink=sink)
                )
            started = time.perf_counter()
            with trace.span("plan") as plan_span:
                dim = int(self.spec.resolved_split_order(points_r.shape[1])[0])
                values_r = points_r[:, dim]
                values_s = points_s[:, dim]
                plan = plan_parallel_stripes(
                    np.concatenate([values_r, values_s]),
                    self.spec,
                    self.n_workers,
                    self.stripes_per_worker,
                )
                plan_span.set_attribute("stripes", plan.n_stripes)
            if plan.n_stripes < 2:
                trace.add_event("serial-fallback", reason="single stripe")
                return self._serial(
                    lambda: epsilon_kdb_join(points_r, points_s, self.spec, sink=sink)
                )
            tasks = [
                (members_r, members_s)
                for members_r, members_s in zip(
                    plan.task_indices(values_r), plan.task_indices(values_s)
                )
                if len(members_r) and len(members_s)
            ]
            segments = {"r": points_r, "s": points_s}
            if self.spec.cascade_enabled(points_r.shape[1]):
                segments["r_cols"] = np.ascontiguousarray(points_r.T)
                segments["s_cols"] = np.ascontiguousarray(points_s.T)
            try:
                outcomes, planned, resilience = self._run(
                    _cross_stripe_task, tasks, segments, started
                )
            except DegradeToSerial as signal:
                return self._degraded_serial(
                    lambda: epsilon_kdb_join(
                        points_r, points_s, self.spec, sink=sink
                    ),
                    signal,
                )
            return self._merge(
                outcomes, planned, plan, sink, canonicalize_two_set_pairs, resilience
            )

    # ------------------------------------------------------------------
    def _serial(self, run) -> JoinResult:
        result = run()
        result.stats.stripes = max(result.stats.stripes, 1)
        result.stats.workers_used = 0
        return result

    def _degraded_serial(self, run, signal: DegradeToSerial) -> JoinResult:
        """Serial fallback after the pool path failed; carries its stats."""
        trace.add_event("degraded-to-serial", reason=signal.reason)
        result = self._serial(run)
        stats = result.stats
        stats.degraded_to_serial = True
        stats.tasks_retried += signal.tasks_retried
        stats.tasks_timed_out += signal.tasks_timed_out
        stats.faults_injected += signal.faults_injected
        return result

    def _run(self, task, tasks, arrays, started):
        """Execute stripe tasks with retry, deadlines, and degradation.

        Returns ``(outcomes in task order, plan seconds, resilience
        counters)``.  Raises :class:`DegradeToSerial` when no pool can
        be created or the pool breaks mid-join; shared-memory segments
        are released on every exit path, including that one.
        """
        resilience = {
            "tasks_retried": 0,
            "tasks_timed_out": 0,
            "faults_injected": 0,
        }
        if not self.use_processes:
            _WORKER_POINTS.clear()
            _WORKER_POINTS.update(arrays)
            planned = time.perf_counter() - started
            try:
                with trace.span("dispatch", mode="in-process", tasks=len(tasks)):
                    outcomes = [
                        self._attempts_in_process(task, index, args, resilience)
                        for index, args in enumerate(tasks)
                    ]
                return outcomes, planned, resilience
            finally:
                _WORKER_POINTS.clear()
        shms: Dict[str, shared_memory.SharedMemory] = {}
        try:
            with trace.span("ship") as ship_span:
                for side, array in arrays.items():
                    shms[side] = _export_shared(array)
                segments = {
                    side: (shms[side].name, arrays[side].shape) for side in arrays
                }
                ship_span.set_attribute(
                    "bytes", int(sum(a.nbytes for a in arrays.values()))
                )
            workers = min(self.n_workers, max(1, len(tasks)))
            if self.fault_plan is not None and self.fault_plan.take_pool_failure():
                resilience["faults_injected"] += 1
                raise DegradeToSerial(
                    "injected pool-creation failure", **resilience
                )
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(segments,),
                )
            except (OSError, ValueError, RuntimeError) as exc:
                raise DegradeToSerial(
                    f"process pool creation failed: {exc}", **resilience
                ) from exc
            try:
                with pool:
                    planned = time.perf_counter() - started
                    with trace.span(
                        "dispatch", tasks=len(tasks), workers=workers
                    ):
                        futures = {
                            index: self._dispatch(
                                pool, task, index, 0, args, resilience
                            )
                            for index, args in enumerate(tasks)
                        }
                        outcomes = [
                            self._await_with_retries(
                                pool, task, index, args, futures[index],
                                arrays, resilience,
                            )
                            for index, args in enumerate(tasks)
                        ]
                return outcomes, planned, resilience
            except BrokenProcessPool as exc:
                raise DegradeToSerial(
                    f"process pool broke mid-join: {exc}", **resilience
                ) from exc
        finally:
            for shm in shms.values():
                _release_shared(shm)

    def _dispatch(self, pool, task, index, attempt, args, resilience):
        """Submit one attempt; returns ``(future, dispatch timestamp)``."""
        plan = self.fault_plan
        if plan is not None:
            resilience["faults_injected"] += plan.count_task_faults(index, attempt)
        future = pool.submit(
            _guarded_task,
            task,
            plan,
            index,
            attempt,
            self.spec,
            *args,
            traced=trace.is_enabled(),
        )
        return future, time.perf_counter()

    def _await_with_retries(
        self, pool, task, index, args, future, arrays, resilience
    ):
        """Wait on one stripe task, re-dispatching failed/timed-out attempts.

        Attempts ``0..max_task_retries`` run in the pool under the
        ``task_timeout`` deadline; the attempt after that runs in the
        parent process with no deadline, so a task whose workers keep
        failing still completes (or surfaces its real error).
        ``BrokenProcessPool`` propagates — the caller degrades the whole
        join to serial.

        Tracing: a successful attempt ships its worker-side spans back
        with the result, which are stitched into the ambient trace here;
        a failed attempt's spans die with the worker, so the parent
        records a ``stripe-task`` span for it from the dispatch
        timestamp (submission time, so it includes queueing).
        """
        future, dispatched_at = future
        attempt = 0
        while True:
            try:
                outcome, spans = future.result(timeout=self.task_timeout)
            except BrokenProcessPool:
                raise
            except FuturesTimeoutError:
                resilience["tasks_timed_out"] += 1
                trace.record_span(
                    "stripe-task",
                    dispatched_at,
                    time.perf_counter(),
                    task=index,
                    attempt=attempt,
                    outcome="timed-out",
                )
                future.cancel()
            except (WorkerCrashError, OSError) as exc:
                trace.record_span(
                    "stripe-task",
                    dispatched_at,
                    time.perf_counter(),
                    task=index,
                    attempt=attempt,
                    outcome=f"crashed:{type(exc).__name__}",
                )
            else:
                if spans:
                    trace.current_tracer().adopt(spans)
                return outcome
            attempt += 1
            resilience["tasks_retried"] += 1
            trace.add_event("task-retry", task=index, attempt=attempt)
            if attempt > self.max_task_retries:
                return self._final_attempt_in_parent(
                    task, index, attempt, args, arrays, resilience
                )
            if self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            future, dispatched_at = self._dispatch(
                pool, task, index, attempt, args, resilience
            )

    def _final_attempt_in_parent(
        self, task, index, attempt, args, arrays, resilience
    ):
        """Last-chance execution in the parent: no pool, no deadline."""
        plan = self.fault_plan
        if plan is not None:
            resilience["faults_injected"] += plan.count_task_faults(index, attempt)
        preserved = dict(_WORKER_POINTS)
        _WORKER_POINTS.clear()
        _WORKER_POINTS.update(arrays)
        try:
            outcome, _ = _guarded_task(
                task, plan, index, attempt, self.spec, *args, in_process=True
            )
            return outcome
        finally:
            _WORKER_POINTS.clear()
            _WORKER_POINTS.update(preserved)

    def _attempts_in_process(self, task, index, args, resilience):
        """Poolless counterpart of ``_await_with_retries``.

        Deadlines cannot preempt an in-process task, so they are
        emulated post-hoc: an attempt whose wall time exceeded
        ``task_timeout`` is discarded and retried, with the same
        accounting as the pool path.  The final attempt (the in-parent
        one on the pool path) has no deadline.
        """
        plan = self.fault_plan
        attempt = 0
        while True:
            if plan is not None:
                resilience["faults_injected"] += plan.count_task_faults(
                    index, attempt
                )
            final = attempt > self.max_task_retries
            try:
                began = time.perf_counter()
                outcome, _ = _guarded_task(
                    task, plan, index, attempt, self.spec, *args, in_process=True
                )
            except DegradeToSerial as signal:
                raise DegradeToSerial(signal.reason, **resilience) from None
            except (WorkerCrashError, OSError):
                if final:
                    raise
            else:
                elapsed = time.perf_counter() - began
                timed_out = (
                    not final
                    and self.task_timeout is not None
                    and elapsed > self.task_timeout
                )
                if not timed_out:
                    return outcome
                resilience["tasks_timed_out"] += 1
            attempt += 1
            resilience["tasks_retried"] += 1
            trace.add_event("task-retry", task=index, attempt=attempt)
            if self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _merge(
        self, outcomes, planned, plan, sink, canonicalize, resilience=None
    ) -> JoinResult:
        result = JoinResult()
        stats = result.stats
        with trace.span("merge", tasks=len(outcomes)) as merge_span:
            blocks: List[np.ndarray] = []
            for pairs, task_stats, seconds in outcomes:
                stats.merge(task_stats)
                stats.worker_seconds.append(seconds)
                if len(pairs):
                    blocks.append(pairs)
            if blocks:
                raw = np.vstack(blocks)
            else:
                raw = np.empty((0, 2), dtype=np.int64)
            canonical = canonicalize(raw[:, 0], raw[:, 1])
            stats.stripes = plan.n_stripes
            stats.workers_used = min(self.n_workers, max(1, len(outcomes)))
            stats.duplicate_pairs_merged = len(raw) - len(canonical)
            merge_span.set_attribute("pairs", len(canonical))
            merge_span.set_attribute(
                "duplicate_pairs_merged", stats.duplicate_pairs_merged
            )
            if resilience is not None:
                stats.tasks_retried += resilience["tasks_retried"]
                stats.tasks_timed_out += resilience["tasks_timed_out"]
                stats.faults_injected += resilience["faults_injected"]
            if sink is None:
                result.pairs = canonical
                stats.pairs_emitted = len(canonical)
            else:
                sink.emit(canonical[:, 0], canonical[:, 1])
                stats.pairs_emitted = sink.count
        result.build_seconds = planned
        result.join_seconds = merge_span.duration + max(
            stats.worker_seconds, default=0.0
        )
        return result


def parallel_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    n_workers: Optional[int] = None,
    **kwargs,
) -> JoinResult:
    """Function-style entry point mirroring ``epsilon_kdb_self_join``."""
    executor = ParallelJoinExecutor(spec, n_workers=n_workers, **kwargs)
    return executor.self_join(points, sink=sink)


def parallel_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    n_workers: Optional[int] = None,
    **kwargs,
) -> JoinResult:
    """Function-style entry point mirroring ``epsilon_kdb_join``."""
    executor = ParallelJoinExecutor(spec, n_workers=n_workers, **kwargs)
    return executor.join(points_r, points_s, sink=sink)
