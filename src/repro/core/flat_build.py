"""Flat vectorized epsilon-kdB build: radix cell-coding + CSR layout.

The pointer build (:mod:`repro.core.epsilon_kdb`) recurses node by node,
argsorting each node's cell digits separately and allocating one Python
object per node.  This module builds the *same* partition in a handful
of whole-array operations, doing work proportional to the tree's
*actual* depth rather than to the number of nodes:

1. **radix-sort** — the points are sorted once by the leaf sweep
   dimension, as a two-pass 16-bit LSD radix argsort over a monotone
   32-bit quantization of the values (:func:`_value_order`; NumPy's
   stable sort is several times faster on 16-bit keys than on 64-bit
   ones).  Every later sort is stable and permutes rows only within
   their node, so this value order survives to the bottom: leaves come
   out sorted by the sweep dimension with ties in input order — exactly
   the order ``EpsilonKdbTree.finalize`` produces — with no final
   within-leaf sort.
2. **leaf-partition** — one pass per tree level, touching only rows
   whose node is still above ``leaf_size``: compute that level's cell
   digit ``floor(x[:, dim] / eps)``, stable-sort the active rows by a
   packed ``(node id, digit)`` key (a 16-bit key whenever it fits),
   mark the positions where a new child node begins, and retire every
   node that now fits ``leaf_size``.  The loop stops as soon as no
   oversized node remains, so shallow trees never pay for deep levels.
3. **csr-layout** — nodes become rows of flat ``int64`` arrays (depth,
   ``[start, stop)`` row range, cell digit, leaf flag, first child,
   child count), depth-major, children contiguous and digit-ordered;
   the per-level digits are gathered into a ``(depth, n)`` matrix over
   the final permutation so the traversal reads cells by code
   arithmetic.  Leaves are zero-copy contiguous slices.

The resulting :class:`FlatEpsilonKdbTree` partitions points into exactly
the same leaves as :meth:`EpsilonKdbTree.build` for the same spec and
grid (property-tested in ``tests/test_flat_build.py``), and the join
traversal over it emits the identical pair set.

:class:`TreeCache` adds cross-epsilon structure reuse: a tree built at a
coarse epsilon answers any finer join (its cells are at least as wide as
required), so an epsilon sweep over one dataset pays for one sort.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backends import LeafBatchQueue
from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import Grid, TreeDescription
from repro.core.kernels import KernelSource, build_kernel_context
from repro.errors import InvalidParameterError
from repro.obs import trace

__all__ = ["FlatEpsilonKdbTree", "TreeCache"]

# Guard for packing (node id, digit) into one int64 radix key; above this
# the build falls back to a two-key lexsort instead of overflowing.
_PACKED_KEY_LIMIT = np.int64(2) ** 62


def _value_order(values: np.ndarray) -> np.ndarray:
    """Stable argsort of finite float64 values via 16-bit radix passes.

    NumPy's stable argsort is several times faster on 16-bit keys than
    on any 64-bit dtype, so the sort runs as a two-pass LSD radix over a
    monotone 32-bit quantization of the values: stable-sort by the low
    16 bits, then by the high 16 bits.  Distinct values that collide in
    the same 32-bit bucket (a handful per hundred thousand rows) are
    repaired afterwards with an exact within-bucket sort, so the result
    matches ``np.argsort(values, kind="stable")`` bit for bit.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    vmin = values.min()
    span = values.max() - vmin
    if span <= 0:  # all values equal: stable order is input order
        return np.arange(n, dtype=np.int64)
    # Monotone nondecreasing in the value, and span * scale cannot
    # round above uint32 range (|rounding| < 1 ulp per operation).
    scale = 4294967295.0 / span
    quant = ((values - vmin) * scale).astype(np.uint32)
    low = np.argsort(quant.astype(np.uint16), kind="stable")
    high = (quant >> np.uint32(16))[low].astype(np.uint16)
    order = low[np.argsort(high, kind="stable")]
    bucket = quant[order]
    ties = np.flatnonzero(bucket[1:] == bucket[:-1])
    if len(ties):
        # Consecutive tie positions form runs of equal buckets; rows in
        # a run are in input order (stability), so one exact stable sort
        # per run restores the true (value, input index) order.
        run_break = np.flatnonzero(np.diff(ties) > 1)
        starts = ties[np.concatenate([[0], run_break + 1])]
        stops = ties[np.concatenate([run_break, [len(ties) - 1]])] + 2
        for start, stop in zip(starts, stops):
            rows = order[start:stop]
            order[start:stop] = rows[np.argsort(values[rows], kind="stable")]
    return order


class FlatEpsilonKdbTree:
    """An epsilon-kdB tree as flat arrays over a permuted point array.

    Attributes:
        points_flat: ``(n, d)`` C-contiguous copy of the input points in
            leaf-contiguous order; row ``r`` is input row ``perm[r]``.
        perm: ``(n,)`` int64 permutation mapping flat rows back to the
            caller's point indices.
        digits: ``(levels, n)`` int64 cell digits of the flat rows, one
            row per usable split level (``level_dims`` names the split
            dimension of each level).
        sort_values: ``(n,)`` contiguous sort-dimension coordinates of
            the flat rows; ascending within every leaf.
        node_depth / node_start / node_stop / node_digit / node_leaf /
        node_first_child / node_n_children: the CSR node table, one
            entry per node, depth-major with the root at index 0.
            Children of a node are the contiguous id range
            ``[first_child, first_child + n_children)`` in ascending
            digit order; leaves have ``n_children == 0``.
        build_sort_seconds: wall-clock spent in the stable radix
            argsorts (the dominant build cost; surfaced in
            ``JoinStats``).
    """

    def __init__(
        self,
        points: np.ndarray,
        spec: JoinSpec,
        grid: Grid,
        perm: np.ndarray,
        digits: np.ndarray,
        node_table: Dict[str, np.ndarray],
        build_sort_seconds: float = 0.0,
        points_flat: Optional[np.ndarray] = None,
    ):
        self.points = points
        self.spec = spec
        self.grid = grid
        self.split_order = spec.resolved_split_order(points.shape[1])
        self.sort_dim = spec.resolved_sort_dim(points.shape[1])
        self.level_dims = np.array(
            [dim for dim in self.split_order if grid.n_cells[dim] > 1],
            dtype=np.int64,
        )
        self.perm = perm
        self.points_flat = (
            np.ascontiguousarray(points[perm]) if points_flat is None else points_flat
        )
        self.digits = digits
        self.sort_values = np.ascontiguousarray(self.points_flat[:, self.sort_dim])
        self.node_depth = node_table["depth"]
        self.node_start = node_table["start"]
        self.node_stop = node_table["stop"]
        self.node_digit = node_table["digit"]
        self.node_leaf = node_table["leaf"]
        self.node_first_child = node_table["first_child"]
        self.node_n_children = node_table["n_children"]
        self.build_sort_seconds = float(build_sort_seconds)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        points: np.ndarray,
        spec: JoinSpec,
        grid: Optional[Grid] = None,
    ) -> "FlatEpsilonKdbTree":
        """Vectorized bulk build; same partition as the pointer build."""
        points = validate_points(points)
        if grid is None:
            grid = Grid.fit(points, spec.band_width)
        else:
            grid.validate(points)
        n = len(points)
        split_order = spec.resolved_split_order(points.shape[1])
        level_dims = [int(dim) for dim in split_order if grid.n_cells[dim] > 1]
        levels = len(level_dims)

        sort_seconds = 0.0
        with trace.span("radix-sort", points=n):
            # One stable sort by the leaf sweep dimension.  All later
            # sorts are stable and permute rows only within their node,
            # so this order survives to the leaves: ascending value,
            # ties in input order — the pointer build's finalized order.
            started = time.perf_counter()
            order = _value_order(
                np.ascontiguousarray(
                    points[:, spec.resolved_sort_dim(points.shape[1])]
                )
            )
            sort_seconds += time.perf_counter() - started

        # Per-position partition labels over the *final* permutation
        # (node starts never move once created: every sort below is a
        # permutation within existing nodes).  ``change_depth[p]`` is
        # the shallowest level at which the row at position p diverges
        # from the row at p-1 (0 for position 0, ``levels + 1`` when it
        # never does); ``leaf_depth[p]`` is the depth at which the
        # pointer build stops splitting that row's node.
        change_depth = np.full(n, levels + 1, dtype=np.int64)
        leaf_depth = np.zeros(n, dtype=np.int64)
        boundary = np.zeros(n, dtype=bool)
        if n:
            change_depth[0] = 0
            boundary[0] = True
        codes_rows = []
        with trace.span("leaf-partition", points=n, levels=levels):
            # Positions of rows whose node is still above leaf_size;
            # everything else has settled and is never touched again.
            active = (
                np.arange(n, dtype=np.int64)
                if levels and n > spec.leaf_size
                else np.empty(0, dtype=np.int64)
            )
            depth = 0
            while len(active) and depth < levels:
                dim = level_dims[depth]
                # Full-column digits: settled rows need this level's
                # digit too when a deeper neighbor probes them.
                codes_full = grid.cell_of(points[:, dim], dim)
                codes_rows.append(codes_full)
                suborder = order[active]
                digit = codes_full[suborder]
                starts_here = boundary[active]
                node = np.cumsum(starts_here) - 1
                n_cells = np.int64(grid.n_cells[dim])
                n_keys = (node[-1] + 1) * n_cells
                started = time.perf_counter()
                if n_keys <= np.int64(1) << 16:
                    # (node, digit) fits a 16-bit key: NumPy's stable
                    # argsort is ~10x faster on uint16 than on int64.
                    key = (node * n_cells + digit).astype(np.uint16)
                    refine = np.argsort(key, kind="stable")
                elif n_keys < _PACKED_KEY_LIMIT:
                    refine = np.argsort(node * n_cells + digit, kind="stable")
                else:  # pragma: no cover - needs astronomically fine grids
                    refine = np.lexsort((digit, node))
                sort_seconds += time.perf_counter() - started
                suborder = suborder[refine]
                order[active] = suborder
                digit = digit[refine]
                diverged = np.empty(len(active), dtype=bool)
                diverged[0] = True
                diverged[1:] = digit[1:] != digit[:-1]
                fresh = diverged & ~starts_here
                if fresh.any():
                    opened = active[fresh]
                    boundary[opened] = True
                    change_depth[opened] = depth + 1
                starts_here |= diverged
                child_start = np.flatnonzero(starts_here)
                child_sizes = np.diff(np.append(child_start, len(active)))
                depth += 1
                fits = child_sizes <= spec.leaf_size
                if fits.any():
                    settled = np.repeat(fits, child_sizes)
                    leaf_depth[active[settled]] = depth
                    active = active[~settled]
            if len(active):
                # Splittable dimensions exhausted: oversized leaves.
                leaf_depth[active] = levels

        with trace.span("csr-layout"):
            perm = order
            points_flat = np.take(points, perm, axis=0)
            digits = np.empty((len(codes_rows), n), dtype=np.int64)
            for pos, codes_full in enumerate(codes_rows):
                digits[pos] = codes_full[perm]
            node_table = cls._node_table(digits, change_depth, leaf_depth, n)

        return cls(
            points,
            spec,
            grid,
            perm,
            digits,
            node_table,
            build_sort_seconds=sort_seconds,
            points_flat=points_flat,
        )

    def ensure_digit_levels(self, count: int) -> None:
        """Extend ``digits`` to at least ``count`` rows.

        The build computes digit rows only down to this tree's own
        depth.  A two-set join reads a leaf's digits at the *other*
        tree's internal depths, which may be deeper — append the missing
        levels (plain ``cell_of`` over the already-permuted rows; no
        sorting involved).
        """
        count = min(int(count), len(self.level_dims))
        have = len(self.digits)
        if count <= have:
            return
        extra = np.empty((count - have, len(self.perm)), dtype=np.int64)
        for pos in range(have, count):
            dim = int(self.level_dims[pos])
            extra[pos - have] = self.grid.cell_of(self.points_flat[:, dim], dim)
        self.digits = np.vstack([self.digits, extra])

    @staticmethod
    def _node_table(
        codes_sorted: np.ndarray,
        change_depth: np.ndarray,
        leaf_depth: np.ndarray,
        n: int,
    ) -> Dict[str, np.ndarray]:
        """Depth-major CSR node arrays from the partition labels."""
        max_depth = int(leaf_depth.max()) if n else 0
        starts_by_depth = [np.zeros(1, dtype=np.int64)]
        stops_by_depth = [np.full(1, n, dtype=np.int64)]
        digit_by_depth = [np.zeros(1, dtype=np.int64)]
        leaf_by_depth = [np.array([max_depth == 0])]
        for depth in range(1, max_depth + 1):
            idx = np.flatnonzero(leaf_depth >= depth)
            is_start = np.empty(len(idx), dtype=bool)
            is_start[0] = True
            is_start[1:] = (idx[1:] != idx[:-1] + 1) | (
                change_depth[idx[1:]] <= depth
            )
            start_pos = np.flatnonzero(is_start)
            starts = idx[start_pos]
            ends_pos = np.append(start_pos[1:] - 1, len(idx) - 1)
            stops = idx[ends_pos] + 1
            starts_by_depth.append(starts)
            stops_by_depth.append(stops)
            digit_by_depth.append(codes_sorted[depth - 1, starts])
            leaf_by_depth.append(leaf_depth[starts] == depth)
        counts = [len(starts) for starts in starts_by_depth]
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        total = int(offsets[-1])
        first_child = np.full(total, -1, dtype=np.int64)
        n_children = np.zeros(total, dtype=np.int64)
        for depth in range(len(counts) - 1):
            child_starts = starts_by_depth[depth + 1]
            lo = np.searchsorted(child_starts, starts_by_depth[depth])
            hi = np.searchsorted(child_starts, stops_by_depth[depth])
            row = slice(int(offsets[depth]), int(offsets[depth]) + counts[depth])
            n_children[row] = hi - lo
            linked = offsets[depth + 1] + lo
            linked[hi == lo] = -1
            first_child[row] = linked
        return {
            "depth": np.concatenate(
                [
                    np.full(counts[depth], depth, dtype=np.int64)
                    for depth in range(len(counts))
                ]
            ),
            "start": np.concatenate(starts_by_depth),
            "stop": np.concatenate(stops_by_depth),
            "digit": np.concatenate(digit_by_depth),
            "leaf": np.concatenate(leaf_by_depth),
            "first_child": first_child,
            "n_children": n_children,
        }

    # ------------------------------------------------------------------
    # shipping (shared-memory transport for the parallel executor)
    # ------------------------------------------------------------------
    def packed_nodes(self) -> np.ndarray:
        """Node table as one ``(7, n_nodes)`` int64 array for shipping."""
        return np.vstack(
            [
                self.node_depth,
                self.node_start,
                self.node_stop,
                self.node_digit,
                self.node_leaf.astype(np.int64),
                self.node_first_child,
                self.node_n_children,
            ]
        )

    @classmethod
    def from_arrays(
        cls,
        points_flat: np.ndarray,
        perm: np.ndarray,
        digits: np.ndarray,
        packed_nodes: np.ndarray,
        spec: JoinSpec,
        grid: Grid,
    ) -> "FlatEpsilonKdbTree":
        """Reconstruct a tree from shipped arrays (no copies, no sort)."""
        node_table = {
            "depth": packed_nodes[0],
            "start": packed_nodes[1],
            "stop": packed_nodes[2],
            "digit": packed_nodes[3],
            "leaf": packed_nodes[4] != 0,
            "first_child": packed_nodes[5],
            "n_children": packed_nodes[6],
        }
        return cls(
            points_flat,
            spec,
            grid,
            perm,
            digits,
            node_table,
            points_flat=points_flat,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(
        self, point: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        """Indices of points within ``eps`` of ``point`` (sorted).

        Same contract as :meth:`EpsilonKdbTree.range_query`; implemented
        as a batch of one so single and coalesced queries share one code
        path.
        """
        point = np.asarray(point, dtype=np.float64)
        dims = self.points_flat.shape[1] if self.points_flat.ndim == 2 else 0
        if point.shape != (dims,):
            raise InvalidParameterError(
                f"query point must have shape ({dims},), got {point.shape}"
            )
        return self.batch_range_query(point[np.newaxis, :], eps=eps)[0]

    def batch_range_query(
        self, queries: np.ndarray, eps: Optional[float] = None
    ) -> List[np.ndarray]:
        """Answer ``Q`` range queries in one leaf-directed pass.

        All queries descend the tree level by level as one frontier:
        at each depth the surviving (query, node) pairs are grouped by
        node, each group's adjacent children are found with two
        vectorized ``searchsorted`` calls over the node's digit-ordered
        child range, and leaf candidates for every query hitting a leaf
        are band-filtered and distance-checked in one batch.  The result
        is one ascending int64 index array per query, **byte-identical**
        to ``Q`` sequential :meth:`EpsilonKdbTree.range_query` calls
        over the equivalent pointer tree.

        As with the pointer tree, ``eps`` defaults to the build epsilon
        and may not exceed it (larger radii would need pairs from
        non-adjacent cells).
        """
        if eps is None:
            eps = self.spec.epsilon
        eps = float(eps)
        if eps > self.spec.epsilon:
            raise InvalidParameterError(
                f"query radius {eps} exceeds the build epsilon "
                f"{self.spec.epsilon}; rebuild the tree for larger radii"
            )
        queries = validate_points(queries, "queries")
        dims = self.points_flat.shape[1] if self.points_flat.ndim == 2 else 0
        if queries.shape[1] != dims:
            raise InvalidParameterError(
                f"query points must have {dims} dimensions, "
                f"got {queries.shape[1]}"
            )
        n_q = len(queries)
        if n_q == 0:
            return []
        metric = self.spec.metric
        band = metric.coordinate_bound(eps)
        q_sort = np.ascontiguousarray(queries[:, self.sort_dim])
        hit_queries: List[np.ndarray] = []
        hit_indices: List[np.ndarray] = []
        # Leaf candidates route through the same batched work-queue and
        # filter-cascade backend as the join traversals: queries form the
        # ``a`` side of a cross-context over the tree's cached column
        # store, and every (query, row) candidate is filtered one tile at
        # a time.  The final global sort below makes the per-query result
        # order independent of how candidates were batched.
        queue = None
        if self.spec.cascade_enabled(queries.shape[1]):
            query_spec = (
                self.spec
                if eps == self.spec.epsilon
                else replace(self.spec, epsilon=eps, persist_path=None)
            )
            kernel = build_kernel_context(
                query_spec,
                queries,
                points_b=self.points_flat,
                grid=self.grid,
                split_dims=self.split_dims(),
                sort_dim=self.sort_dim,
                source=KernelSource(
                    cols_a=np.ascontiguousarray(queries.T),
                    cols_b=self._point_cols(),
                ),
            )
            if kernel is not None:

                def _emit_hits(left: np.ndarray, right: np.ndarray) -> None:
                    if len(left):
                        hit_queries.append(left)
                        hit_indices.append(self.perm[right])

                queue = LeafBatchQueue(kernel.within_rows, _emit_hits)
        # Frontier of (query, node) pairs; every surviving node at
        # iteration k has depth k, so one cell row per depth suffices.
        frontier_q = np.arange(n_q, dtype=np.int64)
        frontier_node = np.zeros(n_q, dtype=np.int64)
        depth = 0
        while len(frontier_node):
            at_leaf = self.node_leaf[frontier_node]
            if at_leaf.any():
                self._leaf_range_hits(
                    queries, q_sort,
                    frontier_q[at_leaf], frontier_node[at_leaf],
                    band, eps, hit_queries, hit_indices, queue,
                )
            frontier_q = frontier_q[~at_leaf]
            frontier_node = frontier_node[~at_leaf]
            if not len(frontier_node):
                break
            dim = int(self.level_dims[depth])
            cells = self.grid.cell_of(queries[frontier_q, dim], dim)
            order = np.argsort(frontier_node, kind="stable")
            frontier_q = frontier_q[order]
            frontier_node = frontier_node[order]
            cells = cells[order]
            uniq, starts = np.unique(frontier_node, return_index=True)
            stops = np.append(starts[1:], len(frontier_node))
            next_q: List[np.ndarray] = []
            next_node: List[np.ndarray] = []
            for node, s0, s1 in zip(uniq, starts, stops):
                first = int(self.node_first_child[node])
                count = int(self.node_n_children[node])
                child_digits = self.node_digit[first:first + count]
                group_cells = cells[s0:s1]
                lo = np.searchsorted(child_digits, group_cells - 1, side="left")
                hi = np.searchsorted(child_digits, group_cells + 1, side="right")
                widths = hi - lo
                total = int(widths.sum())
                if not total:
                    continue
                next_q.append(np.repeat(frontier_q[s0:s1], widths))
                bases = np.repeat(first + lo, widths)
                offsets = np.arange(total, dtype=np.int64) - np.repeat(
                    np.cumsum(widths) - widths, widths
                )
                next_node.append(bases + offsets)
            if next_q:
                frontier_q = np.concatenate(next_q)
                frontier_node = np.concatenate(next_node)
            else:
                frontier_q = frontier_q[:0]
                frontier_node = frontier_node[:0]
            depth += 1
        if queue is not None:
            queue.flush()
        if not hit_queries:
            return [np.empty(0, dtype=np.int64) for _ in range(n_q)]
        all_q = np.concatenate(hit_queries)
        all_idx = np.concatenate(hit_indices)
        # One global (query, index) sort replaces Q per-query sorts; each
        # point lives in exactly one leaf and each leaf is visited at
        # most once per query, so no dedup is needed.
        order = np.lexsort((all_idx, all_q))
        all_q = all_q[order]
        all_idx = all_idx[order]
        bounds = np.searchsorted(all_q, np.arange(n_q + 1, dtype=np.int64))
        return [
            np.ascontiguousarray(all_idx[bounds[i]:bounds[i + 1]])
            for i in range(n_q)
        ]

    def _point_cols(self) -> np.ndarray:
        """Cached ``(d, n)`` column store over the tree's flat points.

        Built on first kernel-routed query and reused for the tree's
        lifetime, so repeated :meth:`batch_range_query` calls (the
        serving layer's coalesced probes) pay the transpose copy once.
        """
        cols = getattr(self, "_point_cols_cache", None)
        if cols is None:
            cols = np.ascontiguousarray(self.points_flat.T)
            self._point_cols_cache = cols
        return cols

    def _leaf_range_hits(
        self,
        queries: np.ndarray,
        q_sort: np.ndarray,
        leaf_q: np.ndarray,
        leaf_node: np.ndarray,
        band: float,
        eps: float,
        hit_queries: List[np.ndarray],
        hit_indices: List[np.ndarray],
        queue: Optional[LeafBatchQueue] = None,
    ) -> None:
        """Band-filter and distance-check every (query, leaf) pair.

        With a work-queue, candidates are enqueued for tiled cascade
        filtering (the queue's emit callback appends the hits) instead
        of being distance-checked per leaf group here.
        """
        metric = self.spec.metric
        order = np.argsort(leaf_node, kind="stable")
        leaf_q = leaf_q[order]
        leaf_node = leaf_node[order]
        uniq, starts = np.unique(leaf_node, return_index=True)
        stops = np.append(starts[1:], len(leaf_node))
        for node, s0, s1 in zip(uniq, starts, stops):
            start = int(self.node_start[node])
            stop = int(self.node_stop[node])
            if stop <= start:
                continue
            sort_values = self.sort_values[start:stop]
            group_q = leaf_q[s0:s1]
            centers = q_sort[group_q]
            left = np.searchsorted(sort_values, centers - band, side="left")
            right = np.searchsorted(sort_values, centers + band, side="right")
            widths = right - left
            total = int(widths.sum())
            if not total:
                continue
            cand_q = np.repeat(group_q, widths)
            bases = np.repeat(start + left, widths)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(widths) - widths, widths
            )
            rows = bases + offsets
            if queue is not None:
                queue.add(cand_q, rows)
                continue
            diffs = np.abs(self.points_flat[rows] - queries[cand_q])
            keep = metric.within_gap(diffs, eps)
            if keep.any():
                hit_queries.append(cand_q[keep])
                hit_indices.append(self.perm[rows[keep]])

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(len(self.node_depth))

    @property
    def n_leaves(self) -> int:
        return int(self.node_leaf.sum())

    def leaf_slices(self):
        """Yield every leaf's ``(start, stop)`` flat-row range."""
        for node in np.flatnonzero(self.node_leaf):
            yield int(self.node_start[node]), int(self.node_stop[node])

    def split_dims(self) -> tuple:
        """Dimensions actually split by at least one internal node, sorted."""
        internal = ~self.node_leaf
        if not internal.any():
            return ()
        depths = np.unique(self.node_depth[internal])
        return tuple(sorted(int(self.level_dims[d]) for d in depths))

    def describe(self) -> TreeDescription:
        """Structural summary; matches the pointer build's exactly."""
        leaf_sizes = (self.node_stop - self.node_start)[self.node_leaf]
        return TreeDescription(
            points=int(len(self.perm)),
            dims=int(self.points_flat.shape[1]) if self.points_flat.ndim == 2 else 0,
            internal_nodes=int((~self.node_leaf).sum()),
            leaves=self.n_leaves,
            max_depth=int(self.node_depth.max()) if self.n_nodes else 0,
            max_leaf_size=int(leaf_sizes.max()) if len(leaf_sizes) else 0,
            split_dims_used=len(self.split_dims()),
        )

    def __len__(self) -> int:
        return int(len(self.perm))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlatEpsilonKdbTree points={len(self.perm)} nodes={self.n_nodes} "
            f"leaves={self.n_leaves}>"
        )


def _fingerprint(points: np.ndarray) -> str:
    """Content hash of a point array (shape-qualified)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(points.shape).encode())
    digest.update(np.ascontiguousarray(points).tobytes())
    return digest.hexdigest()


class TreeCache:
    """LRU cache of flat trees for cross-epsilon structure reuse.

    Keyed on (data fingerprint, metric, leaf threshold, split order,
    sort dimension) — everything that shapes the structure *except*
    epsilon.  A cached tree built at a coarse epsilon is reused verbatim
    for any finer join, because every cached cell is at least as wide as
    the finer join requires (the same rule that lets a pre-built tree be
    passed to ``epsilon_kdb_self_join``).  A request coarser than the
    cached tree rebuilds and replaces the entry.
    """

    def __init__(self, max_entries: int = 4):
        if int(max_entries) < 1:
            raise InvalidParameterError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, FlatEpsilonKdbTree]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, points: np.ndarray, spec: JoinSpec) -> tuple:
        dims = points.shape[1]
        return (
            _fingerprint(points),
            spec.metric.name,
            spec.leaf_size,
            tuple(int(d) for d in spec.resolved_split_order(dims)),
            spec.resolved_sort_dim(dims),
        )

    def get_or_build(
        self, points: np.ndarray, spec: JoinSpec
    ) -> Tuple[FlatEpsilonKdbTree, bool]:
        """Return ``(tree, was_hit)`` for this (points, spec) request."""
        points = validate_points(points)
        key = self._key(points, spec)
        cached = self._entries.get(key)
        if (
            cached is not None
            and spec.epsilon <= cached.spec.epsilon
            and spec.band_width <= cached.grid.eps
        ):
            self._entries.move_to_end(key)
            self.hits += 1
            return cached, True
        self.misses += 1
        tree = FlatEpsilonKdbTree.build(points, spec)
        self._entries[key] = tree
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return tree, False
