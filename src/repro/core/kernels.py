"""Filter-cascade distance kernels for the leaf-join hot path.

The paper's cost model (and experiments E2/E5) show that once the
epsilon-kdB tree has pruned by adjacency, the join is dominated by full
``d``-dimensional distance computations over band-sweep candidates.  The
monolithic kernel (:meth:`repro.metrics.Metric.within_rows`) gathers all
``d`` coordinates of every candidate pair and reduces them in one pass;
at high ``d`` almost all of that work is wasted on pairs that a single
coordinate already disqualifies.

This module replaces that check with a three-stage cascade, evaluated
over a structure-of-arrays (column-major) copy of the points so each
stage touches only the dimensions it needs:

1. **Pre-filter stages** — one to three cheap per-dimension
   ``|a - b| <= coordinate_bound(eps)`` masks on the most selective
   dimensions (widest spread, preferring unsplit non-sort dimensions,
   which adjacency and the band sweep have not constrained yet),
   compacting the candidate arrays between stages.
2. **Blocked short-circuit reduction** — the metric's distance key is
   accumulated over dimension blocks in selectivity order; rows whose
   partial key already exceeds ``key(eps)`` (plus a conservative
   rounding slack) are dropped before the next block is gathered.
3. **Exact final check** — survivors are re-checked with the *same*
   computation the monolithic kernel performs (natural dimension order,
   C-contiguous rows), so the emitted mask is bit-identical to
   ``cascade="off"``: the pre-filters and the slacked short-circuit only
   ever drop rows whose computed distance key is strictly above the
   threshold.

One :class:`KernelContext` is built per join (a single ``(d, n)``
transpose copy plus an ``O(d log d)`` ordering), reused across every
leaf, and — via :class:`KernelSource` — shared zero-copy with the
parallel executor's worker processes through the existing shared-memory
path in :mod:`repro.core.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.backends import (
    KernelBackend,
    gather_dims,
    gather_rows,
    resolve_kernel_backend,
)
from repro.core.config import JoinSpec
from repro.core.result import JoinStats
from repro.errors import ConfigError, InvalidParameterError
from repro.obs import trace

#: Dimensions accumulated per short-circuit reduction block.
DEFAULT_BLOCK_DIMS = 8

#: Rows processed per chunk, mirroring ``repro.metrics.lp._ROW_CHUNK``:
#: candidate lists of any length never gather more than this many rows
#: per cascade stage.
_ROW_CHUNK = 262_144

#: Below this many candidate rows the cascade's per-stage staging costs
#: more than it saves (measured crossover ~512 rows for d in 8..32), so
#: the exact final check runs directly.  Dense leaves still hand the
#: cascade candidate lists far above this.
MIN_CASCADE_ROWS = 512

#: Relative slack applied to pruning thresholds (never to the final
#: check).  Partial keys are accumulated in a different association
#: order than the monolithic kernel's reduction, so they can exceed the
#: monolithic value by a few ulps; pruning only above
#: ``threshold * (1 + slack)`` guarantees every row the monolithic
#: kernel would accept reaches the exact final check.  The floor of
#: 1e-9 is ~a million float64 ulps — far above any realistic
#: accumulation error, while still tight enough to prune essentially
#: everything a strict comparison would.
_MIN_RELATIVE_SLACK = 1e-9


def _relative_slack(dtype: np.dtype, dims: int) -> float:
    """Dtype-aware pruning slack: generous for float32, 1e-9 for float64."""
    if np.issubdtype(dtype, np.floating):
        return max(_MIN_RELATIVE_SLACK, float(np.finfo(dtype).eps) * 8 * dims)
    return _MIN_RELATIVE_SLACK


@dataclass(frozen=True)
class KernelPlan:
    """Picklable description of one join's cascade configuration.

    ``order`` lists every dimension in selectivity order (pre-filter
    candidates first, the band-sweep sort dimension last); the first
    ``n_filters`` entries run as single-dimension pre-filter stages and
    the rest feed the blocked reduction.
    """

    order: Tuple[int, ...]
    n_filters: int
    block_dims: int = DEFAULT_BLOCK_DIMS

    @property
    def n_stages(self) -> int:
        """Pre-filter stages plus the one reduction/final stage."""
        return self.n_filters + 1


@dataclass(frozen=True)
class KernelSource:
    """Pre-built column stores for :func:`build_kernel_context`.

    The parallel executor ships one global ``(d, n)`` structure-of-arrays
    copy per side to every worker through shared memory; a stripe task
    wraps it in a source whose ``row_map`` translates the stripe-local
    row indices its tree produces into rows of the global store, so no
    per-stripe transpose copies are made.
    """

    cols_a: np.ndarray
    row_map_a: Optional[np.ndarray] = None
    cols_b: Optional[np.ndarray] = None
    row_map_b: Optional[np.ndarray] = None


def plan_cascade(
    spec: JoinSpec,
    spreads: np.ndarray,
    split_dims: Sequence[int] = (),
    sort_dim: Optional[int] = None,
    block_dims: int = DEFAULT_BLOCK_DIMS,
) -> KernelPlan:
    """Choose the dimension ordering and stage split for one join.

    Selectivity heuristic: a pre-filter on dimension ``k`` removes the
    largest fraction of candidates when the data's spread along ``k`` is
    widest relative to the filter width (which is the same for every
    dimension), and when no other structure has constrained ``k`` yet.
    Dimensions therefore sort: unsplit non-sort dimensions first (widest
    spread first), then split dimensions (adjacency already bounds them
    to about two cell widths), then the sort dimension last (the band
    sweep has fully filtered it).
    """
    dims = len(spreads)
    if dims < 2:
        raise InvalidParameterError(
            f"the cascade needs at least 2 dimensions, got {dims}"
        )
    split = {int(d) for d in split_dims}

    def rank(k: int):
        if sort_dim is not None and k == sort_dim:
            klass = 2
        elif k in split:
            klass = 1
        else:
            klass = 0
        return (klass, -float(spreads[k]), k)

    order = tuple(sorted(range(dims), key=rank))
    n_filters = spec.resolved_filter_dims(dims)
    return KernelPlan(order=order, n_filters=n_filters, block_dims=block_dims)


class KernelContext:
    """Per-join cascade state: column stores, plan, and thresholds.

    ``within_rows(rows_a, rows_b, stats)`` is a drop-in replacement for
    ``metric.within_rows(points_a, points_b, rows_a, rows_b, eps)`` with
    bit-identical output; ``stats`` (optional) receives the per-stage
    candidate/survivor counters.

    The cascade itself executes through a pluggable
    :class:`~repro.core.backends.KernelBackend`; the context owns the
    backend-independent parts (plan, thresholds, column stores, the
    small-batch direct path, and chunking/row-map translation), so every
    backend sees identical tiles and identical thresholds.
    """

    __slots__ = (
        "plan",
        "metric",
        "eps",
        "cols_a",
        "cols_b",
        "row_map_a",
        "row_map_b",
        "exact_key",
        "prune_key",
        "filter_bound",
        "backend",
    )

    def __init__(
        self,
        plan: KernelPlan,
        spec: JoinSpec,
        cols_a: np.ndarray,
        cols_b: Optional[np.ndarray] = None,
        row_map_a: Optional[np.ndarray] = None,
        row_map_b: Optional[np.ndarray] = None,
        backend: Optional[KernelBackend] = None,
    ):
        if cols_a.ndim != 2 or cols_a.shape[0] != len(plan.order):
            raise InvalidParameterError(
                f"cols_a must be (d, n) with d={len(plan.order)}, "
                f"got shape {cols_a.shape}"
            )
        self.plan = plan
        self.metric = spec.metric
        self.eps = spec.epsilon
        self.cols_a = cols_a
        self.cols_b = cols_a if cols_b is None else cols_b
        self.row_map_a = row_map_a
        self.row_map_b = row_map_a if cols_b is None else row_map_b
        slack = _relative_slack(cols_a.dtype, len(plan.order))
        self.exact_key = spec.metric.key(spec.epsilon)
        self.prune_key = self.exact_key * (1.0 + slack)
        self.filter_bound = spec.metric.coordinate_bound(spec.epsilon) * (
            1.0 + slack
        )
        if backend is None:
            backend = resolve_kernel_backend(
                getattr(spec, "kernel_backend", "auto")
            )
        self.backend = backend

    @property
    def dims(self) -> int:
        return len(self.plan.order)

    # ------------------------------------------------------------------
    def within_rows(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        stats: Optional[JoinStats] = None,
    ) -> np.ndarray:
        """Cascaded boolean mask over aligned candidate row pairs."""
        rows_a = np.asarray(rows_a)
        rows_b = np.asarray(rows_b)
        n = rows_a.shape[0]
        if rows_b.shape[0] != n:
            raise InvalidParameterError(
                "row index arrays must have equal length: "
                f"{n} != {rows_b.shape[0]}"
            )
        if stats is not None:
            stats.cascade_candidates += int(n)
            if not stats.cascade_survivors:
                stats.cascade_survivors = [0] * self.plan.n_stages
            if not stats.kernel_backend:
                stats.kernel_backend = self.backend.name
        if n < MIN_CASCADE_ROWS:
            return self._direct(rows_a, rows_b, stats)
        out = np.empty(n, dtype=bool)
        for start in range(0, n, _ROW_CHUNK):
            stop = min(start + _ROW_CHUNK, n)
            chunk_a = rows_a[start:stop]
            chunk_b = rows_b[start:stop]
            # Row-map translation happens here, once, so every backend
            # receives indices in the column stores' global row space.
            if self.row_map_a is not None:
                chunk_a = self.row_map_a[chunk_a]
            if self.row_map_b is not None:
                chunk_b = self.row_map_b[chunk_b]
            out[start:stop] = self.backend.filter_chunk(
                self, chunk_a, chunk_b, stats
            )
        return out

    def _direct(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        stats: Optional[JoinStats],
    ) -> np.ndarray:
        """Small-batch path: the exact final check with no staging.

        Identical to the monolithic kernel's computation, so the result
        is trivially exact.  The pre-filter stages record pass-through
        survivor counts (they did not run, so they dropped nothing),
        which keeps the per-stage funnel monotone and fixed-length when
        direct and cascaded batches merge.
        """
        if self.row_map_a is not None:
            rows_a = self.row_map_a[rows_a]
        if self.row_map_b is not None:
            rows_b = self.row_map_b[rows_b]
        diff = np.abs(
            self._gather_rows(self.cols_a, rows_a)
            - self._gather_rows(self.cols_b, rows_b)
        )
        mask = self.metric._reduce_abs_diff(diff) <= self.exact_key
        if stats is not None:
            n = len(rows_a)
            for stage in range(self.plan.n_filters):
                stats.cascade_survivors[stage] += n
            stats.cascade_survivors[-1] += int(np.count_nonzero(mask))
            stats.coordinates_touched += diff.size
        return mask

    # Gather helpers live in :mod:`repro.core.backends` now; the
    # staticmethod aliases keep the historical ``KernelContext`` API.
    _gather = staticmethod(gather_dims)
    _gather_rows = staticmethod(gather_rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KernelContext d={self.dims} filters={self.plan.n_filters} "
            f"metric={self.metric.name} backend={self.backend.name}>"
        )


def build_kernel_context(
    spec: JoinSpec,
    points_a: np.ndarray,
    points_b: Optional[np.ndarray] = None,
    grid=None,
    split_dims: Sequence[int] = (),
    sort_dim: Optional[int] = None,
    source: Optional[KernelSource] = None,
) -> Optional[KernelContext]:
    """Build the per-join cascade context, or ``None`` when disabled.

    Dimension spreads come from the grid's bounding box when available
    (already computed at ``Grid.fit`` time), else from the data.  When a
    :class:`KernelSource` is supplied its column stores are used as-is
    (the parallel workers' zero-copy path); otherwise one ``(d, n)``
    transpose copy per side is made here.
    """
    if spec.cascade not in ("auto", "on", "off"):
        # Specs are validated at construction, but a spec mutated via
        # ``dataclasses.replace`` (or built from an untrusted dict) can
        # reach here with an arbitrary string; refusing it beats
        # silently joining without the cascade.
        raise ConfigError(
            f"unknown cascade mode {spec.cascade!r}: valid modes are "
            "'auto', 'on', 'off'"
        )
    dims = points_a.shape[1]
    if not spec.cascade_enabled(dims):
        return None
    backend = resolve_kernel_backend(getattr(spec, "kernel_backend", "auto"))
    with trace.span("kernel-plan", dims=dims) as span:
        if grid is not None:
            spreads = np.asarray(grid.hi, dtype=np.float64) - np.asarray(
                grid.lo, dtype=np.float64
            )
        else:
            lo = points_a.min(axis=0) if len(points_a) else np.zeros(dims)
            hi = points_a.max(axis=0) if len(points_a) else np.zeros(dims)
            if points_b is not None and len(points_b):
                lo = np.minimum(lo, points_b.min(axis=0))
                hi = np.maximum(hi, points_b.max(axis=0))
            spreads = hi - lo
        plan = plan_cascade(
            spec, spreads, split_dims=split_dims, sort_dim=sort_dim
        )
        if source is not None:
            context = KernelContext(
                plan,
                spec,
                cols_a=source.cols_a,
                cols_b=source.cols_b,
                row_map_a=source.row_map_a,
                row_map_b=source.row_map_b,
                backend=backend,
            )
        else:
            cols_a = np.ascontiguousarray(points_a.T)
            cols_b = (
                np.ascontiguousarray(points_b.T) if points_b is not None else None
            )
            context = KernelContext(
                plan, spec, cols_a=cols_a, cols_b=cols_b, backend=backend
            )
        span.set_attribute("filters", plan.n_filters)
        span.set_attribute("order", list(plan.order))
        span.set_attribute("backend", backend.name)
    return context
