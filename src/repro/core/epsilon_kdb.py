"""The epsilon-kdB tree.

The paper's central data structure: a main-memory tree built on the fly
for one specific join threshold ``epsilon``.  Level ``l`` partitions one
dimension into cells of width ``epsilon``; a leaf splits into such cells
once it exceeds a size threshold and unsplit dimensions remain.  Because
every cell is at least ``epsilon`` wide, two points within distance
``epsilon`` under *any* L_p metric must fall into the same or adjacent
cells of every split dimension — the property the join traversal in
:mod:`repro.core.join` exploits.

The tree never copies point coordinates: it stores ``int64`` index arrays
into one shared ``(n, d)`` array, so construction is cheap enough to do
per join, exactly as the paper intends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.errors import DomainError, InvalidParameterError


@dataclass(frozen=True)
class Grid:
    """The cell geometry shared by every node of one (or two) trees.

    Dimension ``k`` of the domain ``[lo[k], hi[k]]`` is cut into
    ``n_cells[k] = max(1, floor(span_k / eps))`` cells of width ``eps``;
    the final cell absorbs the remainder, so every cell is at least
    ``eps`` wide (which is what the adjacent-cell pruning rule needs).

    Two trees that are to be joined against each other must share one
    ``Grid`` so that equal cell indices mean equal regions of space.
    """

    lo: np.ndarray
    hi: np.ndarray
    eps: float
    n_cells: np.ndarray

    @staticmethod
    def _validated_bounds(lo: np.ndarray, hi: np.ndarray):
        """Coerce and validate a bounding box shared by :meth:`fit` and
        :meth:`fit_union`: float64, 1-D, congruent, finite, ``hi >= lo``."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise InvalidParameterError("grid bounds must be 1-D and congruent")
        if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
            raise InvalidParameterError(
                "grid bounds contain NaN or infinite values; cell counts "
                "would be undefined"
            )
        if np.any(hi < lo):
            raise InvalidParameterError("grid requires hi >= lo in every dimension")
        return lo, hi

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        eps: float,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> "Grid":
        """Build a grid covering ``points`` (or an explicit bounding box).

        An empty relation yields a degenerate single-cell grid at the
        origin, so building a tree over zero points is well defined.
        """
        points = np.asarray(points, dtype=np.float64)
        if len(points) == 0:
            zeros = np.zeros(points.shape[1] if points.ndim == 2 else 1)
            lo = zeros if lo is None else lo
            hi = zeros.copy() if hi is None else hi
        else:
            lo = points.min(axis=0) if lo is None else lo
            hi = points.max(axis=0) if hi is None else hi
        lo, hi = cls._validated_bounds(lo, hi)
        span = hi - lo
        n_cells = np.maximum(1, np.floor(span / float(eps)).astype(np.int64))
        return cls(lo=lo, hi=hi, eps=float(eps), n_cells=n_cells)

    @classmethod
    def fit_union(cls, first: np.ndarray, second: np.ndarray, eps: float) -> "Grid":
        """Grid covering the union of two point sets, without copying them."""
        first = np.asarray(first, dtype=np.float64)
        second = np.asarray(second, dtype=np.float64)
        lo, hi = cls._validated_bounds(
            np.minimum(first.min(axis=0), second.min(axis=0)),
            np.maximum(first.max(axis=0), second.max(axis=0)),
        )
        return cls.fit(first, eps, lo=lo, hi=hi)

    @property
    def dims(self) -> int:
        return int(self.lo.shape[0])

    def cell_of(self, values: np.ndarray, dim: int) -> np.ndarray:
        """Cell indices along ``dim`` for an array of coordinate values."""
        cells = np.floor((np.asarray(values) - self.lo[dim]) / self.eps)
        return np.clip(cells, 0, self.n_cells[dim] - 1).astype(np.int64)

    def cell_of_scalar(self, value: float, dim: int) -> int:
        """Cell index along ``dim`` for one coordinate value."""
        cell = int((value - self.lo[dim]) // self.eps)
        return min(max(cell, 0), int(self.n_cells[dim]) - 1)

    def validate(self, points: np.ndarray, name: str = "points") -> None:
        """Raise :class:`DomainError` if any point lies outside the box."""
        if np.any(points < self.lo) or np.any(points > self.hi):
            raise DomainError(
                f"{name} fall outside the grid domain; clamped cells would "
                "break adjacent-cell pruning"
            )


class LeafNode:
    """A leaf: an index array into the tree's point set.

    ``level`` is the split-order position the leaf would split on next.
    After :meth:`EpsilonKdbTree.finalize` the indices are sorted by the
    tree's leaf sort-merge dimension and ``sort_values`` caches the
    corresponding coordinates; incremental inserts mark the leaf dirty.
    """

    __slots__ = ("indices", "level", "sort_values", "_dirty")

    def __init__(self, indices: np.ndarray, level: int):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.level = level
        self.sort_values: Optional[np.ndarray] = None
        self._dirty = True

    @property
    def size(self) -> int:
        return int(len(self.indices))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LeafNode size={self.size} level={self.level}>"


class InternalNode:
    """An internal node: a sparse map from cell index to child node."""

    __slots__ = ("split_dim", "level", "children")

    def __init__(self, split_dim: int, level: int):
        self.split_dim = split_dim
        self.level = level
        self.children: Dict[int, Union["InternalNode", LeafNode]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InternalNode dim={self.split_dim} level={self.level} "
            f"children={len(self.children)}>"
        )


Node = Union[InternalNode, LeafNode]


@dataclass
class TreeDescription:
    """Structural summary used by tests, analysis and the CLI."""

    points: int
    dims: int
    internal_nodes: int
    leaves: int
    max_depth: int
    max_leaf_size: int
    split_dims_used: int


class EpsilonKdbTree:
    """The epsilon-kdB tree over one point set.

    Build either in bulk (:meth:`build`, the fast path used by the join
    functions) or incrementally (:meth:`empty` + :meth:`insert`, the
    on-the-fly mode the paper describes for streaming a file).  Both
    produce structurally identical trees for the same input order modulo
    leaf point order, and identical join results.
    """

    def __init__(self, points: np.ndarray, spec: JoinSpec, grid: Grid):
        self.points = points
        self.spec = spec
        self.grid = grid
        self.split_order = spec.resolved_split_order(points.shape[1])
        self.sort_dim = spec.resolved_sort_dim(points.shape[1])
        # Split-order positions whose dimension actually has > 1 cell;
        # splitting a single-cell dimension would recurse without
        # partitioning anything.
        self._usable_levels = [
            level
            for level, dim in enumerate(self.split_order)
            if grid.n_cells[dim] > 1
        ]
        self.root: Node = LeafNode(np.empty(0, dtype=np.int64), level=0)
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        points: np.ndarray,
        spec: JoinSpec,
        grid: Optional[Grid] = None,
    ) -> "EpsilonKdbTree":
        """Bulk-build a tree over ``points`` (validated, not copied)."""
        points = validate_points(points)
        if grid is None:
            grid = Grid.fit(points, spec.band_width)
        else:
            grid.validate(points)
        tree = cls(points, spec, grid)
        tree.root = tree._bulk(np.arange(len(points), dtype=np.int64), level=0)
        tree.finalize()
        return tree

    @classmethod
    def empty(
        cls,
        points: np.ndarray,
        spec: JoinSpec,
        grid: Optional[Grid] = None,
    ) -> "EpsilonKdbTree":
        """Create an empty tree over a point array for incremental insert.

        ``points`` is the backing store; :meth:`insert` adds points by
        index, which mirrors reading a file one record at a time.
        """
        points = validate_points(points)
        if grid is None:
            grid = Grid.fit(points, spec.band_width)
        else:
            grid.validate(points)
        return cls(points, spec, grid)

    def _next_usable_level(self, level: int) -> Optional[int]:
        """First split-order position >= ``level`` with a splittable dim."""
        for usable in self._usable_levels:
            if usable >= level:
                return usable
        return None

    def _bulk(self, indices: np.ndarray, level: int) -> Node:
        split_level = self._next_usable_level(level)
        if split_level is None or len(indices) <= self.spec.leaf_size:
            return LeafNode(indices, level=level)
        dim = int(self.split_order[split_level])
        node = InternalNode(split_dim=dim, level=split_level)
        cells = self.grid.cell_of(self.points[indices, dim], dim)
        order = np.argsort(cells, kind="stable")
        sorted_cells = cells[order]
        sorted_indices = indices[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [len(sorted_cells)]])
        for start, stop in zip(starts, stops):
            cell = int(sorted_cells[start])
            node.children[cell] = self._bulk(
                sorted_indices[start:stop], split_level + 1
            )
        return node

    def insert(self, index: int) -> None:
        """Insert one point (by index into the backing array).

        Descends to the target leaf, appends, and splits the leaf when it
        exceeds ``leaf_size`` and a splittable dimension remains.
        """
        if self._finalized:
            self._finalized = False
        point = self.points[index]
        node = self.root
        parent: Optional[InternalNode] = None
        parent_cell = 0
        while isinstance(node, InternalNode):
            cell = self.grid.cell_of_scalar(point[node.split_dim], node.split_dim)
            child = node.children.get(cell)
            if child is None:
                child = LeafNode(np.empty(0, dtype=np.int64), level=node.level + 1)
                node.children[cell] = child
            parent, parent_cell = node, cell
            node = child
        leaf = node
        leaf.indices = np.append(leaf.indices, np.int64(index))
        leaf._dirty = True
        if leaf.size > self.spec.leaf_size:
            replacement = self._split_leaf(leaf)
            if replacement is not leaf:
                if parent is None:
                    self.root = replacement
                else:
                    parent.children[parent_cell] = replacement

    def _split_leaf(self, leaf: LeafNode) -> Node:
        split_level = self._next_usable_level(leaf.level)
        if split_level is None:
            return leaf  # no splittable dimension left; leaf may exceed the cap
        dim = int(self.split_order[split_level])
        node = InternalNode(split_dim=dim, level=split_level)
        cells = self.grid.cell_of(self.points[leaf.indices, dim], dim)
        for cell in np.unique(cells):
            node.children[int(cell)] = LeafNode(
                leaf.indices[cells == cell], level=split_level + 1
            )
        return node

    def finalize(self) -> "EpsilonKdbTree":
        """Sort every leaf by the sort-merge dimension and cache values.

        Idempotent; the join functions call it before traversal so
        incrementally built trees need no special handling.
        """
        if self._finalized:
            return self
        for leaf in self.iter_leaves():
            if leaf._dirty:
                values = self.points[leaf.indices, self.sort_dim]
                order = np.argsort(values, kind="stable")
                leaf.indices = leaf.indices[order]
                leaf.sort_values = values[order]
                leaf._dirty = False
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(
        self, point: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        """Indices of points within ``eps`` of ``point`` (sorted).

        The tree is built for a specific grid width, so only queries with
        ``eps`` at most the build epsilon are answerable (the default is
        exactly the build epsilon); larger radii would need pairs from
        non-adjacent cells and raise :class:`InvalidParameterError`.
        Distance uses the spec's metric, inclusive of the boundary.
        """
        if eps is None:
            eps = self.spec.epsilon
        if eps > self.spec.epsilon:
            raise InvalidParameterError(
                f"query radius {eps} exceeds the build epsilon "
                f"{self.spec.epsilon}; rebuild the tree for larger radii"
            )
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.points.shape[1],):
            raise InvalidParameterError(
                f"query point must have shape ({self.points.shape[1]},), "
                f"got {point.shape}"
            )
        self.finalize()
        metric = self.spec.metric
        band = metric.coordinate_bound(eps)
        hits: List[int] = []
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, LeafNode):
                if not node.size:
                    continue
                # Band filter on the sort dimension, then a full check.
                left = int(
                    np.searchsorted(
                        node.sort_values, point[self.sort_dim] - band, "left"
                    )
                )
                right = int(
                    np.searchsorted(
                        node.sort_values, point[self.sort_dim] + band, "right"
                    )
                )
                candidates = node.indices[left:right]
                if len(candidates):
                    diffs = np.abs(self.points[candidates] - point)
                    keep = metric.within_gap(diffs, eps)
                    hits.extend(candidates[keep].tolist())
            else:
                cell = self.grid.cell_of_scalar(
                    point[node.split_dim], node.split_dim
                )
                for neighbor in (cell - 1, cell, cell + 1):
                    child = node.children.get(neighbor)
                    if child is not None:
                        stack.append(child)
        return np.array(sorted(hits), dtype=np.int64)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def iter_leaves(self) -> Iterator[LeafNode]:
        """Yield every leaf in depth-first order."""
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, LeafNode):
                yield node
            else:
                stack.extend(node.children.values())

    def split_dims(self) -> tuple:
        """Dimensions actually split by at least one internal node, sorted.

        The filter-cascade planner demotes these in its selectivity
        ordering: adjacency already constrains a split dimension to at
        most two cell widths, so a pre-filter on it removes little.
        """
        dims = set()
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, InternalNode):
                dims.add(int(node.split_dim))
                stack.extend(node.children.values())
        return tuple(sorted(dims))

    def describe(self) -> TreeDescription:
        """Return a structural summary of the tree."""
        internal = 0
        leaves = 0
        max_depth = 0
        max_leaf = 0
        split_dims = set()
        total = 0
        stack: List[Node] = [self.root]
        depths: Dict[int, int] = {id(self.root): 0}
        while stack:
            node = stack.pop()
            depth = depths.pop(id(node))
            max_depth = max(max_depth, depth)
            if isinstance(node, LeafNode):
                leaves += 1
                max_leaf = max(max_leaf, node.size)
                total += node.size
            else:
                internal += 1
                split_dims.add(node.split_dim)
                for child in node.children.values():
                    stack.append(child)
                    depths[id(child)] = depth + 1
        return TreeDescription(
            points=total,
            dims=self.points.shape[1],
            internal_nodes=internal,
            leaves=leaves,
            max_depth=max_depth,
            max_leaf_size=max_leaf,
            split_dims_used=len(split_dims),
        )

    def __len__(self) -> int:
        return sum(leaf.size for leaf in self.iter_leaves())
