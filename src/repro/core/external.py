"""External-memory epsilon-kdB self-join.

The paper's extension for data larger than main memory: stripe the first
dimension into runs of epsilon-wide cells such that each stripe fits the
memory budget, partition the file into stripe files (plus, per stripe, a
*band file* holding its points that lie within epsilon of the stripe's
lower boundary), then join each stripe in memory against itself and
against the next stripe's band.  Because every stripe is at least epsilon
wide, a qualifying pair either falls inside one stripe or spans two
adjacent stripes with the upper point inside the lower band — so each
pair is found exactly once.

I/O pattern: two read scans (domain pass + histogram pass is folded into
one scan each), one partition write pass, and one join read pass over the
stripes and bands.  All of it is counted by the simulated
:class:`~repro.storage.pages.PageStore`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.join import epsilon_kdb_join, epsilon_kdb_self_join
from repro.core.resilience import retry_transient
from repro.core.result import JoinStats, PairCollector, PairSink
from repro.errors import InvalidParameterError
from repro.obs import trace
from repro.storage.pages import IoCounters, PageStore, PointFile

#: Default retry budget per page read for transient storage faults.
DEFAULT_IO_RETRIES = 3


@dataclass
class ExternalJoinReport:
    """Outcome of one external-memory join run."""

    stats: JoinStats = field(default_factory=JoinStats)
    io: IoCounters = field(default_factory=IoCounters)
    stripes: int = 0
    peak_memory_points: int = 0
    memory_budget_points: int = 0
    pairs: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )

    @property
    def budget_respected(self) -> bool:
        """Whether every stripe (plus its band) fit the declared budget."""
        return self.peak_memory_points <= self.memory_budget_points


class _MappedSink(PairSink):
    """Translate stripe-local pair indices to global ones before emitting."""

    def __init__(self, target: PairSink, map_left: np.ndarray, map_right: np.ndarray):
        self._target = target
        self._map_left = map_left
        self._map_right = map_right

    def emit(self, left: np.ndarray, right: np.ndarray) -> None:
        global_left = self._map_left[left]
        global_right = self._map_right[right]
        lo = np.minimum(global_left, global_right)
        hi = np.maximum(global_left, global_right)
        self._target.emit(lo, hi)

    @property
    def count(self) -> int:
        return self._target.count


def _resilient_pages(pfile: PointFile, stats: JoinStats, io_retries: int):
    """Yield each page of ``pfile``, retrying transient read faults.

    Each retry re-issues the physical read (a new read ordinal on the
    store, so an injected transient fault does not repeat) and is counted
    in ``stats.storage_retries``.
    """

    def bump(_attempt: int) -> None:
        stats.storage_retries += 1

    for position in range(pfile.num_pages):
        yield retry_transient(
            lambda position=position: pfile.read_page_rows(position),
            io_retries,
            on_retry=bump,
        )


def _resilient_read_all(
    pfile: PointFile, stats: JoinStats, io_retries: int
) -> np.ndarray:
    """Materialize ``pfile`` with per-page transient-fault retry."""
    pages = list(_resilient_pages(pfile, stats, io_retries))
    if not pages:
        return np.empty((0, pfile.dims))
    return np.vstack(pages)


def plan_stripes(histogram: np.ndarray, capacity: int) -> List[slice]:
    """Greedily group consecutive cells into stripes that fit ``capacity``.

    The join pass holds one stripe *plus* the next stripe's boundary band
    in memory at once, and that band is contained in the next stripe's
    first cell — so the plan reserves the cell following the stripe when
    sizing it.  A single cell larger than the capacity becomes a stripe
    of its own (the budget violation is surfaced in the report, not
    hidden).
    """
    cells = len(histogram)
    stripes: List[slice] = []
    start = 0
    running = 0
    for cell in range(cells):
        count = int(histogram[cell])
        reserve = int(histogram[cell + 1]) if cell + 1 < cells else 0
        if running and running + count + reserve > capacity:
            stripes.append(slice(start, cell))
            start = cell
            running = 0
        running += count
    stripes.append(slice(start, cells))
    return stripes


def external_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    memory_points: int,
    store: Optional[PageStore] = None,
    sink: Optional[PairSink] = None,
    page_rows: int = 256,
    io_retries: int = DEFAULT_IO_RETRIES,
) -> ExternalJoinReport:
    """Self-join ``points`` through the simulated disk.

    ``memory_points`` is the budget: the maximum number of points the
    algorithm is allowed to hold in memory at once.  ``points`` are first
    written to the store (that load is *not* counted; the paper's setting
    starts with the relation already on disk).

    Every page read retries up to ``io_retries`` times on
    :class:`~repro.errors.TransientIoError` (counted in
    ``stats.storage_retries``); a fault that persists past the budget
    propagates.
    """
    if int(io_retries) < 0:
        raise InvalidParameterError(
            f"io_retries must be >= 0, got {io_retries!r}"
        )
    io_retries = int(io_retries)
    points = validate_points(points)
    if memory_points < 2:
        raise InvalidParameterError(
            f"memory_points must be >= 2, got {memory_points}"
        )
    report = ExternalJoinReport(memory_budget_points=int(memory_points))
    collect = sink is None
    if collect:
        sink = PairCollector()
    n, dims = points.shape
    if n < 2:
        return report
    if store is None:
        store = PageStore(page_rows=page_rows)

    # Load the relation onto "disk" with the original index as an extra
    # column, then reset the counters: the algorithm's I/O starts here.
    with trace.span("load-relation", points=n):
        augmented = np.column_stack([points, np.arange(n, dtype=np.float64)])
        relation = PointFile.from_points(store, augmented)
    baseline_io = store.counters.snapshot()
    baseline_faults = store.fault_plan.injected if store.fault_plan else 0

    # Pass 1: domain of the striping dimension.
    with trace.span("domain-pass"):
        lo = math.inf
        hi = -math.inf
        for page in _resilient_pages(relation, report.stats, io_retries):
            lo = min(lo, float(page[:, 0].min()))
            hi = max(hi, float(page[:, 0].max()))

    eps = spec.band_width
    n_cells = max(1, int((hi - lo) // eps))

    # Pass 2: histogram of dimension-0 cells.
    with trace.span("histogram-pass", cells=n_cells):
        histogram = np.zeros(n_cells, dtype=np.int64)
        for page in _resilient_pages(relation, report.stats, io_retries):
            cells = _cells(page[:, 0], lo, eps, n_cells)
            histogram += np.bincount(cells, minlength=n_cells)

    stripes = plan_stripes(histogram, int(memory_points))
    report.stripes = len(stripes)
    cell_to_stripe = np.empty(n_cells, dtype=np.int64)
    stripe_lower = np.empty(len(stripes))
    for sid, span in enumerate(stripes):
        cell_to_stripe[span] = sid
        stripe_lower[sid] = lo + span.start * eps

    # Pass 3: partition into stripe files and lower-boundary band files.
    with trace.span("partition-pass", stripes=len(stripes)):
        stripe_files = [PointFile(store, dims + 1) for _ in stripes]
        band_files = [PointFile(store, dims + 1) for _ in stripes]
        for page in _resilient_pages(relation, report.stats, io_retries):
            cells = _cells(page[:, 0], lo, eps, n_cells)
            owners = cell_to_stripe[cells]
            for sid in np.unique(owners):
                rows = page[owners == sid]
                stripe_files[sid].append_rows(rows)
                in_band = rows[:, 0] <= stripe_lower[sid] + eps
                if in_band.any():
                    band_files[sid].append_rows(rows[in_band])
        for pfile in stripe_files + band_files:
            pfile.close_append()

    # Pass 4: join each stripe with itself and with the next stripe's band.
    with trace.span("join-pass", stripes=len(stripes)):
        for sid in range(len(stripes)):
            with trace.span("stripe", stripe=sid) as stripe_span:
                stripe_rows = _resilient_read_all(
                    stripe_files[sid], report.stats, io_retries
                )
                stripe_points = stripe_rows[:, :dims]
                stripe_map = stripe_rows[:, dims].astype(np.int64)
                in_memory = len(stripe_rows)
                if len(stripe_points) >= 2:
                    mapped = _MappedSink(sink, stripe_map, stripe_map)
                    local = epsilon_kdb_self_join(stripe_points, spec, sink=mapped)
                    report.stats.merge(local.stats)
                if sid + 1 < len(stripes) and band_files[sid + 1].num_rows:
                    band_rows = _resilient_read_all(
                        band_files[sid + 1], report.stats, io_retries
                    )
                    in_memory += len(band_rows)
                    band_points = band_rows[:, :dims]
                    band_map = band_rows[:, dims].astype(np.int64)
                    if len(stripe_points) and len(band_points):
                        mapped = _MappedSink(sink, stripe_map, band_map)
                        local = epsilon_kdb_join(
                            stripe_points, band_points, spec, sink=mapped
                        )
                        report.stats.merge(local.stats)
                stripe_span.set_attribute("points_in_memory", in_memory)
            report.peak_memory_points = max(report.peak_memory_points, in_memory)

    report.io = store.counters.delta(baseline_io)
    report.stats.pages_read = report.io.reads
    report.stats.pages_written = report.io.writes
    report.stats.pairs_emitted = sink.count
    if store.fault_plan is not None:
        report.stats.faults_injected = (
            store.fault_plan.injected - baseline_faults
        )
    if collect:
        pairs = sink.pairs()
        if len(pairs):
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            pairs = pairs[order]
        report.pairs = pairs
    return report


class _SidedSink(PairSink):
    """Translate local pair indices to global ones, preserving sides."""

    def __init__(self, target: PairSink, map_left: np.ndarray, map_right: np.ndarray):
        self._target = target
        self._map_left = map_left
        self._map_right = map_right

    def emit(self, left: np.ndarray, right: np.ndarray) -> None:
        self._target.emit(self._map_left[left], self._map_right[right])

    @property
    def count(self) -> int:
        return self._target.count


def external_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    memory_points: int,
    store: Optional[PageStore] = None,
    sink: Optional[PairSink] = None,
    page_rows: int = 256,
    io_retries: int = DEFAULT_IO_RETRIES,
) -> ExternalJoinReport:
    """Two-set join R against S through the simulated disk.

    Both relations are striped on dimension 0 with *shared* stripe
    boundaries planned from their combined histogram, so stripe ``k`` of
    R only needs stripe ``k`` of S plus the epsilon band at each side's
    next stripe: ``(R_k x S_k)``, ``(R_k x Sband_{k+1})`` and
    ``(Rband_{k+1} x S_k)`` together cover every qualifying pair exactly
    once.  Reported pairs are ``(r_index, s_index)`` with sides
    preserved, like :func:`repro.core.join.epsilon_kdb_join`.  Page
    reads retry transient faults up to ``io_retries`` times, as in
    :func:`external_self_join`.
    """
    if int(io_retries) < 0:
        raise InvalidParameterError(
            f"io_retries must be >= 0, got {io_retries!r}"
        )
    io_retries = int(io_retries)
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality"
        )
    if memory_points < 2:
        raise InvalidParameterError(
            f"memory_points must be >= 2, got {memory_points}"
        )
    report = ExternalJoinReport(memory_budget_points=int(memory_points))
    collect = sink is None
    if collect:
        sink = PairCollector()
    if len(points_r) == 0 or len(points_s) == 0:
        return report
    if store is None:
        store = PageStore(page_rows=page_rows)
    dims = points_r.shape[1]

    relations = []
    with trace.span(
        "load-relation", points_r=len(points_r), points_s=len(points_s)
    ):
        for label, points in (("r", points_r), ("s", points_s)):
            augmented = np.column_stack(
                [points, np.arange(len(points), dtype=np.float64)]
            )
            relations.append(PointFile.from_points(store, augmented))
    baseline_io = store.counters.snapshot()
    baseline_faults = store.fault_plan.injected if store.fault_plan else 0

    # Pass 1: shared striping domain over both relations.
    with trace.span("domain-pass"):
        lo = math.inf
        hi = -math.inf
        for relation in relations:
            for page in _resilient_pages(relation, report.stats, io_retries):
                lo = min(lo, float(page[:, 0].min()))
                hi = max(hi, float(page[:, 0].max()))
    eps = spec.band_width
    n_cells = max(1, int((hi - lo) // eps))

    # Pass 2: combined histogram (memory at join time holds both sides).
    with trace.span("histogram-pass", cells=n_cells):
        histogram = np.zeros(n_cells, dtype=np.int64)
        for relation in relations:
            for page in _resilient_pages(relation, report.stats, io_retries):
                cells = _cells(page[:, 0], lo, eps, n_cells)
                histogram += np.bincount(cells, minlength=n_cells)

    stripes = plan_stripes(histogram, int(memory_points))
    report.stripes = len(stripes)
    cell_to_stripe = np.empty(n_cells, dtype=np.int64)
    stripe_lower = np.empty(len(stripes))
    for sid, span in enumerate(stripes):
        cell_to_stripe[span] = sid
        stripe_lower[sid] = lo + span.start * eps

    # Pass 3: partition each relation into stripe and band files.
    with trace.span("partition-pass", stripes=len(stripes)):
        stripe_files = [[], []]
        band_files = [[], []]
        for side, relation in enumerate(relations):
            stripe_files[side] = [PointFile(store, dims + 1) for _ in stripes]
            band_files[side] = [PointFile(store, dims + 1) for _ in stripes]
            for page in _resilient_pages(relation, report.stats, io_retries):
                cells = _cells(page[:, 0], lo, eps, n_cells)
                owners = cell_to_stripe[cells]
                for sid in np.unique(owners):
                    rows = page[owners == sid]
                    stripe_files[side][sid].append_rows(rows)
                    in_band = rows[:, 0] <= stripe_lower[sid] + eps
                    if in_band.any():
                        band_files[side][sid].append_rows(rows[in_band])
            for pfile in stripe_files[side] + band_files[side]:
                pfile.close_append()

    # Pass 4: per stripe, R_k x S_k, R_k x Sband_{k+1}, Rband_{k+1} x S_k.
    def load(pfile):
        rows = _resilient_read_all(pfile, report.stats, io_retries)
        return rows[:, :dims], rows[:, dims].astype(np.int64)

    def join_sides(left, left_map, right, right_map):
        if len(left) and len(right):
            mapped = _SidedSink(sink, left_map, right_map)
            local = epsilon_kdb_join(left, right, spec, sink=mapped)
            report.stats.merge(local.stats)

    with trace.span("join-pass", stripes=len(stripes)):
        for sid in range(len(stripes)):
            with trace.span("stripe", stripe=sid) as stripe_span:
                r_points, r_map = load(stripe_files[0][sid])
                s_points, s_map = load(stripe_files[1][sid])
                in_memory = len(r_points) + len(s_points)
                join_sides(r_points, r_map, s_points, s_map)
                if sid + 1 < len(stripes):
                    if band_files[1][sid + 1].num_rows:
                        sband_points, sband_map = load(band_files[1][sid + 1])
                        in_memory += len(sband_points)
                        join_sides(r_points, r_map, sband_points, sband_map)
                    if band_files[0][sid + 1].num_rows:
                        rband_points, rband_map = load(band_files[0][sid + 1])
                        in_memory += len(rband_points)
                        join_sides(rband_points, rband_map, s_points, s_map)
                stripe_span.set_attribute("points_in_memory", in_memory)
            report.peak_memory_points = max(report.peak_memory_points, in_memory)

    report.io = store.counters.delta(baseline_io)
    report.stats.pages_read = report.io.reads
    report.stats.pages_written = report.io.writes
    report.stats.pairs_emitted = sink.count
    if store.fault_plan is not None:
        report.stats.faults_injected = (
            store.fault_plan.injected - baseline_faults
        )
    if collect:
        pairs = sink.pairs()
        if len(pairs):
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            pairs = pairs[order]
        report.pairs = pairs
    return report


def _cells(values: np.ndarray, lo: float, eps: float, n_cells: int) -> np.ndarray:
    cells = np.floor((values - lo) / eps).astype(np.int64)
    return np.clip(cells, 0, n_cells - 1)
