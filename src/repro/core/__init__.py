"""Core of the reproduction: the epsilon-kdB tree and its join algorithms.

The public entry points are :func:`repro.core.join.epsilon_kdb_self_join`
and :func:`repro.core.join.epsilon_kdb_join`, plus the tree itself in
:mod:`repro.core.epsilon_kdb` for callers that want to build once and
inspect the structure.
"""

from repro.core.backends import (
    KernelBackend,
    LeafBatchQueue,
    NumbaBackend,
    NumpyBackend,
    available_kernel_backends,
    numba_available,
    resolve_kernel_backend,
)
from repro.core.config import JoinSpec
from repro.core.epsilon_kdb import EpsilonKdbTree, Grid
from repro.core.external import ExternalJoinReport, external_join, external_self_join
from repro.core.flat_build import FlatEpsilonKdbTree, TreeCache
from repro.core.incremental import (
    IncrementalJoin,
    JoinSizeSketch,
    UpdateDelta,
    apply_update_stream,
    subtract_pairs,
)
from repro.core.join import epsilon_kdb_join, epsilon_kdb_self_join
from repro.core.kernels import (
    KernelContext,
    KernelPlan,
    KernelSource,
    build_kernel_context,
    plan_cascade,
)
from repro.core.parallel import (
    ParallelJoinExecutor,
    StripePlan,
    parallel_join,
    parallel_self_join,
    plan_parallel_stripes,
)
from repro.core.resilience import FaultPlan, retry_transient
from repro.core.result import JoinResult, JoinStats, PairCollector, PairCounter
from repro.core.sweep import epsilon_sweep

__all__ = [
    "JoinSpec",
    "Grid",
    "EpsilonKdbTree",
    "FlatEpsilonKdbTree",
    "TreeCache",
    "epsilon_kdb_self_join",
    "epsilon_kdb_join",
    "epsilon_sweep",
    "IncrementalJoin",
    "JoinSizeSketch",
    "UpdateDelta",
    "apply_update_stream",
    "subtract_pairs",
    "KernelContext",
    "KernelPlan",
    "KernelSource",
    "KernelBackend",
    "LeafBatchQueue",
    "NumpyBackend",
    "NumbaBackend",
    "available_kernel_backends",
    "numba_available",
    "resolve_kernel_backend",
    "build_kernel_context",
    "plan_cascade",
    "external_self_join",
    "external_join",
    "ExternalJoinReport",
    "ParallelJoinExecutor",
    "StripePlan",
    "parallel_self_join",
    "parallel_join",
    "plan_parallel_stripes",
    "FaultPlan",
    "retry_transient",
    "PairCollector",
    "PairCounter",
    "JoinStats",
    "JoinResult",
]
