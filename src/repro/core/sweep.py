"""Vectorized band-sweep primitives and epsilon sweeps.

Both the epsilon-kdB leaf joins and the sort-merge baseline reduce to the
same primitive: given values sorted along one dimension, enumerate every
pair whose difference along that dimension is at most ``eps``.  The
functions here generate those candidate position pairs without a Python
loop, using the classic repeat/cumsum trick to expand variable-length
windows.

:func:`epsilon_sweep` runs one self-join per threshold over a shared
:class:`~repro.core.flat_build.TreeCache`, so a sweep pays for a single
flat build instead of one per epsilon.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def _expand_windows(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-row half-open index windows into aligned pair positions.

    For each row ``k`` with window ``[starts[k], ends[k])``, produce the
    pairs ``(k, starts[k]), (k, starts[k]+1), ..., (k, ends[k]-1)``.
    Returns the aligned ``(left_positions, right_positions)`` arrays.
    """
    counts = ends - starts
    np.maximum(counts, 0, out=counts)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY.copy(), _EMPTY.copy()
    left = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    # Offsets within each window: a global arange minus the cumulative
    # start of each window's segment, plus the window's start index.
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    right = np.arange(total, dtype=np.int64) - segment_starts + np.repeat(
        starts, counts
    )
    return left, right


def band_pairs_self(values: np.ndarray, eps: float) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate pairs within a single sorted value array.

    ``values`` must be sorted ascending.  Returns aligned position arrays
    ``(a, b)`` with ``a < b`` and ``values[b] - values[a] <= eps``; each
    unordered pair appears exactly once.
    """
    values = np.asarray(values)
    n = len(values)
    if n < 2:
        return _EMPTY.copy(), _EMPTY.copy()
    starts = np.arange(1, n + 1, dtype=np.int64)
    ends = np.searchsorted(values, values + eps, side="right").astype(np.int64, copy=False)
    return _expand_windows(starts, ends)


def iter_band_pairs_self(
    values: np.ndarray, eps: float, budget: int = 2_000_000
):
    """Chunked variant of :func:`band_pairs_self` for large inputs.

    Yields ``(a, b)`` position-array chunks, each expanding at most
    ``budget`` candidate pairs, so a wide band over a big array never
    materializes the full candidate set at once.
    """
    values = np.asarray(values)
    n = len(values)
    if n < 2:
        return
    starts = np.arange(1, n + 1, dtype=np.int64)
    ends = np.searchsorted(values, values + eps, side="right").astype(np.int64, copy=False)
    yield from _iter_expand(starts, ends, budget)


def iter_band_pairs_cross(
    values_a: np.ndarray, values_b: np.ndarray, eps: float, budget: int = 2_000_000
):
    """Chunked variant of :func:`band_pairs_cross`."""
    values_a = np.asarray(values_a)
    values_b = np.asarray(values_b)
    if len(values_a) == 0 or len(values_b) == 0:
        return
    starts = np.searchsorted(values_b, values_a - eps, side="left").astype(np.int64, copy=False)
    ends = np.searchsorted(values_b, values_a + eps, side="right").astype(np.int64, copy=False)
    yield from _iter_expand(starts, ends, budget)


def _iter_expand(starts: np.ndarray, ends: np.ndarray, budget: int):
    """Expand windows in row groups whose total pair count fits ``budget``."""
    counts = np.maximum(ends - starts, 0)
    cumulative = np.concatenate([[0], np.cumsum(counts)])
    row = 0
    n = len(starts)
    while row < n:
        target = cumulative[row] + max(budget, int(counts[row]))
        next_row = int(np.searchsorted(cumulative, target, side="right")) - 1
        next_row = max(next_row, row + 1)
        left, right = _expand_windows(starts[row:next_row], ends[row:next_row])
        if len(left):
            yield left + row, right
        row = next_row


def band_pairs_cross(
    values_a: np.ndarray, values_b: np.ndarray, eps: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate pairs between two sorted value arrays.

    Both inputs must be sorted ascending.  Returns aligned position arrays
    ``(a, b)`` with ``|values_a[a] - values_b[b]| <= eps``.
    """
    values_a = np.asarray(values_a)
    values_b = np.asarray(values_b)
    if len(values_a) == 0 or len(values_b) == 0:
        return _EMPTY.copy(), _EMPTY.copy()
    starts = np.searchsorted(values_b, values_a - eps, side="left").astype(np.int64, copy=False)
    ends = np.searchsorted(values_b, values_a + eps, side="right").astype(np.int64, copy=False)
    return _expand_windows(starts, ends)


def epsilon_sweep(
    points: np.ndarray,
    epsilons: Sequence[float],
    cache=None,
    return_stats: bool = False,
    **spec_kwargs,
):
    """Self-join ``points`` at every threshold, reusing one flat tree.

    Thresholds are processed in descending order so the first (coarsest)
    build satisfies every later request from the cache — a tree built at
    a larger epsilon answers any smaller one exactly (its cells are at
    least as wide as required).  Results are returned in the order the
    ``epsilons`` were given; each carries its *own* per-epsilon counters
    (``structure_cache_hits`` is 0 or 1 per result — which joins reused
    the structure, not just how many).  With ``return_stats=True`` the
    return value is ``(results, aggregate)`` where ``aggregate`` is the
    merged :class:`~repro.core.result.JoinStats` of the whole sweep; the
    per-epsilon ``structure_cache_hits`` sum to the aggregate's (and to
    the cache's ``hits`` delta).  ``spec_kwargs`` are forwarded to
    :class:`~repro.core.config.JoinSpec` (metric, leaf_size, ...);
    ``cache`` accepts a pre-populated
    :class:`~repro.core.flat_build.TreeCache` to share across sweeps.
    """
    # Imported here: join (and flat_build via join) import this module.
    from repro.core.config import JoinSpec
    from repro.core.flat_build import TreeCache
    from repro.core.join import epsilon_kdb_self_join
    from repro.core.result import JoinStats

    if cache is None:
        cache = TreeCache()
    order = sorted(
        range(len(epsilons)), key=lambda i: -float(epsilons[i])
    )
    results: List[Optional[object]] = [None] * len(epsilons)
    for index in order:
        spec = JoinSpec(epsilon=float(epsilons[index]), **spec_kwargs)
        results[index] = epsilon_kdb_self_join(points, spec, structure_cache=cache)
    if not return_stats:
        return results
    aggregate = JoinStats()
    for result in results:
        aggregate.merge(result.stats)
    return results, aggregate
