"""Deterministic fault injection and recovery primitives.

A production join service has to survive the failure modes the paper's
setting never exercises: a pool worker OOM-killed mid-stripe, a task
that hangs, a flaky read from the storage layer, a machine on which no
process pool can be created at all.  Distributed similarity-join systems
treat per-partition failure and re-dispatch as a first-class concern;
the epsilon-kdB decomposition makes the same recovery strategy exact
here, because every stripe task is a pure function of (points, spec,
member indices) — re-running one yields byte-identical output, and the
deterministic merge dedup makes double-reported boundary pairs harmless.

This module provides the two halves the rest of the library composes:

* :class:`FaultPlan` — a seeded, picklable description of which faults
  to inject where.  Explicit builders pin faults to specific stripe
  tasks / page reads; rate-based faults are drawn from a counter-based
  RNG keyed on ``(seed, site)``, so the *same plan replays the same
  faults* in every run, in every worker process, regardless of
  scheduling.  Injected faults are counted (parent-side) so
  ``JoinStats.faults_injected`` can report them.
* :func:`retry_transient` — bounded retry for
  :class:`~repro.errors.TransientIoError`, used by the external joins.
* :class:`DegradeToSerial` — the control-flow signal the parallel
  executor raises internally when the pool path is unusable (pool
  creation failed, or ``BrokenProcessPool`` mid-join) and the join
  should fall back to the plain serial traversal.

The hardened execution path itself lives in
:mod:`repro.core.parallel` (per-task deadlines, bounded retry with an
in-parent final attempt, pool degradation) and
:mod:`repro.core.external` (storage-read retry).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional, Set, Tuple, TypeVar

import numpy as np

from repro.errors import TransientIoError, WorkerCrashError
from repro.obs import trace

_T = TypeVar("_T")

#: Distinct RNG stream tags so rate-based fault kinds never correlate.
_CRASH_TAG = 1
_DELAY_TAG = 2
_IO_TAG = 3


class DegradeToSerial(Exception):
    """Internal signal: abandon the pool path, run the serial join.

    Carries the resilience counters accumulated before the degradation
    so the serial fallback's :class:`~repro.core.result.JoinStats` can
    still report them.  Never escapes the public API: the executor
    catches it and returns a (correct, serial) result with
    ``stats.degraded_to_serial`` set.
    """

    def __init__(
        self,
        reason: str,
        tasks_retried: int = 0,
        tasks_timed_out: int = 0,
        faults_injected: int = 0,
    ):
        super().__init__(reason)
        self.reason = reason
        self.tasks_retried = tasks_retried
        self.tasks_timed_out = tasks_timed_out
        self.faults_injected = faults_injected


class FaultPlan:
    """A reproducible schedule of injected faults.

    Faults are addressed by *site*: stripe tasks by their dispatch index
    (stable across retries and runs), page reads by their per-store read
    ordinal.  A plan can mix explicit faults (builders below) with
    rate-based ones drawn deterministically from ``seed``; both replay
    identically because every decision is a pure function of
    ``(seed, site, attempt)`` — no global RNG state, no wall clock.

    The plan is picklable and is shipped to pool workers alongside the
    task arguments; workers *apply* faults, while the parent process
    does the authoritative *counting* (worker-side copies are discarded
    with the process), so ``injected`` is exact even when a fault kills
    its worker.

    Fault kinds:

    * ``crash_task(k)`` — the task raises
      :class:`~repro.errors.WorkerCrashError` (a survivable worker
      failure; exercises per-task retry).  ``attempts=None`` poisons the
      task on *every* attempt, including the parent's final one.
    * ``hard_crash_task(k)`` — the worker process exits via
      ``os._exit`` (an OOM-kill stand-in; breaks the whole pool and
      exercises degradation to serial).
    * ``delay_task(k, seconds)`` — the task sleeps before running
      (exercises ``task_timeout``).
    * ``fail_page_read(*ordinals)`` — those
      :meth:`~repro.storage.pages.PageStore.read_page` calls raise
      :class:`~repro.errors.TransientIoError` (exercises storage retry;
      the retried read has a new ordinal, so it succeeds).
    * ``fail_pool_creation(times)`` — the next ``times`` attempts to
      create a process pool fail (exercises whole-join degradation).

    Storage-corruption kinds (all one-shot: each fires once and is
    consumed, so a session re-opened with the same plan does not hit the
    same fault again; keyed by the durability sequence number they
    damage):

    * ``tear_wal_frame(seq)`` — the WAL append of update ``seq`` writes
      only a prefix of its frame and raises
      :class:`~repro.errors.SessionCrashError` (a crash mid-write;
      recovery discards the torn suffix).
    * ``flip_wal_bit(seq)`` — update ``seq``'s WAL frame is written in
      full, then one payload bit is flipped on disk (latent corruption;
      recovery's CRC check discards the record and everything after it).
    * ``truncate_snapshot(snap_seq)`` — snapshot generation ``snap_seq``
      is published, then cut short on disk (recovery's file-size check
      rejects it and falls back a generation).
    * ``flip_snapshot_bit(snap_seq)`` — one byte inside a published
      snapshot's array section is flipped (recovery's per-array CRC
      rejects it and falls back a generation).
    * ``crash_before_snapshot_publish(snap_seq)`` — the snapshot temp
      file is written and fsynced, then the process "crashes"
      (:class:`~repro.errors.SessionCrashError`) before the atomic
      rename; recovery resumes from the previous generation plus the
      intact WAL.

    Rate-based equivalents: ``crash_rate``, ``delay_rate`` /
    ``delay_seconds``, ``io_failure_rate`` (all fire on first attempts
    only, modelling transient faults).
    """

    def __init__(
        self,
        seed: int = 0,
        crash_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.25,
        io_failure_rate: float = 0.0,
    ):
        for name, rate in (
            ("crash_rate", crash_rate),
            ("delay_rate", delay_rate),
            ("io_failure_rate", io_failure_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        self.seed = int(seed)
        self.crash_rate = float(crash_rate)
        self.delay_rate = float(delay_rate)
        self.delay_seconds = float(delay_seconds)
        self.io_failure_rate = float(io_failure_rate)
        # task id -> attempts affected (None = every attempt, i.e. poisoned)
        self._crashes: Dict[int, Optional[int]] = {}
        self._hard_crashes: Set[int] = set()
        # task id -> (sleep seconds, attempts affected)
        self._delays: Dict[int, Tuple[float, Optional[int]]] = {}
        self._io_reads: Set[int] = set()
        self._pool_failures_remaining = 0
        # update seq -> keep fraction of the torn frame
        self._wal_tears: Dict[int, float] = {}
        self._wal_flips: Set[int] = set()
        # snapshot seq -> keep fraction of the truncated file
        self._snapshot_truncations: Dict[int, float] = {}
        self._snapshot_flips: Set[int] = set()
        self._publish_crashes: Set[int] = set()
        #: Faults injected so far, counted by the *parent* process.
        self.injected = 0

    # ------------------------------------------------------------------
    # builders (chainable)
    # ------------------------------------------------------------------
    def crash_task(self, task: int, attempts: Optional[int] = 1) -> "FaultPlan":
        """Crash stripe task ``task`` on its first ``attempts`` attempts."""
        self._crashes[int(task)] = attempts
        return self

    def hard_crash_task(self, task: int) -> "FaultPlan":
        """Kill the worker process running stripe task ``task``."""
        self._hard_crashes.add(int(task))
        return self

    def delay_task(
        self, task: int, seconds: float, attempts: Optional[int] = 1
    ) -> "FaultPlan":
        """Sleep ``seconds`` before running task ``task`` (first ``attempts``)."""
        self._delays[int(task)] = (float(seconds), attempts)
        return self

    def fail_page_read(self, *ordinals: int) -> "FaultPlan":
        """Fail the page reads with these per-store read ordinals."""
        self._io_reads.update(int(o) for o in ordinals)
        return self

    def fail_pool_creation(self, times: int = 1) -> "FaultPlan":
        """Fail the next ``times`` process-pool creations."""
        self._pool_failures_remaining += int(times)
        return self

    def tear_wal_frame(self, seq: int, fraction: float = 0.5) -> "FaultPlan":
        """Tear update ``seq``'s WAL append partway through (then crash)."""
        self._wal_tears[int(seq)] = float(fraction)
        return self

    def flip_wal_bit(self, seq: int) -> "FaultPlan":
        """Flip one payload bit of update ``seq``'s WAL frame on disk."""
        self._wal_flips.add(int(seq))
        return self

    def truncate_snapshot(self, snap_seq: int, fraction: float = 0.6) -> "FaultPlan":
        """Cut snapshot generation ``snap_seq`` short after publishing."""
        self._snapshot_truncations[int(snap_seq)] = float(fraction)
        return self

    def flip_snapshot_bit(self, snap_seq: int) -> "FaultPlan":
        """Flip one array byte of snapshot ``snap_seq`` after publishing."""
        self._snapshot_flips.add(int(snap_seq))
        return self

    def crash_before_snapshot_publish(self, snap_seq: int) -> "FaultPlan":
        """Crash after writing snapshot ``snap_seq``'s temp file, before
        the atomic rename that would publish it."""
        self._publish_crashes.add(int(snap_seq))
        return self

    # ------------------------------------------------------------------
    # deterministic decisions
    # ------------------------------------------------------------------
    def _draw(self, tag: int, site: int) -> float:
        rng = np.random.default_rng((abs(self.seed), tag, abs(int(site))))
        return float(rng.random())

    def crash_fires(self, task: int, attempt: int) -> bool:
        if task in self._crashes:
            limit = self._crashes[task]
            if limit is None or attempt < limit:
                return True
        return (
            self.crash_rate > 0.0
            and attempt == 0
            and self._draw(_CRASH_TAG, task) < self.crash_rate
        )

    def delay_for(self, task: int, attempt: int) -> float:
        if task in self._delays:
            seconds, limit = self._delays[task]
            if limit is None or attempt < limit:
                return seconds
        if (
            self.delay_rate > 0.0
            and attempt == 0
            and self._draw(_DELAY_TAG, task) < self.delay_rate
        ):
            return self.delay_seconds
        return 0.0

    def hard_crash_fires(self, task: int, attempt: int) -> bool:
        return task in self._hard_crashes and attempt == 0

    # ------------------------------------------------------------------
    # application and accounting
    # ------------------------------------------------------------------
    def apply_task_faults(
        self, task: int, attempt: int, in_process: bool = False
    ) -> None:
        """Fire this task attempt's faults (called where the task runs).

        ``in_process`` marks attempts running in the parent process (the
        poolless runner and the final in-parent retry), where a hard
        crash must not ``os._exit`` the caller — it surfaces as
        :class:`DegradeToSerial` instead, mirroring what the parent
        would observe as ``BrokenProcessPool`` with a real pool.
        """
        delay = self.delay_for(task, attempt)
        if delay > 0.0:
            trace.add_event(
                "injected-delay", task=task, attempt=attempt, seconds=delay
            )
            time.sleep(delay)
        if self.hard_crash_fires(task, attempt):
            trace.add_event("injected-hard-crash", task=task, attempt=attempt)
            if in_process:
                raise DegradeToSerial(
                    f"injected hard crash on task {task} (in-process mode)"
                )
            os._exit(1)
        if self.crash_fires(task, attempt):
            trace.add_event("injected-crash", task=task, attempt=attempt)
            raise WorkerCrashError(
                f"injected worker crash: task {task}, attempt {attempt}"
            )

    def count_task_faults(self, task: int, attempt: int) -> int:
        """Parent-side accounting for one task dispatch; returns the count."""
        count = 0
        if self.delay_for(task, attempt) > 0.0:
            count += 1
        if self.hard_crash_fires(task, attempt):
            count += 1
        if self.crash_fires(task, attempt):
            count += 1
        self.injected += count
        return count

    def io_fault(self, read_ordinal: int) -> bool:
        """Whether this page read fails; counts the injection if so."""
        fires = read_ordinal in self._io_reads or (
            self.io_failure_rate > 0.0
            and self._draw(_IO_TAG, read_ordinal) < self.io_failure_rate
        )
        if fires:
            self.injected += 1
            trace.add_event("injected-io-fault", read_ordinal=read_ordinal)
        return fires

    def wal_append_fault(self, seq: int) -> Optional[Tuple[str, float]]:
        """Consume the storage fault scheduled for WAL append ``seq``.

        Returns ``("tear", keep_fraction)``, ``("flip", 0.0)`` or
        ``None``.  One-shot: the fault is removed from the plan so a
        recovered session retrying the same sequence proceeds cleanly.
        """
        seq = int(seq)
        if seq in self._wal_tears:
            fraction = self._wal_tears.pop(seq)
            self.injected += 1
            trace.add_event("injected-wal-tear", seq=seq)
            return ("tear", fraction)
        if seq in self._wal_flips:
            self._wal_flips.discard(seq)
            self.injected += 1
            trace.add_event("injected-wal-bit-flip", seq=seq)
            return ("flip", 0.0)
        return None

    def snapshot_fault(self, snap_seq: int) -> Optional[Tuple[str, float]]:
        """Consume the storage fault scheduled for snapshot ``snap_seq``.

        Returns ``("crash", 0.0)``, ``("truncate", keep_fraction)``,
        ``("flip", 0.0)`` or ``None``.  One-shot, like
        :meth:`wal_append_fault`.
        """
        snap_seq = int(snap_seq)
        if snap_seq in self._publish_crashes:
            self._publish_crashes.discard(snap_seq)
            self.injected += 1
            trace.add_event("injected-publish-crash", snap_seq=snap_seq)
            return ("crash", 0.0)
        if snap_seq in self._snapshot_truncations:
            fraction = self._snapshot_truncations.pop(snap_seq)
            self.injected += 1
            trace.add_event("injected-snapshot-truncation", snap_seq=snap_seq)
            return ("truncate", fraction)
        if snap_seq in self._snapshot_flips:
            self._snapshot_flips.discard(snap_seq)
            self.injected += 1
            trace.add_event("injected-snapshot-bit-flip", snap_seq=snap_seq)
            return ("flip", 0.0)
        return None

    def take_pool_failure(self) -> bool:
        """Consume one scheduled pool-creation failure, if any remain."""
        if self._pool_failures_remaining > 0:
            self._pool_failures_remaining -= 1
            self.injected += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} crashes={sorted(self._crashes)} "
            f"hard={sorted(self._hard_crashes)} delays={sorted(self._delays)} "
            f"io={sorted(self._io_reads)} "
            f"pool_failures={self._pool_failures_remaining} "
            f"injected={self.injected}>"
        )


def retry_transient(
    operation: Callable[[], _T],
    retries: int,
    on_retry: Optional[Callable[[int], None]] = None,
) -> _T:
    """Run ``operation``, retrying up to ``retries`` times on transient I/O.

    Only :class:`~repro.errors.TransientIoError` is retried — anything
    else is a real failure and propagates immediately.  ``on_retry`` is
    called with the attempt number before each retry (the external joins
    use it to bump ``JoinStats.storage_retries``).  The final
    ``TransientIoError`` is re-raised once the budget is exhausted.
    """
    attempt = 0
    while True:
        try:
            return operation()
        except TransientIoError:
            if attempt >= retries:
                raise
            attempt += 1
            if on_retry is not None:
                on_retry(attempt)
