"""Pluggable kernel backends for the leaf-join hot path.

The filter-cascade of :mod:`repro.core.kernels` splits into three stages:
*plan* the cascade (:func:`repro.core.kernels.plan_cascade`), *filter* a
candidate block (drop row pairs whose distance exceeds epsilon), and
*emit* the surviving pairs through the traversal's sink.  The middle
stage is where essentially all join time goes, and it is the only stage
whose implementation is interchangeable: this module defines the
:class:`KernelBackend` protocol for it and ships two implementations.

* :class:`NumpyBackend` — the default; the vectorized cascade that used
  to live inside :class:`~repro.core.kernels.KernelContext`.
* :class:`NumbaBackend` — optional; compiles the pre-filter stages and
  the short-circuit L_p reduction as a single nopython pass over the
  tile.  ``numba`` is imported lazily and the backend degrades to
  :class:`NumpyBackend` when it is absent, so the package has no hard
  dependency on it.

Exactness discipline (shared by every backend): pre-filters and the
short-circuit reduction may only drop rows using *slacked* thresholds
(see ``kernels._relative_slack``), and every survivor is re-checked with
the exact monolithic computation — the same numpy reduction, natural
dimension order, C-contiguous rows — before the mask is produced.  A
backend therefore cannot change which pairs a join emits, only how fast
the losers are discarded; the cross-backend differential tests assert
byte-identical output for every engine.

:class:`LeafBatchQueue` is the batched leaf-pair work-queue the
traversals feed (following the batching scheme of Gowanlock & Karsin's
GPU self-join): instead of filtering each leaf's candidate list in its
own tiny dispatch, candidates accumulate into preallocated index buffers
and are filtered one backend-sized tile at a time.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.obs import trace

__all__ = [
    "DEFAULT_TILE_ROWS",
    "KernelBackend",
    "LeafBatchQueue",
    "NumbaBackend",
    "NumpyBackend",
    "VALID_KERNEL_BACKENDS",
    "available_kernel_backends",
    "numba_available",
    "resolve_kernel_backend",
]

logger = logging.getLogger("repro.kernels")

#: Values ``JoinSpec.kernel_backend`` accepts.
VALID_KERNEL_BACKENDS = ("auto", "numpy", "numba")

#: Candidate row pairs per work-queue tile.  Large enough that the
#: cascade always engages on full tiles and per-tile dispatch overhead
#: vanishes; small enough that a tile's gathered coordinates stay
#: cache-friendly and the two preallocated int64 index buffers cost
#: only ~1 MiB.  The tile size is a property of the queue, not of the
#: backend: both backends see identical tiles, so the per-stage survivor
#: counters match exactly across backends.  This constant is the
#: fallback; ``repro calibrate`` sweeps tile sizes and stores the
#: fastest in the host's :class:`~repro.planner.profile.CostProfile`,
#: which queues constructed without an explicit ``tile_rows`` adopt.
DEFAULT_TILE_ROWS = 65_536

#: Environment override consulted when ``kernel_backend="auto"`` — the
#: CI matrix uses it to force ``numba`` (or prove the numpy fallback)
#: without touching every test's spec.
_ENV_BACKEND = "REPRO_KERNEL_BACKEND"


def gather_dims(cols: np.ndarray, dims: Sequence[int], rows: np.ndarray) -> np.ndarray:
    """``(m, b)`` block of the given dimensions for the given rows."""
    block = np.empty((len(rows), len(dims)), dtype=cols.dtype)
    for j, dim in enumerate(dims):
        block[:, j] = cols[dim][rows]
    return block


def gather_rows(cols: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """``(m, d)`` C-contiguous rows in natural dimension order."""
    return np.ascontiguousarray(cols[:, rows].T)


class KernelBackend:
    """One interchangeable implementation of the candidate-block filter.

    A backend receives one tile of aligned candidate row pairs (indices
    already translated into the column stores' global row space) plus
    the :class:`~repro.core.kernels.KernelContext` holding the plan,
    column stores and thresholds, and returns the boolean keep-mask.
    Implementations must be *exact*: the mask must equal the monolithic
    ``metric.within_rows`` verdict bit for bit.
    """

    #: Stable identifier recorded in ``JoinStats.kernel_backend``.
    name: str = "abstract"

    def filter_chunk(
        self,
        context,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        stats=None,
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name}>"


class NumpyBackend(KernelBackend):
    """Pure-numpy cascade: staged compaction with blocked reduction."""

    name = "numpy"

    def filter_chunk(
        self,
        context,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        stats=None,
    ) -> np.ndarray:
        plan = context.plan
        metric = context.metric
        cols_a = context.cols_a
        cols_b = context.cols_b
        n = len(rows_a)
        emit_events = trace.is_enabled()
        touched = 0
        # ``alive`` maps the compacted candidate arrays back to chunk
        # positions; ``acc`` is the per-row partial distance key.
        alive = np.arange(n, dtype=np.int64)
        acc = np.zeros(n, dtype=cols_a.dtype)
        survivors = []

        # Stage 1..n_filters: single-dimension pre-filters.
        for stage in range(plan.n_filters):
            dim = plan.order[stage]
            diff = np.abs(cols_a[dim][rows_a] - cols_b[dim][rows_b])
            touched += diff.size
            keep = np.flatnonzero(diff <= context.filter_bound)
            rows_a = rows_a[keep]
            rows_b = rows_b[keep]
            alive = alive[keep]
            # The filter dimension's contribution is already computed;
            # folding it into the accumulator tightens later pruning.
            acc = metric.accumulate_abs_diff(acc[keep], diff[keep][:, None], (dim,))
            survivors.append(len(keep))
            if emit_events:
                trace.add_event(
                    "cascade-stage",
                    stage=stage + 1,
                    kind="pre-filter",
                    dim=int(dim),
                    candidates=int(len(diff)),
                    survivors=int(len(keep)),
                )

        # Blocked short-circuit reduction over the remaining dimensions.
        remaining = plan.order[plan.n_filters:]
        reduction_in = len(rows_a)
        for start in range(0, len(remaining), plan.block_dims):
            if not len(rows_a):
                break
            block_dims = remaining[start:start + plan.block_dims]
            diff = np.abs(
                gather_dims(cols_a, block_dims, rows_a)
                - gather_dims(cols_b, block_dims, rows_b)
            )
            touched += diff.size
            acc = metric.accumulate_abs_diff(acc, diff, block_dims)
            keep = np.flatnonzero(acc <= context.prune_key)
            if len(keep) < len(rows_a):
                rows_a = rows_a[keep]
                rows_b = rows_b[keep]
                alive = alive[keep]
                acc = acc[keep]

        # Exact final check: reproduce the monolithic kernel's
        # computation (natural dimension order, C-contiguous rows) on
        # the few survivors, so boundary decisions match bit for bit.
        mask = np.zeros(n, dtype=bool)
        final_survivors = 0
        if len(rows_a):
            diff = np.abs(gather_rows(cols_a, rows_a) - gather_rows(cols_b, rows_b))
            touched += diff.size
            exact = metric._reduce_abs_diff(diff) <= context.exact_key
            mask[alive[exact]] = True
            final_survivors = int(np.count_nonzero(exact))
        survivors.append(final_survivors)
        if emit_events:
            trace.add_event(
                "cascade-stage",
                stage=plan.n_filters + 1,
                kind="reduction",
                candidates=int(reduction_in),
                survivors=final_survivors,
            )
        if stats is not None:
            for stage, count in enumerate(survivors):
                stats.cascade_survivors[stage] += count
            stats.coordinates_touched += touched
        return mask


# ----------------------------------------------------------------------
# numba backend
# ----------------------------------------------------------------------
def numba_available() -> bool:
    """Whether the optional ``numba`` package can be imported."""
    try:
        import importlib.util

        return importlib.util.find_spec("numba") is not None
    except Exception:  # pragma: no cover - importlib metadata breakage
        return False


#: Metric dispatch codes for the nopython pass (matching repro.metrics):
#: 0 = weighted max (Chebyshev), 1 = L1, 2 = L2, 3 = generic power p.
_P_INF, _P_ONE, _P_TWO, _P_GENERIC = 0, 1, 2, 3

_NUMBA_PASS = None


def _compile_survivor_pass():
    """Compile (once per process) the nopython cascade survivor pass.

    The compiled function runs stages 1 and 2 of the cascade — the
    per-dimension pre-filters and the per-row short-circuit accumulation
    with the *slacked* prune threshold — and writes the positions of the
    rows that survive into a preallocated buffer.  The exact final check
    deliberately stays in numpy (:meth:`NumbaBackend.filter_chunk`): it
    is the step that defines bit-exactness, so it must be the *same
    code* for every backend.

    All floating-point scalars arrive pre-cast to the column dtype, so
    each comparison is performed in exactly the precision numpy's weak
    scalar promotion would use — this is what makes the per-stage
    survivor counters identical across backends, not just the masks.
    """
    global _NUMBA_PASS
    if _NUMBA_PASS is not None:
        return _NUMBA_PASS
    import numba

    @numba.njit(nogil=True)
    def survivor_pass(
        cols_a,
        cols_b,
        rows_a,
        rows_b,
        order,
        n_filters,
        weights,
        p_code,
        p,
        filter_bound,
        prune_key,
        survivors,
        stage_counts,
    ):
        n = rows_a.shape[0]
        dims = order.shape[0]
        zero = filter_bound - filter_bound
        n_survivors = 0
        touched = 0
        for i in range(n):
            ra = rows_a[i]
            rb = rows_b[i]
            acc = zero
            alive = True
            for stage in range(n_filters):
                dim = order[stage]
                diff = abs(cols_a[dim, ra] - cols_b[dim, rb])
                touched += 1
                if diff > filter_bound:
                    alive = False
                    break
                stage_counts[stage] += 1
                if p_code == _P_INF:
                    term = weights[dim] * diff
                    if term > acc:
                        acc = term
                elif p_code == _P_ONE:
                    acc += weights[dim] * diff
                elif p_code == _P_TWO:
                    acc += weights[dim] * (diff * diff)
                else:
                    acc += weights[dim] * diff ** p
            if not alive:
                continue
            for stage in range(n_filters, dims):
                dim = order[stage]
                diff = abs(cols_a[dim, ra] - cols_b[dim, rb])
                touched += 1
                if p_code == _P_INF:
                    term = weights[dim] * diff
                    if term > acc:
                        acc = term
                elif p_code == _P_ONE:
                    acc += weights[dim] * diff
                elif p_code == _P_TWO:
                    acc += weights[dim] * (diff * diff)
                else:
                    acc += weights[dim] * diff ** p
                if acc > prune_key:
                    alive = False
                    break
            if alive:
                survivors[n_survivors] = i
                n_survivors += 1
        return n_survivors, touched

    _NUMBA_PASS = survivor_pass
    return survivor_pass


def _metric_code(metric) -> Optional[int]:
    """Dispatch code for the nopython pass, or ``None`` if unsupported."""
    from repro.metrics import ChebyshevMetric, LpMetric, WeightedLpMetric

    if isinstance(metric, ChebyshevMetric):
        return _P_INF
    if isinstance(metric, (LpMetric, WeightedLpMetric)):
        if metric.p == np.inf:
            return _P_INF
        if metric.p == 1.0:
            return _P_ONE
        if metric.p == 2.0:
            return _P_TWO
        return _P_GENERIC
    return None


class NumbaBackend(KernelBackend):
    """Nopython cascade + short-circuit L_p over the candidate tile.

    The survivor pass short-circuits per *dimension* (numpy can only
    prune per block of dimensions), so it touches strictly fewer
    coordinates; survivors then take the identical numpy exact check.
    Tiles whose column dtype or metric the compiled pass does not
    support fall back to :class:`NumpyBackend` row for row, keeping the
    backend universally safe to select.
    """

    name = "numba"

    def __init__(self) -> None:
        self._fallback = NumpyBackend()
        # Per-(dtype, metric) weight vectors; ones for unweighted
        # metrics so the pass has a single code path.
        self._weight_cache: dict = {}

    def _weights_for(self, metric, dims: int, dtype: np.dtype) -> np.ndarray:
        key = (id(metric), dims, dtype)
        cached = self._weight_cache.get(key)
        if cached is None:
            weights = getattr(metric, "weights", None)
            if weights is None:
                cached = np.ones(dims, dtype=dtype)
            else:
                cached = np.ascontiguousarray(weights, dtype=dtype)
            self._weight_cache[key] = cached
        return cached

    def filter_chunk(
        self,
        context,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        stats=None,
    ) -> np.ndarray:
        cols_a = context.cols_a
        cols_b = context.cols_b
        p_code = _metric_code(context.metric)
        if p_code is None or cols_a.dtype not in (np.float32, np.float64):
            return self._fallback.filter_chunk(context, rows_a, rows_b, stats)
        survivor_pass = _compile_survivor_pass()
        plan = context.plan
        n = len(rows_a)
        dtype = cols_a.dtype.type
        order = np.asarray(plan.order, dtype=np.int64)
        weights = self._weights_for(context.metric, len(plan.order), cols_a.dtype)
        survivors = np.empty(n, dtype=np.int64)
        stage_counts = np.zeros(max(plan.n_filters, 1), dtype=np.int64)
        p = context.metric.p if p_code == _P_GENERIC else 2.0
        n_survivors, touched = survivor_pass(
            cols_a,
            cols_b,
            np.ascontiguousarray(rows_a, dtype=np.int64),
            np.ascontiguousarray(rows_b, dtype=np.int64),
            order,
            plan.n_filters,
            weights,
            p_code,
            dtype(p),
            dtype(context.filter_bound),
            dtype(context.prune_key),
            survivors,
            stage_counts,
        )
        alive = survivors[:n_survivors]
        # Exact final check — the same numpy computation every backend
        # runs, so boundary decisions match the monolithic kernel bit
        # for bit.
        mask = np.zeros(n, dtype=bool)
        final_survivors = 0
        if n_survivors:
            diff = np.abs(
                gather_rows(cols_a, rows_a[alive])
                - gather_rows(cols_b, rows_b[alive])
            )
            touched += diff.size
            exact = context.metric._reduce_abs_diff(diff) <= context.exact_key
            mask[alive[exact]] = True
            final_survivors = int(np.count_nonzero(exact))
        if trace.is_enabled():
            trace.add_event(
                "cascade-chunk",
                backend=self.name,
                candidates=int(n),
                reduction_survivors=int(n_survivors),
                survivors=final_survivors,
            )
        if stats is not None:
            for stage in range(plan.n_filters):
                stats.cascade_survivors[stage] += int(stage_counts[stage])
            stats.cascade_survivors[-1] += final_survivors
            stats.coordinates_touched += int(touched)
        return mask


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
_INSTANCES: dict = {}
_AUTO_LOGGED = False
_FALLBACK_WARNED = False


def _instance(name: str) -> KernelBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _INSTANCES[name] = (
            NumbaBackend() if name == "numba" else NumpyBackend()
        )
    return backend


def available_kernel_backends() -> tuple:
    """Backend names usable in this environment, default first."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def resolve_kernel_backend(name: str = "auto") -> KernelBackend:
    """Resolve a ``kernel_backend`` spec value to a backend instance.

    ``"auto"`` prefers numba when it is importable (the compiled cascade
    wins from roughly d >= 16) and may be overridden by the
    ``REPRO_KERNEL_BACKEND`` environment variable — which is how the CI
    matrix forces one backend across a whole test run.  An explicit
    ``"numba"`` on a machine without numba falls back to numpy with a
    one-time warning rather than failing: backend choice is a runtime
    performance knob and never affects results.
    """
    global _AUTO_LOGGED, _FALLBACK_WARNED
    if name not in VALID_KERNEL_BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}: valid values are "
            f"{', '.join(repr(v) for v in VALID_KERNEL_BACKENDS)}"
        )
    if name == "auto":
        env = os.environ.get(_ENV_BACKEND, "").strip().lower()
        if env:
            if env not in ("numpy", "numba"):
                raise ConfigError(
                    f"invalid {_ENV_BACKEND}={env!r}: valid values are "
                    "'numpy', 'numba'"
                )
            name = env
        else:
            name = "numba" if numba_available() else "numpy"
        if not _AUTO_LOGGED:
            _AUTO_LOGGED = True
            logger.info("kernel_backend=auto resolved to %r", name)
    if name == "numba" and not numba_available():
        if not _FALLBACK_WARNED:
            _FALLBACK_WARNED = True
            logger.warning(
                "kernel_backend='numba' requested but numba is not "
                "installed; falling back to the numpy backend"
            )
        name = "numpy"
    return _instance(name)


# ----------------------------------------------------------------------
# batched leaf-pair work-queue
# ----------------------------------------------------------------------
class LeafBatchQueue:
    """Accumulate per-leaf candidate pairs; filter in backend-sized tiles.

    The leaf sort-merge sweeps produce many small candidate lists (one
    per band per leaf); filtering each individually pays per-call
    dispatch and — below ``MIN_CASCADE_ROWS`` — forfeits the cascade
    entirely.  The queue copies incoming candidate indices into two
    preallocated int64 tile buffers and invokes ``filter_rows`` exactly
    once per full tile (plus once for the remainder at ``flush``),
    emitting the surviving pairs through ``emit``.

    Exactness: every backend's verdict is a pure per-row function, so
    regrouping candidates across leaves cannot change any verdict — only
    the number of backend invocations.  Callers **must** call
    :meth:`flush` before consuming their sink.
    """

    __slots__ = ("_filter_rows", "_emit", "tile_rows", "_buf_a", "_buf_b", "_fill")

    def __init__(
        self,
        filter_rows: Callable[[np.ndarray, np.ndarray], np.ndarray],
        emit: Callable[[np.ndarray, np.ndarray], None],
        tile_rows: Optional[int] = None,
    ):
        if tile_rows is None:
            # The calibrated host profile carries the auto-tuned tile
            # size (function-level import: planner.profile is stdlib-only
            # and must never import core at module level, so the
            # dependency points this way, lazily).
            from repro.planner.profile import active_tile_rows

            tile_rows = active_tile_rows()
        if tile_rows < 1:
            raise ConfigError(f"tile_rows must be >= 1, got {tile_rows!r}")
        self._filter_rows = filter_rows
        self._emit = emit
        self.tile_rows = int(tile_rows)
        self._buf_a = np.empty(self.tile_rows, dtype=np.int64)
        self._buf_b = np.empty(self.tile_rows, dtype=np.int64)
        self._fill = 0

    def add(self, rows_a: np.ndarray, rows_b: np.ndarray) -> None:
        """Enqueue one leaf's aligned candidate row pairs."""
        n = len(rows_a)
        pos = 0
        while pos < n:
            take = min(self.tile_rows - self._fill, n - pos)
            stop = self._fill + take
            self._buf_a[self._fill:stop] = rows_a[pos:pos + take]
            self._buf_b[self._fill:stop] = rows_b[pos:pos + take]
            self._fill = stop
            pos += take
            if self._fill == self.tile_rows:
                self.flush()

    def flush(self) -> None:
        """Filter and emit everything currently buffered."""
        if not self._fill:
            return
        left = self._buf_a[:self._fill]
        right = self._buf_b[:self._fill]
        mask = self._filter_rows(left, right)
        # Boolean indexing copies, so the emitted arrays do not alias
        # the tile buffers the next fill cycle overwrites.
        self._emit(left[mask], right[mask])
        self._fill = 0

    @property
    def pending(self) -> int:
        """Buffered candidate pairs not yet filtered."""
        return self._fill
