"""Join configuration.

:class:`JoinSpec` gathers every knob of the epsilon-kdB join so the tree
builder, the traversal and the external-memory driver agree on one
validated parameter set.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError, InvalidParameterError
from repro.metrics import LpMetric, Metric, WeightedLpMetric, get_metric

#: Default leaf split threshold; the paper reports a broad flat optimum,
#: which experiment E4 reproduces.
DEFAULT_LEAF_SIZE = 128

#: ``cascade="auto"`` engages the filter-cascade kernels from this
#: dimensionality up.  Below it the candidate rows are so short that the
#: cascade's extra passes cost more than the coordinates they skip.
CASCADE_AUTO_MIN_DIMS = 8

#: Upper bound on auto-selected pre-filter stages; past a few single
#: dimension masks the surviving rows are cheaper to finish in blocks.
MAX_FILTER_DIMS = 3

#: Floor of the auto-selected delta-buffer compaction threshold; below
#: this the probe joins are so cheap that compacting is pure overhead.
MIN_DELTA_THRESHOLD = 256

#: Default bucket-count exponent of the streaming join-size sketch
#: (``2**12`` = 4096 buckets, 32 KiB of int64 counters).
DEFAULT_SKETCH_BITS = 12


@dataclass
class JoinSpec:
    """Validated parameters of one similarity join.

    Attributes:
        epsilon: the distance threshold of the join predicate
            ``dist(x, y) <= epsilon``; must be positive.
        metric: any value accepted by :func:`repro.metrics.get_metric`.
        leaf_size: a leaf of the epsilon-kdB tree splits once it holds
            more than this many points (and unsplit dimensions remain).
        split_order: the order in which dimensions are used for
            splitting; ``None`` means natural order ``0, 1, ..., d-1``.
            Experiment E10 uses this to ablate *biased* splitting
            (split the most spread-out dimensions first).
        sort_dim: dimension used for the leaf-level sort-merge sweep;
            ``None`` picks the last dimension in ``split_order``, which
            is the dimension least likely to have been split.
        adjacency_pruning: when ``False`` the traversal joins *every*
            pair of children instead of only adjacent cells.  Only the
            E10 ablation turns this off; results are identical, work is
            not.
        n_workers: process count for the parallel executor; ``None``
            means "decide at run time" (all available cores), ``1``
            forces the serial path.  Ignored by the serial entry points.
        stripe_overlap: width of the boundary band each parallel stripe
            borrows from its successor.  ``None`` means the minimum safe
            width (the metric's per-coordinate bound, i.e. one grid
            cell); anything smaller is rejected at plan time because it
            would lose boundary pairs.
        task_timeout: per-stripe-task deadline in seconds for the
            parallel executor; a task attempt exceeding it is counted in
            ``JoinStats.tasks_timed_out`` and re-dispatched.  ``None``
            (the default) disables deadlines.
        max_task_retries: how many times a failed or timed-out stripe
            task is re-dispatched to the pool before the executor runs
            it one final time in the parent process.  ``0`` still allows
            that final in-parent attempt.
        cascade: ``"auto"`` (default) engages the filter-cascade
            distance kernels of :mod:`repro.core.kernels` when the
            dimensionality is at least ``CASCADE_AUTO_MIN_DIMS`` and the
            metric supports them; ``"on"`` forces them for any ``d >= 2``;
            ``"off"`` always uses the monolithic full-row kernel.  The
            cascade never changes the result, only the work per
            candidate.
        filter_dims: number of cheap single-dimension pre-filter stages
            the cascade runs before the blocked short-circuit reduction;
            ``None`` picks ``max(1, min(3, d // 8))``, ``0`` disables the
            pre-filter stages (blocked reduction only).
        build: which tree construction the join entry points use.
            ``"flat"`` is the vectorized radix build
            (:class:`repro.core.flat_build.FlatEpsilonKdbTree`);
            ``"pointer"`` is the per-node object build
            (:class:`repro.core.epsilon_kdb.EpsilonKdbTree`); ``"auto"``
            (default) currently means ``"flat"``.  Both builds produce
            the same leaf partition and byte-identical join results.
        delta_threshold: live delta-buffer rows at which an
            :class:`~repro.core.incremental.IncrementalJoin` session
            compacts automatically.  ``None`` (default) scales with the
            base structure: ``max(MIN_DELTA_THRESHOLD, base_size // 8)``.
            Ignored by the batch entry points.
        sketch_bits: bucket-count exponent of the session's streaming
            join-size sketch (``2**sketch_bits`` buckets); larger values
            reduce hash-collision bias at a linear memory cost.
        persist_path: directory an
            :class:`~repro.core.incremental.IncrementalJoin` session
            journals and snapshots itself into (see docs/persistence.md).
            ``None`` (default) keeps the session memory-only.  Ignored
            by the batch entry points.
        sync_mode: fsync policy of the persisted session's write-ahead
            log: ``"always"`` (fsync per update batch — every
            acknowledged update survives a crash), ``"batch"`` (default;
            flush per batch, fsync at snapshot boundaries and close) or
            ``"off"`` (never fsync; fastest, weakest).  Only meaningful
            with ``persist_path``.
        admission_threshold: sketch-estimated join size above which an
            :class:`~repro.core.incremental.IncrementalJoin` *refuses*
            an insert batch with
            :class:`~repro.errors.AdmissionError` (before journaling or
            mutating anything).  The check uses the session's one-pass
            join-size sketch: add the batch, estimate, remove the batch
            — exact on the sketch's integer counters, so a refused batch
            leaves no trace.  ``None`` (default) disables admission
            control.  A runtime knob: not part of the persisted
            structural fingerprint, and replayed WAL records bypass it
            (they were admitted when first applied).
        keep_generations: how many snapshot generations a persisted
            session retains when it publishes a new one (older
            generations are pruned).  More generations widen the
            corruption-fallback window at a linear disk cost; the
            minimum of 1 keeps only the newest.  A runtime knob, free to
            differ across re-opens of the same session.
        kernel_backend: which :class:`~repro.core.backends.KernelBackend`
            executes the leaf filter cascade: ``"auto"`` (default —
            numba when importable, honoring the ``REPRO_KERNEL_BACKEND``
            environment override), ``"numpy"``, or ``"numba"`` (falls
            back to numpy with a one-time warning when numba is not
            installed).  A pure runtime performance knob: every backend
            emits byte-identical pairs, so it is excluded from the
            structural fingerprint and free to differ across re-opens of
            the same persisted session.
        engine: which execution strategy runs the join: ``"auto"``
            (default — the cost-based planner in :mod:`repro.planner`
            scores every viable strategy against the calibrated host
            profile and picks the cheapest), or a pinned ``"serial"``,
            ``"pointer"``, ``"parallel"``, ``"external"``, or
            ``"sort-merge"``.  Every strategy emits byte-identical
            pairs, so — like ``kernel_backend`` — this is a pure runtime
            knob excluded from the structural fingerprint.
    """

    epsilon: float
    metric: Union[str, float, Metric] = "l2"
    leaf_size: int = DEFAULT_LEAF_SIZE
    split_order: Optional[Sequence[int]] = None
    sort_dim: Optional[int] = None
    adjacency_pruning: bool = True
    n_workers: Optional[int] = None
    stripe_overlap: Optional[float] = None
    task_timeout: Optional[float] = None
    max_task_retries: int = 2
    cascade: str = "auto"
    filter_dims: Optional[int] = None
    build: str = "auto"
    delta_threshold: Optional[int] = None
    sketch_bits: int = DEFAULT_SKETCH_BITS
    persist_path: Optional[str] = None
    sync_mode: str = "batch"
    admission_threshold: Optional[float] = None
    keep_generations: int = 2
    kernel_backend: str = "auto"
    engine: str = "auto"

    def __post_init__(self) -> None:
        if not np.isfinite(self.epsilon) or self.epsilon <= 0:
            raise InvalidParameterError(
                f"epsilon must be a positive finite number, got {self.epsilon!r}"
            )
        self.epsilon = float(self.epsilon)
        self.metric = get_metric(self.metric)
        if int(self.leaf_size) < 1:
            raise InvalidParameterError(
                f"leaf_size must be >= 1, got {self.leaf_size!r}"
            )
        self.leaf_size = int(self.leaf_size)
        if self.n_workers is not None:
            if int(self.n_workers) < 1:
                raise InvalidParameterError(
                    f"n_workers must be >= 1, got {self.n_workers!r}"
                )
            self.n_workers = int(self.n_workers)
        if self.stripe_overlap is not None:
            overlap = float(self.stripe_overlap)
            if not np.isfinite(overlap) or overlap <= 0:
                raise InvalidParameterError(
                    "stripe_overlap must be a positive finite number, "
                    f"got {self.stripe_overlap!r}"
                )
            self.stripe_overlap = overlap
        if self.task_timeout is not None:
            timeout = float(self.task_timeout)
            if not np.isfinite(timeout) or timeout <= 0:
                raise InvalidParameterError(
                    "task_timeout must be a positive finite number of "
                    f"seconds, got {self.task_timeout!r}"
                )
            self.task_timeout = timeout
        if int(self.max_task_retries) < 0:
            raise InvalidParameterError(
                f"max_task_retries must be >= 0, got {self.max_task_retries!r}"
            )
        self.max_task_retries = int(self.max_task_retries)
        if self.cascade not in ("auto", "on", "off"):
            raise InvalidParameterError(
                f'cascade must be "auto", "on" or "off", got {self.cascade!r}'
            )
        if self.filter_dims is not None:
            if int(self.filter_dims) < 0:
                raise InvalidParameterError(
                    f"filter_dims must be >= 0, got {self.filter_dims!r}"
                )
            self.filter_dims = int(self.filter_dims)
        if self.build not in ("auto", "flat", "pointer"):
            raise InvalidParameterError(
                f'build must be "auto", "flat" or "pointer", got {self.build!r}'
            )
        if self.delta_threshold is not None:
            if int(self.delta_threshold) < 1:
                raise InvalidParameterError(
                    f"delta_threshold must be >= 1, got {self.delta_threshold!r}"
                )
            self.delta_threshold = int(self.delta_threshold)
        if not 4 <= int(self.sketch_bits) <= 24:
            raise InvalidParameterError(
                f"sketch_bits must be in [4, 24], got {self.sketch_bits!r}"
            )
        self.sketch_bits = int(self.sketch_bits)
        if self.persist_path is not None:
            self.persist_path = str(self.persist_path)
        if self.sync_mode not in ("always", "batch", "off"):
            raise InvalidParameterError(
                f'sync_mode must be "always", "batch" or "off", '
                f"got {self.sync_mode!r}"
            )
        if self.admission_threshold is not None:
            threshold = float(self.admission_threshold)
            if not np.isfinite(threshold) or threshold < 0:
                raise InvalidParameterError(
                    "admission_threshold must be a non-negative finite "
                    f"number, got {self.admission_threshold!r}"
                )
            self.admission_threshold = threshold
        if int(self.keep_generations) < 1:
            raise InvalidParameterError(
                f"keep_generations must be >= 1, got {self.keep_generations!r}"
            )
        self.keep_generations = int(self.keep_generations)
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            raise ConfigError(
                f"unknown kernel backend {self.kernel_backend!r}: valid "
                "values are 'auto', 'numpy', 'numba'"
            )
        if self.engine not in (
            "auto", "serial", "pointer", "parallel", "external", "sort-merge"
        ):
            raise ConfigError(
                f"unknown engine {self.engine!r}: valid values are 'auto', "
                "'serial', 'pointer', 'parallel', 'external', 'sort-merge'"
            )

    def resolved_build(self) -> str:
        """The effective tree build strategy (``"flat"`` or ``"pointer"``)."""
        return "flat" if self.build == "auto" else self.build

    def structural_dict(self) -> Dict[str, Any]:
        """The result-shaping parameters as JSON-ready data.

        This is what a persisted session stores as its spec fingerprint:
        everything that determines *which pairs* a join emits and how
        the structure partitions — but not the runtime knobs
        (``n_workers``, ``task_timeout``, ``persist_path``, ``sync_mode``
        and friends), which a re-opened session may freely change.
        Raises for metrics without a stable serialization (custom
        :class:`~repro.metrics.Metric` subclasses).
        """
        metric = self.metric
        if isinstance(metric, WeightedLpMetric):
            metric_data: Dict[str, Any] = {
                "kind": "weighted",
                "p": metric.p,
                "weights": [float(w) for w in metric.weights],
            }
        elif isinstance(metric, LpMetric):
            metric_data = {"kind": "lp", "p": metric.p}
        elif metric.name == "linf":
            metric_data = {"kind": "named", "name": "linf"}
        else:
            raise InvalidParameterError(
                f"metric {metric.name!r} has no stable serialization; "
                "persisted sessions support the L_p family only"
            )
        return {
            "epsilon": self.epsilon,
            "metric": metric_data,
            "leaf_size": self.leaf_size,
            "split_order": (
                None
                if self.split_order is None
                else [int(d) for d in self.split_order]
            ),
            "sort_dim": self.sort_dim,
            "adjacency_pruning": bool(self.adjacency_pruning),
            "cascade": self.cascade,
            "filter_dims": self.filter_dims,
            "build": self.build,
            "delta_threshold": self.delta_threshold,
            "sketch_bits": self.sketch_bits,
        }

    def fingerprint(self) -> str:
        """Content hash of :meth:`structural_dict` (the persisted identity)."""
        blob = json.dumps(self.structural_dict(), sort_keys=True).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    @classmethod
    def from_structural_dict(cls, data: Dict[str, Any], **runtime) -> "JoinSpec":
        """Rebuild a spec from :meth:`structural_dict` output.

        ``runtime`` supplies the non-structural knobs (``persist_path``,
        ``sync_mode``, ``n_workers``, ...) the caller wants on the
        rebuilt spec.
        """
        metric_data = data["metric"]
        kind = metric_data.get("kind")
        if kind == "weighted":
            metric: Union[str, float, Metric] = WeightedLpMetric(
                metric_data["p"], np.asarray(metric_data["weights"])
            )
        elif kind == "lp":
            metric = get_metric(metric_data["p"])
        elif kind == "named":
            metric = get_metric(metric_data["name"])
        else:
            raise InvalidParameterError(
                f"unknown serialized metric kind {kind!r}"
            )
        return cls(
            epsilon=data["epsilon"],
            metric=metric,
            leaf_size=data["leaf_size"],
            split_order=data["split_order"],
            sort_dim=data["sort_dim"],
            adjacency_pruning=data["adjacency_pruning"],
            cascade=data["cascade"],
            filter_dims=data["filter_dims"],
            build=data["build"],
            delta_threshold=data["delta_threshold"],
            sketch_bits=data["sketch_bits"],
            **runtime,
        )

    def resolved_delta_threshold(self, base_size: int) -> int:
        """Delta-buffer size that triggers compaction, given the base size.

        The auto heuristic keeps the delta a small fraction of the base
        so probe joins stay cheap relative to a rebuild, with a floor so
        tiny sessions are not compacting after every batch.
        """
        if self.delta_threshold is not None:
            return self.delta_threshold
        return max(MIN_DELTA_THRESHOLD, int(base_size) // 8)

    def resolved_stripe_overlap(self) -> float:
        """The effective boundary-band width for parallel stripes.

        Must be at least :attr:`band_width`: a narrower band could miss
        a qualifying pair that spans a stripe boundary.
        """
        if self.stripe_overlap is None:
            return self.band_width
        if self.stripe_overlap < self.band_width:
            raise InvalidParameterError(
                f"stripe_overlap {self.stripe_overlap} is narrower than the "
                f"metric's per-coordinate bound {self.band_width}; boundary "
                "pairs would be lost"
            )
        return self.stripe_overlap

    @property
    def band_width(self) -> float:
        """Per-coordinate pruning width implied by the metric.

        Grid cells, band sweeps and stripes all filter one coordinate at
        a time; this is the width they must use so that no qualifying
        pair is pruned.  Equals ``epsilon`` for unweighted L_p metrics
        and ``metric.coordinate_bound(epsilon)`` in general (weighted
        metrics with small weights allow larger per-coordinate gaps).
        """
        return self.metric.coordinate_bound(self.epsilon)

    def cascade_enabled(self, dims: int) -> bool:
        """Whether the filter-cascade kernels run for ``dims``-dim data.

        ``"off"`` (or a metric without block-wise accumulation) always
        disables; ``"on"`` forces the cascade whenever there is more than
        one dimension to cascade over; ``"auto"`` requires
        ``dims >= CASCADE_AUTO_MIN_DIMS``, below which the monolithic
        kernel is already bound by the gather, not the reduction.
        """
        if self.cascade == "off":
            return False
        if not getattr(self.metric, "supports_cascade", False):
            return False
        if dims < 2:
            return False
        if self.cascade == "on":
            return True
        return dims >= CASCADE_AUTO_MIN_DIMS

    def resolved_filter_dims(self, dims: int) -> int:
        """Effective pre-filter stage count for ``dims``-dimensional data.

        Always leaves at least one dimension to the reduction stage so
        the stage structure is well defined for any ``dims >= 2``.
        """
        if self.filter_dims is not None:
            return min(self.filter_dims, dims - 1)
        return min(max(1, min(MAX_FILTER_DIMS, dims // CASCADE_AUTO_MIN_DIMS)), dims - 1)

    def resolved_split_order(self, dims: int) -> np.ndarray:
        """Return the split order as a validated permutation of ``range(dims)``."""
        if self.split_order is None:
            return np.arange(dims)
        order = np.asarray(self.split_order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(dims)):
            raise InvalidParameterError(
                f"split_order must be a permutation of range({dims}), "
                f"got {list(order)}"
            )
        return order

    def resolved_sort_dim(self, dims: int) -> int:
        """Return the leaf sort-merge dimension for ``dims``-dimensional data."""
        if self.sort_dim is None:
            return int(self.resolved_split_order(dims)[-1])
        sort_dim = int(self.sort_dim)
        if not 0 <= sort_dim < dims:
            raise InvalidParameterError(
                f"sort_dim must be in [0, {dims}), got {sort_dim}"
            )
        return sort_dim


def validate_points(points: np.ndarray, name: str = "points") -> np.ndarray:
    """Coerce a points argument to a 2-D float64 array and validate it."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise InvalidParameterError(
            f"{name} must be a 2-D (n, d) array, got shape {arr.shape}"
        )
    if arr.shape[1] == 0:
        raise InvalidParameterError(f"{name} must have at least one dimension")
    if not np.isfinite(arr).all():
        raise InvalidParameterError(f"{name} contains NaN or infinite values")
    return arr
