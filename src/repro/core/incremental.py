"""Incremental streaming similarity joins over a mutable point set.

The batch entry points answer one join over a frozen array; a live
serving system instead sees a *stream* of updates and wants the result
pairs each update adds or removes, without rebuilding the structure per
batch ("Dynamic Enumeration of Similarity Joins", PAPERS.md).

:class:`IncrementalJoin` keeps the classic LSM shape:

* a **base** structure — a :class:`~repro.core.flat_build.FlatEpsilonKdbTree`
  over the points at the last compaction, with a tombstone bit per row;
* a **delta buffer** — points inserted since, joined by brute tree
  probes rather than indexed.

``insert(points)`` emits exactly the pairs the batch creates, as three
disjoint sub-joins through the existing cascade kernels: within the
batch (self-join), batch vs the live delta (two-set join), and batch vs
the base via a shared-grid probe of the base tree (the batch tree is
built on the *base grid*, so :func:`~repro.core.join.flat_cross_join`
applies unchanged).  ``delete(ids)`` is symmetric and emits the pairs it
retracts.  When the delta outgrows ``spec.resolved_delta_threshold`` (or
on an explicit :meth:`~IncrementalJoin.compact`), live rows are merged
into a fresh base tree through the shared
:class:`~repro.core.flat_build.TreeCache`; the swap happens only after
the build succeeds, so an injected :class:`~repro.errors.TransientIoError`
mid-compaction leaves the session state untouched.

The correctness contract — enforced by the stateful hypothesis suite and
the differential matrix — is exact enumeration: after any prefix of any
update stream, the accumulated emitted pairs minus the retracted pairs
are byte-identical to a from-scratch batch join over the surviving
points.

:class:`JoinSizeSketch` adds the one-pass size estimator of Rafiei &
Deng (PAPERS.md): points hash by their randomly-shifted epsilon-cell
into ``2**sketch_bits`` counters, whose collision count yields an
unbiased estimate of the number of same-cell pairs — a constant-factor
proxy for the join size, cheap enough to maintain per update batch.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import Grid
from repro.core.flat_build import FlatEpsilonKdbTree, TreeCache
from repro.core.join import (
    _JoinContext,
    epsilon_kdb_join,
    epsilon_kdb_self_join,
    flat_cross_join,
)
from repro.core.kernels import build_kernel_context
from repro.core.resilience import FaultPlan, retry_transient
from repro.core.result import JoinResult, JoinStats, PairCollector
from repro.errors import (
    AdmissionError,
    CorruptSnapshotError,
    InvalidParameterError,
    StorageError,
    TransientIoError,
)
from repro.obs import trace
from repro.storage.snapshot import (
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.storage.wal import (
    OP_INSERT,
    WAL_FILENAME,
    WriteAheadLog,
    encode_delete,
    encode_insert,
    scan_wal,
)

#: Transient-failure retry budget for the compaction build.
DEFAULT_IO_RETRIES = 2

#: Seed of the sketch's random shift and hash multipliers; fixed so two
#: sessions over the same stream report the same estimates.
DEFAULT_SKETCH_SEED = 0x5EED

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def _canonical_id_pairs(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Orient id pairs ``lo < hi`` and sort lexicographically."""
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    pairs = np.column_stack([lo, hi]).astype(np.int64, copy=False)
    if len(pairs):
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
    return pairs


def subtract_pairs(pairs: np.ndarray, remove: np.ndarray) -> np.ndarray:
    """Canonical set difference of two duplicate-free pair arrays.

    ``remove`` must be a subset of ``pairs`` (the session guarantees a
    retracted pair was emitted before, and emitted exactly once — ids
    are never reused).  Stacking ``pairs`` with two copies of ``remove``
    makes every removed row appear three times and every kept row once,
    so one ``np.unique`` pass both filters and canonicalizes.
    """
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    remove = np.asarray(remove, dtype=np.int64).reshape(-1, 2)
    stacked = np.concatenate([pairs, remove, remove])
    uniq, counts = np.unique(stacked, axis=0, return_counts=True)
    return uniq[counts == 1]


class JoinSizeSketch:
    """One-pass estimator of the self-join size of a dynamic point set.

    Each point hashes by its cell in a randomly shifted grid of width
    ``cell_width`` (the spec's per-coordinate band) into one of
    ``2**bits`` counters.  The sketch maintains ``n`` and the number of
    same-bucket pairs ``S`` incrementally under both inserts and
    deletes; :meth:`estimate` removes the expected hash-collision mass,
    giving an unbiased estimate of the number of *same-cell* pairs.
    Two points within distance ``epsilon`` land in the same shifted cell
    with probability ``prod_k(1 - |x_k - y_k| / w)`` — a constant factor
    of the join size for a fixed dimensionality, which is all admission
    control needs (the documented empirical bound is measured by
    benchmark E18).
    """

    def __init__(
        self,
        cell_width: float,
        bits: int = 12,
        seed: int = DEFAULT_SKETCH_SEED,
    ):
        if not np.isfinite(cell_width) or cell_width <= 0:
            raise InvalidParameterError(
                f"cell_width must be a positive finite number, got {cell_width!r}"
            )
        self.cell_width = float(cell_width)
        self.n_buckets = 1 << int(bits)
        self._seed = int(seed)
        self._shift: Optional[np.ndarray] = None
        self._mults: Optional[np.ndarray] = None
        self.counts = np.zeros(self.n_buckets, dtype=np.int64)
        self.n = 0
        self._same_bucket_pairs = 0

    def _buckets(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        d = points.shape[1]
        if self._shift is None:
            rng = np.random.default_rng(self._seed)
            self._shift = rng.uniform(0.0, self.cell_width, size=d)
            self._mults = rng.integers(1, 2**62, size=d, dtype=np.int64) | 1
        elif len(self._shift) != d:
            raise InvalidParameterError(
                f"sketch was built for {len(self._shift)}-dimensional points, got {d}"
            )
        cells = np.floor((points + self._shift) / self.cell_width).astype(np.int64)
        with np.errstate(over="ignore"):
            h = (cells * self._mults).sum(axis=1, dtype=np.int64)
            h = h * np.int64(-7046029254386353131)  # 64-bit Fibonacci mix
            h ^= h >> np.int64(32)
        return h & np.int64(self.n_buckets - 1)

    def add(self, points: np.ndarray) -> None:
        buckets = self._buckets(points)
        delta = np.bincount(buckets, minlength=self.n_buckets)
        self._same_bucket_pairs += int(
            (self.counts * delta).sum() + (delta * (delta - 1) // 2).sum()
        )
        self.counts += delta
        self.n += len(buckets)

    def remove(self, points: np.ndarray) -> None:
        """Inverse of :meth:`add` for points previously added."""
        buckets = self._buckets(points)
        delta = np.bincount(buckets, minlength=self.n_buckets)
        self.counts -= delta
        if (self.counts < 0).any():
            self.counts += delta
            raise InvalidParameterError(
                "sketch.remove() saw points that were never added"
            )
        self._same_bucket_pairs -= int(
            (self.counts * delta).sum() + (delta * (delta - 1) // 2).sum()
        )
        self.n -= len(buckets)

    def estimate(self) -> float:
        """Unbiased estimate of the same-cell pair count (clamped at 0)."""
        if self.n < 2:
            return 0.0
        buckets = float(self.n_buckets)
        total_pairs = self.n * (self.n - 1) / 2.0
        unbiased = (self._same_bucket_pairs - total_pairs / buckets) / (
            1.0 - 1.0 / buckets
        )
        return max(0.0, unbiased)


@dataclass
class UpdateDelta:
    """Result of one ``insert``/``delete`` batch.

    Attributes:
        ids: ids assigned to the batch (insert) or removed (delete).
        added: canonical ``(k, 2)`` id pairs the batch created.
        retracted: canonical ``(k, 2)`` id pairs the batch removed.
    """

    ids: np.ndarray = field(default_factory=lambda: _EMPTY_IDS.copy())
    added: np.ndarray = field(default_factory=lambda: _EMPTY_PAIRS.copy())
    retracted: np.ndarray = field(default_factory=lambda: _EMPTY_PAIRS.copy())


class IncrementalJoin:
    """A long-lived self-join session over a mutable point set.

    Points carry monotonically increasing int64 ids assigned by
    :meth:`insert` (never reused); all emitted pairs are id pairs with
    ``lo < hi``, lexicographically sorted.  See the module docstring for
    the base/delta architecture and the exactness contract.

    Args:
        spec: join parameters; ``spec.delta_threshold`` (via
            :meth:`~repro.core.config.JoinSpec.resolved_delta_threshold`)
            sets the auto-compaction trigger and ``spec.sketch_bits``
            sizes the join-size sketch.
        engine: ``"serial"`` (default) runs every sub-join in process;
            ``"parallel"`` routes the batch-vs-base probe (the dominant
            cost) through
            :class:`~repro.core.parallel.ParallelJoinExecutor`.  Both
            engines emit byte-identical deltas.
        structure_cache: a shared
            :class:`~repro.core.flat_build.TreeCache` reused across
            compactions (and across sessions); ``None`` creates a
            private one.
        fault_plan: a :class:`~repro.core.resilience.FaultPlan` whose
            ``io_fault`` sites fire once per compaction *attempt*
            (ordinals count attempts, so a retried compaction consumes
            the next ordinal); its storage-corruption faults fire at the
            WAL-append and snapshot-publish sites of a persisted
            session.
        io_retries: transient-failure retry budget per compaction.
        use_processes / n_workers: forwarded to the parallel executor.

    When ``spec.persist_path`` is set the session is durable: every
    update batch is journaled to a write-ahead log *before* it mutates
    session state, every compaction publishes a checksummed snapshot
    (and truncates the log), and :meth:`open` recovers the exact session
    from the last durable snapshot plus the log suffix — including after
    a crash, a torn write, or a corrupted file (see docs/persistence.md).
    The constructor only ever *creates* a persisted session; a directory
    that already holds one must go through :meth:`open`.
    """

    def __init__(
        self,
        spec: JoinSpec,
        *,
        engine: str = "serial",
        structure_cache: Optional[TreeCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        io_retries: int = DEFAULT_IO_RETRIES,
        use_processes: bool = True,
        n_workers: Optional[int] = None,
    ):
        if engine not in ("serial", "parallel"):
            raise InvalidParameterError(
                f'engine must be "serial" or "parallel", got {engine!r}'
            )
        if int(io_retries) < 0:
            raise InvalidParameterError(
                f"io_retries must be >= 0, got {io_retries!r}"
            )
        self.spec = spec
        self.engine = engine
        self.stats = JoinStats()
        self._cache = TreeCache() if structure_cache is None else structure_cache
        self._fault_plan = fault_plan
        self._io_retries = int(io_retries)
        self._use_processes = use_processes
        self._n_workers = n_workers
        self._executor = None
        self._dims: Optional[int] = None
        self._sketch: Optional[JoinSizeSketch] = None
        self._next_id = 0
        self._compact_attempts = 0
        self._base_points = np.empty((0, 0), dtype=np.float64)
        self._base_ids = _EMPTY_IDS.copy()
        self._base_alive = np.empty(0, dtype=bool)
        self._base_tree: Optional[FlatEpsilonKdbTree] = None
        self._delta_points = np.empty((0, 0), dtype=np.float64)
        self._delta_ids = _EMPTY_IDS.copy()
        self._delta_alive = np.empty(0, dtype=bool)
        self._persist_dir: Optional[str] = spec.persist_path
        self._wal: Optional[WriteAheadLog] = None
        self._snapshot_seq = -1
        self._update_seq = 0
        self._replaying = False
        if self._persist_dir is not None:
            self._init_fresh_storage()

    # ------------------------------------------------------------------
    # persistence lifecycle
    # ------------------------------------------------------------------
    def _init_fresh_storage(self) -> None:
        """Create the session directory, journal and initial snapshot.

        The seq-0 snapshot of the empty session guarantees a durable
        prefix exists from the first moment, so recovery always has a
        consistent state to fall back to.
        """
        self.spec.fingerprint()  # reject unserializable metrics up front
        os.makedirs(self._persist_dir, exist_ok=True)
        wal_path = os.path.join(self._persist_dir, WAL_FILENAME)
        if list_snapshots(self._persist_dir) or os.path.exists(wal_path):
            raise InvalidParameterError(
                f"{self._persist_dir!r} already holds a persisted session; "
                "recover it with IncrementalJoin.open() instead"
            )
        self._wal = WriteAheadLog(
            wal_path, sync_mode=self.spec.sync_mode, fault_plan=self._fault_plan
        )
        self._publish_snapshot()

    @classmethod
    def open(
        cls,
        path: str,
        *,
        spec: Optional[JoinSpec] = None,
        sync_mode: Optional[str] = None,
        engine: str = "serial",
        structure_cache: Optional[TreeCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        io_retries: int = DEFAULT_IO_RETRIES,
        use_processes: bool = True,
        n_workers: Optional[int] = None,
        keep_generations: Optional[int] = None,
    ) -> "IncrementalJoin":
        """Open (or create) the persisted session stored at ``path``.

        If ``path`` holds no session yet, ``spec`` is required and a
        fresh persisted session is created.  Otherwise the session is
        *recovered*: the newest snapshot that passes its magic, length
        and checksum validation is memmapped back (falling back across
        generations when a file is damaged), the write-ahead log's
        durable prefix is replayed on top, and any torn or corrupted
        suffix is discarded — counted in
        ``stats.corrupt_frames_discarded``.  A ``spec`` passed alongside
        an existing session must match the persisted structural
        fingerprint; runtime knobs (engine, workers, ``sync_mode``,
        ``keep_generations``) may differ freely.  Raises
        :class:`~repro.errors.CorruptSnapshotError` only when every
        snapshot generation fails validation.
        """
        path = str(path)
        snaps = list_snapshots(path)
        if not snaps:
            if spec is None:
                raise InvalidParameterError(
                    f"{path!r} holds no persisted session and no spec was "
                    "given to create one"
                )
            fresh = replace(
                spec,
                persist_path=path,
                sync_mode=sync_mode if sync_mode is not None else spec.sync_mode,
            )
            if keep_generations is not None:
                fresh = replace(fresh, keep_generations=keep_generations)
            return cls(
                fresh,
                engine=engine,
                structure_cache=structure_cache,
                fault_plan=fault_plan,
                io_retries=io_retries,
                use_processes=use_processes,
                n_workers=n_workers,
            )
        started = time.perf_counter()
        with trace.span("recover", path=path, snapshots=len(snaps)) as span:
            meta = arrays = None
            chosen_path = None
            discarded = 0
            for seq, snap_path in reversed(snaps):
                try:
                    meta, arrays = load_snapshot(snap_path)
                    chosen_path = snap_path
                    break
                except StorageError:
                    discarded += 1
            if meta is None:
                raise CorruptSnapshotError(
                    f"all {len(snaps)} snapshot generations in {path!r} "
                    "failed validation; no durable state survives"
                )
            disk_spec = JoinSpec.from_structural_dict(meta["spec"])
            if spec is not None and spec.fingerprint() != disk_spec.fingerprint():
                raise InvalidParameterError(
                    "the given spec does not match the persisted session "
                    f"(fingerprint {spec.fingerprint()} != "
                    f"{disk_spec.fingerprint()}); open without a spec to "
                    "use the stored one"
                )
            run_sync = sync_mode
            if run_sync is None:
                run_sync = spec.sync_mode if spec is not None else disk_spec.sync_mode
            mem_spec = replace(
                spec if spec is not None else disk_spec,
                persist_path=None,
                sync_mode=run_sync,
            )
            session = cls(
                mem_spec,
                engine=engine,
                structure_cache=structure_cache,
                fault_plan=fault_plan,
                io_retries=io_retries,
                use_processes=use_processes,
                n_workers=n_workers,
            )
            session.spec = replace(mem_spec, persist_path=path)
            if keep_generations is not None:
                session.spec = replace(
                    session.spec, keep_generations=keep_generations
                )
            session._persist_dir = path
            # Never reuse a seq already on disk, even a corrupt one.
            session._snapshot_seq = snaps[-1][0]
            session._restore_state(meta, arrays)
            session.stats.snapshot_bytes = max(
                session.stats.snapshot_bytes, os.path.getsize(chosen_path)
            )
            # Scan the journal, keeping only the contiguous run that
            # chains onto the snapshot's watermark.  Records at or below
            # the watermark are already folded in (a crash between
            # snapshot publish and log truncation leaves them behind);
            # a gap means the records presuppose state that died with a
            # newer, unrecoverable snapshot — everything from the gap on
            # is discarded.
            wal_path = os.path.join(path, WAL_FILENAME)
            records, _, wal_discarded = scan_wal(wal_path)
            discarded += wal_discarded
            replayable = []
            expected = int(meta["wal_seq"]) + 1
            for rec in records:
                if rec.seq < expected:
                    continue
                if rec.seq != expected:
                    discarded += 1
                    break
                replayable.append(rec)
                expected += 1
            # Rewrite the journal to exactly the prefix being replayed,
            # with fault hooks disabled (these records already survived
            # their own append faults).
            wal = WriteAheadLog(wal_path, sync_mode=run_sync, fault_plan=None)
            wal.reset()
            for rec in replayable:
                if rec.op == OP_INSERT:
                    wal.append(encode_insert(rec.seq, rec.points), rec.seq)
                else:
                    wal.append(encode_delete(rec.seq, rec.ids), rec.seq)
            wal.sync()
            wal.fault_plan = fault_plan
            session._wal = wal
            session._replaying = True
            try:
                for rec in replayable:
                    if rec.op == OP_INSERT:
                        session.insert(rec.points)
                    else:
                        session.delete(rec.ids)
            finally:
                session._replaying = False
            session.stats.wal_records_replayed += len(replayable)
            session.stats.corrupt_frames_discarded += discarded
            span.set_attribute("replayed", len(replayable))
            span.set_attribute("discarded", discarded)
            span.set_attribute("recovered_seq", session._update_seq)
        session.stats.recovery_seconds += time.perf_counter() - started
        return session

    @property
    def last_update_seq(self) -> int:
        """Sequence number of the most recent durable update batch."""
        return self._update_seq

    def close(self) -> None:
        """Flush and close the write-ahead log (no-op when memory-only)."""
        if self._wal is not None and not self._wal.closed:
            self._wal.close()

    def __enter__(self) -> "IncrementalJoin":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _publish_snapshot(self) -> None:
        """Write, fsync and atomically publish the next snapshot generation."""
        self._snapshot_seq += 1
        meta, arrays = self._snapshot_state()
        _, nbytes = write_snapshot(
            self._persist_dir,
            self._snapshot_seq,
            meta,
            arrays,
            fault_plan=self._fault_plan,
            fsync=self.spec.sync_mode != "off",
        )
        prune_snapshots(self._persist_dir, keep=self.spec.keep_generations)
        self.stats.snapshot_bytes = max(self.stats.snapshot_bytes, nbytes)

    def _snapshot_state(self) -> Tuple[dict, dict]:
        """The session's full durable state as (metadata, named arrays)."""
        meta: dict = {
            "snap_seq": self._snapshot_seq,
            "wal_seq": self._update_seq,
            "next_id": self._next_id,
            "dims": self._dims,
            "spec": self.spec.structural_dict(),
            "spec_fingerprint": self.spec.fingerprint(),
            "tree": None,
            "sketch": None,
        }
        arrays: dict = {
            "base_ids": self._base_ids,
            "base_alive": self._base_alive,
            "delta_points": self._delta_points,
            "delta_ids": self._delta_ids,
            "delta_alive": self._delta_alive,
        }
        tree = self._base_tree
        if tree is not None:
            meta["tree"] = {
                "epsilon": tree.spec.epsilon,
                "grid": {
                    "lo": [float(v) for v in tree.grid.lo],
                    "hi": [float(v) for v in tree.grid.hi],
                    "eps": float(tree.grid.eps),
                    "n_cells": [int(v) for v in tree.grid.n_cells],
                },
            }
            arrays["points_flat"] = tree.points_flat
            arrays["perm"] = tree.perm
            arrays["digits"] = tree.digits
            arrays["packed_nodes"] = tree.packed_nodes()
        if self._sketch is not None:
            meta["sketch"] = {
                "n": self._sketch.n,
                "same_bucket_pairs": self._sketch._same_bucket_pairs,
            }
            arrays["sketch_counts"] = self._sketch.counts
        return meta, arrays

    def _restore_state(self, meta: dict, arrays: dict) -> None:
        """Adopt a loaded snapshot's state (arrays may be memmap views)."""
        self._dims = meta["dims"]
        self._next_id = int(meta["next_id"])
        self._update_seq = int(meta["wal_seq"])
        dims = self._dims or 0
        if self._dims is not None:
            sketch = JoinSizeSketch(
                self.spec.band_width, bits=self.spec.sketch_bits
            )
            sketch.n = int(meta["sketch"]["n"])
            sketch._same_bucket_pairs = int(meta["sketch"]["same_bucket_pairs"])
            sketch.counts = np.array(arrays["sketch_counts"], dtype=np.int64)
            self._sketch = sketch
            self.stats.estimated_join_size = max(
                self.stats.estimated_join_size, sketch.estimate()
            )
        self._base_ids = np.asarray(arrays["base_ids"], dtype=np.int64)
        # Tombstone and delta-alive bits are mutated in place; snapshot
        # views are read-only, so take writable copies.
        self._base_alive = np.array(arrays["base_alive"], dtype=bool)
        self._delta_points = np.asarray(arrays["delta_points"], dtype=np.float64)
        self._delta_ids = np.asarray(arrays["delta_ids"], dtype=np.int64)
        self._delta_alive = np.array(arrays["delta_alive"], dtype=bool)
        if meta["tree"] is not None:
            grid_meta = meta["tree"]["grid"]
            grid = Grid(
                lo=np.asarray(grid_meta["lo"], dtype=np.float64),
                hi=np.asarray(grid_meta["hi"], dtype=np.float64),
                eps=float(grid_meta["eps"]),
                n_cells=np.asarray(grid_meta["n_cells"], dtype=np.int64),
            )
            # The tree may have been built at a coarser epsilon (shared
            # TreeCache reuse); restore its build spec faithfully so the
            # reuse validation keeps holding.
            tree_epsilon = float(meta["tree"]["epsilon"])
            tree_spec = (
                self.spec
                if tree_epsilon == self.spec.epsilon
                else replace(self.spec, epsilon=tree_epsilon)
            )
            tree = FlatEpsilonKdbTree.from_arrays(
                np.asarray(arrays["points_flat"], dtype=np.float64),
                np.asarray(arrays["perm"], dtype=np.int64),
                np.asarray(arrays["digits"], dtype=np.int64),
                np.asarray(arrays["packed_nodes"], dtype=np.int64),
                tree_spec,
                grid,
            )
            self._base_tree = tree
            # Input-order base points via the inverse permutation (one
            # vectorized gather; no sorting, no build spans).
            inverse = np.empty(len(tree.perm), dtype=np.int64)
            inverse[tree.perm] = np.arange(len(tree.perm), dtype=np.int64)
            self._base_points = np.ascontiguousarray(tree.points_flat[inverse])
        else:
            self._base_tree = None
            self._base_points = np.empty((0, dims), dtype=np.float64)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_live(self) -> int:
        return int(self._base_alive.sum()) + int(self._delta_alive.sum())

    @property
    def dims(self) -> Optional[int]:
        """Dimensionality, or ``None`` before the first insert."""
        return self._dims

    @property
    def delta_size(self) -> int:
        """Live rows currently in the delta buffer."""
        return int(self._delta_alive.sum())

    @property
    def estimated_join_size(self) -> float:
        return self._sketch.estimate() if self._sketch is not None else 0.0

    def live_ids(self) -> np.ndarray:
        """Ids of the surviving points, ascending."""
        return np.sort(
            np.concatenate(
                [self._base_ids[self._base_alive], self._delta_ids[self._delta_alive]]
            )
        )

    def live_points(self) -> np.ndarray:
        """Surviving points in ascending id order (oracle ordering)."""
        ids = np.concatenate(
            [self._base_ids[self._base_alive], self._delta_ids[self._delta_alive]]
        )
        points = np.concatenate(
            [
                self._base_points[self._base_alive].reshape(-1, self._dims or 0),
                self._delta_points[self._delta_alive].reshape(-1, self._dims or 0),
            ]
        )
        return points[np.argsort(ids)]

    def __len__(self) -> int:
        return self.n_live

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray) -> UpdateDelta:
        """Add a batch; return its ids and the pairs it created.

        Batches containing NaN or infinite coordinates are rejected up
        front with :class:`~repro.errors.InvalidParameterError` — before
        any journaling or state mutation, so an invalid batch can never
        reach the grid internals or poison a persisted session's log.
        With ``spec.admission_threshold`` set, a batch whose
        sketch-predicted join size exceeds the threshold is refused with
        :class:`~repro.errors.AdmissionError`, likewise before any
        journaling (counted in ``stats.batches_rejected``).
        """
        points = validate_points(points, "insert batch")
        if self._dims is None:
            dims = points.shape[1]
        elif points.shape[1] != self._dims:
            raise InvalidParameterError(
                f"session holds {self._dims}-dimensional points, "
                f"got a batch with {points.shape[1]}"
            )
        else:
            dims = self._dims
        if self._sketch is None or self._dims is None:
            # Created ahead of the admission probe; before the first
            # successful insert the session is empty, so a fresh sketch
            # is always the correct state to probe against.
            self._sketch = JoinSizeSketch(
                self.spec.band_width, bits=self.spec.sketch_bits
            )
        threshold = self.spec.admission_threshold
        if threshold is not None and not self._replaying and len(points):
            # Admission probe: add -> estimate -> remove is exact on the
            # sketch's integer counters, so a refused batch leaves the
            # sketch — and, because nothing is journaled yet, the whole
            # session — untouched.  Replayed WAL records skip the check:
            # they were admitted when first applied.
            self._sketch.add(points)
            predicted = self._sketch.estimate()
            self._sketch.remove(points)
            if predicted > threshold:
                self.stats.batches_rejected += 1
                raise AdmissionError(
                    f"insert batch of {len(points)} points refused: "
                    f"sketch-predicted join size {predicted:.0f} exceeds "
                    f"the admission threshold {threshold:.0f}"
                )
        seq = self._update_seq + 1
        if self._wal is not None and not self._replaying:
            # Journal first: once the append returns, the batch is the
            # log's problem — a crash anywhere after this point replays
            # it on recovery.
            self._wal.append_insert(seq, points)
        if self._dims is None:
            self._dims = dims
            self._base_points = np.empty((0, self._dims), dtype=np.float64)
            self._delta_points = np.empty((0, self._dims), dtype=np.float64)
        n_new = len(points)
        ids = np.arange(self._next_id, self._next_id + n_new, dtype=np.int64)
        parts: List[np.ndarray] = []
        with trace.span(
            "delta-join",
            op="insert",
            batch=n_new,
            delta=self.delta_size,
            base=int(self._base_alive.sum()),
        ) as span:
            if n_new >= 2:
                result = self._absorb(epsilon_kdb_self_join(points, self.spec))
                if len(result.pairs):
                    parts.append(ids[result.pairs])
            delta_live = self._delta_alive.nonzero()[0]
            if n_new and len(delta_live):
                result = self._absorb(
                    epsilon_kdb_join(
                        points, self._delta_points[delta_live], self.spec
                    )
                )
                if len(result.pairs):
                    parts.append(
                        np.column_stack(
                            [
                                ids[result.pairs[:, 0]],
                                self._delta_ids[delta_live[result.pairs[:, 1]]],
                            ]
                        )
                    )
            if n_new:
                left, right = self._probe_base(points)
                if len(left):
                    keep = self._base_alive[right]
                    parts.append(
                        np.column_stack(
                            [ids[left[keep]], self._base_ids[right[keep]]]
                        )
                    )
            added = self._combine(parts)
            span.set_attribute("pairs_added", len(added))
        with trace.span("estimate", op="insert", points=n_new):
            if n_new:
                self._sketch.add(points)
            self.stats.estimated_join_size = self._sketch.estimate()
        self._delta_points = np.concatenate([self._delta_points, points])
        self._delta_ids = np.concatenate([self._delta_ids, ids])
        self._delta_alive = np.concatenate(
            [self._delta_alive, np.ones(n_new, dtype=bool)]
        )
        self._next_id += n_new
        self._update_seq = seq
        self.stats.updates_applied += 1
        self.stats.pairs_emitted += len(added)
        threshold = self.spec.resolved_delta_threshold(len(self._base_points))
        if self.delta_size > threshold:
            self.compact()
        self.stats.delta_size = self.delta_size
        return UpdateDelta(ids=ids, added=added)

    def delete(self, ids: Union[Sequence[int], np.ndarray]) -> UpdateDelta:
        """Remove points by id; return the pairs that retracts."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if len(np.unique(ids)) != len(ids):
            raise InvalidParameterError("delete() ids contain duplicates")
        side, row = self._locate(ids)
        if (side < 0).any():
            missing = ids[side < 0][0]
            raise InvalidParameterError(f"unknown point id {int(missing)}")
        alive = np.zeros(len(ids), dtype=bool)
        alive[side == 0] = self._base_alive[row[side == 0]]
        alive[side == 1] = self._delta_alive[row[side == 1]]
        if not alive.all():
            dead = ids[~alive][0]
            raise InvalidParameterError(f"point id {int(dead)} is already deleted")
        seq = self._update_seq + 1
        if self._wal is not None and not self._replaying:
            # Journal only after the whole batch validated: a rejected
            # delete leaves no trace in the log, so replay can apply
            # every journaled record unconditionally.
            self._wal.append_delete(seq, ids)
        base_rows = row[side == 0]
        delta_rows = row[side == 1]
        removed_points = np.concatenate(
            [self._base_points[base_rows], self._delta_points[delta_rows]]
        )
        removed_ids = np.concatenate(
            [self._base_ids[base_rows], self._delta_ids[delta_rows]]
        )
        # Tombstone first so the probes below only see survivors.
        self._base_alive[base_rows] = False
        self._delta_alive[delta_rows] = False
        parts: List[np.ndarray] = []
        with trace.span(
            "delta-join",
            op="delete",
            batch=len(ids),
            delta=self.delta_size,
            base=int(self._base_alive.sum()),
        ) as span:
            if len(removed_points) >= 2:
                result = self._absorb(
                    epsilon_kdb_self_join(removed_points, self.spec)
                )
                if len(result.pairs):
                    parts.append(removed_ids[result.pairs])
            delta_live = self._delta_alive.nonzero()[0]
            if len(delta_live):
                result = self._absorb(
                    epsilon_kdb_join(
                        removed_points, self._delta_points[delta_live], self.spec
                    )
                )
                if len(result.pairs):
                    parts.append(
                        np.column_stack(
                            [
                                removed_ids[result.pairs[:, 0]],
                                self._delta_ids[delta_live[result.pairs[:, 1]]],
                            ]
                        )
                    )
            left, right = self._probe_base(removed_points)
            if len(left):
                keep = self._base_alive[right]
                parts.append(
                    np.column_stack(
                        [removed_ids[left[keep]], self._base_ids[right[keep]]]
                    )
                )
            retracted = self._combine(parts)
            span.set_attribute("pairs_retracted", len(retracted))
        with trace.span("estimate", op="delete", points=len(ids)):
            self._sketch.remove(removed_points)
            self.stats.estimated_join_size = self._sketch.estimate()
        self._update_seq = seq
        self.stats.updates_applied += 1
        self.stats.pairs_retracted += len(retracted)
        self.stats.delta_size = self.delta_size
        return UpdateDelta(ids=np.sort(ids), retracted=retracted)

    def compact(self) -> None:
        """Merge live rows into a fresh base tree (atomic on failure).

        The new base is built *before* any session state changes, so a
        :class:`~repro.errors.TransientIoError` that exhausts the retry
        budget propagates with the session exactly as it was.
        """
        live_base = int(self._base_alive.sum())
        dead_base = len(self._base_alive) - live_base
        if self.delta_size == 0 and dead_base == 0 and (
            self._base_tree is not None or live_base == 0
        ):
            return  # nothing to fold in
        with trace.span(
            "compact", base=live_base, delta=self.delta_size, tombstones=dead_base
        ) as span:
            new_points = np.ascontiguousarray(
                np.concatenate(
                    [
                        self._base_points[self._base_alive],
                        self._delta_points[self._delta_alive],
                    ]
                )
            )
            new_ids = np.concatenate(
                [self._base_ids[self._base_alive], self._delta_ids[self._delta_alive]]
            )
            tree: Optional[FlatEpsilonKdbTree] = None
            cache_hit = False
            if len(new_points):
                tree, cache_hit = retry_transient(
                    lambda: self._build_base(new_points),
                    self._io_retries,
                    on_retry=self._count_retry,
                )
            # Point of no return: every failure path has already raised.
            self._base_points = new_points
            self._base_ids = new_ids
            self._base_alive = np.ones(len(new_points), dtype=bool)
            self._base_tree = tree
            self._delta_points = np.empty(
                (0, self._dims or 0), dtype=np.float64
            )
            self._delta_ids = _EMPTY_IDS.copy()
            self._delta_alive = np.empty(0, dtype=bool)
            self.stats.compactions += 1
            self.stats.delta_size = 0
            if cache_hit:
                self.stats.structure_cache_hits += 1
            elif tree is not None:
                self.stats.build_nodes += tree.n_nodes
                self.stats.build_sort_seconds += tree.build_sort_seconds
            span.set_attribute("cache_hit", cache_hit)
        if self._persist_dir is not None and not self._replaying:
            # Publish-then-reset: a crash after the publish but before
            # the reset leaves stale low-seq WAL records, which recovery
            # skips because their seq is at or below the snapshot's
            # durable watermark.
            self._publish_snapshot()
            if self._wal is not None:
                self._wal.reset()

    def current_pairs(self) -> np.ndarray:
        """Canonical ``(lo_id, hi_id)`` pairs among the live points.

        A pure query: it mutates no session state and journals nothing.
        When the whole session lives in a fully-live base (the state
        right after a compaction, and the state a cold re-open restores)
        the existing base tree answers directly — in particular a join
        over a freshly re-opened persisted session performs no tree
        construction.
        """
        if self._dims is None or self.n_live < 2:
            return _EMPTY_PAIRS.copy()
        if (
            self._base_tree is not None
            and self.delta_size == 0
            and bool(self._base_alive.all())
        ):
            result = epsilon_kdb_self_join(
                self._base_points, self.spec, tree=self._base_tree
            )
            return _canonical_id_pairs(
                self._base_ids[result.pairs[:, 0]],
                self._base_ids[result.pairs[:, 1]],
            )
        ids = self.live_ids()
        result = epsilon_kdb_self_join(self.live_points(), self.spec)
        return _canonical_id_pairs(
            ids[result.pairs[:, 0]], ids[result.pairs[:, 1]]
        )

    def range_query(
        self, point: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        """Ids of live points within ``eps`` of ``point``, ascending.

        Equivalent to ``batch_range_query(point[None])[0]`` — the same
        code path, so a coalesced batch answer is byte-identical to the
        per-query answer.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1:
            raise InvalidParameterError(
                f"query point must be 1-D, got shape {point.shape}"
            )
        return self.batch_range_query(point[np.newaxis, :], eps=eps)[0]

    def batch_range_query(
        self, queries: np.ndarray, eps: Optional[float] = None
    ) -> List[np.ndarray]:
        """Ids of live points within ``eps`` of each query row.

        A pure query (no journaling, no mutation): one leaf-directed
        pass over the base tree for the whole batch plus a vectorized
        sweep of the delta buffer, with tombstoned rows filtered out.
        Returns one ascending int64 id array per query — byte-identical,
        per query, to a brute-force scan of :meth:`live_points`.
        ``eps`` defaults to the spec epsilon and may not exceed it (the
        base tree's cells are sized for the spec).
        """
        queries = validate_points(queries, "queries")
        if eps is None:
            eps = self.spec.epsilon
        eps = float(eps)
        if not np.isfinite(eps) or eps <= 0:
            raise InvalidParameterError(
                f"query radius must be a positive finite number, got {eps!r}"
            )
        if eps > self.spec.epsilon:
            raise InvalidParameterError(
                f"query radius {eps} exceeds the session epsilon "
                f"{self.spec.epsilon}"
            )
        n_q = len(queries)
        if self._dims is None:
            return [_EMPTY_IDS.copy() for _ in range(n_q)]
        if queries.shape[1] != self._dims:
            raise InvalidParameterError(
                f"session holds {self._dims}-dimensional points, "
                f"got queries with {queries.shape[1]}"
            )
        parts: List[List[np.ndarray]] = [[] for _ in range(n_q)]
        tree = self._base_tree
        if tree is not None:
            grid = tree.grid
            # The tree pass is only sound for queries inside the grid box
            # (cell_of clips); out-of-box queries scan the base directly.
            in_box = np.all(
                (queries >= grid.lo[np.newaxis, :])
                & (queries <= grid.hi[np.newaxis, :]),
                axis=1,
            )
            box_rows = np.flatnonzero(in_box)
            if len(box_rows):
                answers = tree.batch_range_query(queries[box_rows], eps=eps)
                for pos, hits in zip(box_rows, answers):
                    if len(hits):
                        alive = hits[self._base_alive[hits]]
                        if len(alive):
                            parts[pos].append(self._base_ids[alive])
            out_rows = np.flatnonzero(~in_box)
            if len(out_rows):
                self._brute_range(
                    queries, out_rows, self._base_points,
                    self._base_ids, self._base_alive, eps, parts,
                )
        elif len(self._base_points):  # pragma: no cover - defensive
            self._brute_range(
                queries, np.arange(n_q, dtype=np.int64), self._base_points,
                self._base_ids, self._base_alive, eps, parts,
            )
        if len(self._delta_points):
            self._brute_range(
                queries, np.arange(n_q, dtype=np.int64), self._delta_points,
                self._delta_ids, self._delta_alive, eps, parts,
            )
        out: List[np.ndarray] = []
        for bucket in parts:
            if not bucket:
                out.append(_EMPTY_IDS.copy())
            elif len(bucket) == 1:
                out.append(np.sort(bucket[0]))
            else:
                out.append(np.sort(np.concatenate(bucket)))
        return out

    def _brute_range(
        self,
        queries: np.ndarray,
        rows: np.ndarray,
        points: np.ndarray,
        ids: np.ndarray,
        alive: np.ndarray,
        eps: float,
        parts: List[List[np.ndarray]],
    ) -> None:
        """Scan ``points[alive]`` for each ``queries[rows]``; fill ``parts``.

        Vectorized in blocks of query rows so the broadcast diff tensor
        stays bounded regardless of batch width.
        """
        live = np.flatnonzero(alive)
        if not len(live) or not len(rows):
            return
        block = points[live]
        metric = self.spec.metric
        chunk = max(1, 262144 // len(live))
        for start in range(0, len(rows), chunk):
            sub = rows[start:start + chunk]
            diffs = np.abs(queries[sub][:, np.newaxis, :] - block[np.newaxis, :, :])
            keep = metric.within_gap(
                diffs.reshape(-1, diffs.shape[2]), eps
            ).reshape(len(sub), len(live))
            for local, q in enumerate(sub):
                hit = keep[local]
                if hit.any():
                    parts[q].append(ids[live[hit]])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _build_base(self, new_points: np.ndarray):
        """One compaction build attempt (a fault-injection site)."""
        attempt = self._compact_attempts
        self._compact_attempts += 1
        if self._fault_plan is not None and self._fault_plan.io_fault(attempt):
            self.stats.faults_injected += 1
            raise TransientIoError(
                f"injected compaction fault (attempt ordinal {attempt})"
            )
        return self._cache.get_or_build(new_points, self.spec)

    def _count_retry(self, attempt: int) -> None:
        self.stats.storage_retries += 1

    def _locate(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map ids to (side, row): side 0 = base, 1 = delta, -1 = unknown."""
        side = np.full(len(ids), -1, dtype=np.int8)
        row = np.zeros(len(ids), dtype=np.int64)
        for which, id_array in ((0, self._base_ids), (1, self._delta_ids)):
            if not len(id_array):
                continue
            pos = np.searchsorted(id_array, ids)
            pos_clipped = np.minimum(pos, len(id_array) - 1)
            found = id_array[pos_clipped] == ids
            side[found] = which
            row[found] = pos_clipped[found]
        return side, row

    def _probe_base(self, query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Join a query batch against *all* base rows (caller filters alive).

        Returns aligned ``(query_index, base_row)`` arrays.  The fast
        path builds the batch's tree on the base grid and reuses the
        synchronized flat traversal; it is only sound when the batch
        lies inside the base bounding box (``Grid.cell_of`` clips, which
        would silently break the adjacent-cell rule), so out-of-box
        batches — and the parallel engine — take the two-set entry
        point, which refits a union grid.
        """
        tree_b = self._base_tree
        if tree_b is None or not len(query):
            return _EMPTY_IDS.copy(), _EMPTY_IDS.copy()
        grid = tree_b.grid
        out_of_box = bool(
            np.any(query < grid.lo[np.newaxis, :])
            or np.any(query > grid.hi[np.newaxis, :])
        )
        if self.engine == "parallel":
            result = self._absorb(
                self._get_executor().join(query, self._base_points)
            )
            return result.pairs[:, 0], result.pairs[:, 1]
        if out_of_box:
            result = self._absorb(
                epsilon_kdb_join(query, self._base_points, self.spec)
            )
            return result.pairs[:, 0], result.pairs[:, 1]
        spec = self.spec
        tree_q = FlatEpsilonKdbTree.build(query, spec, grid=grid)
        shared_levels = max(len(tree_q.digits), len(tree_b.digits))
        tree_q.ensure_digit_levels(shared_levels)
        tree_b.ensure_digit_levels(shared_levels)
        split_dims = tuple(set(tree_q.split_dims()) | set(tree_b.split_dims()))
        kernel = build_kernel_context(
            spec,
            tree_q.points_flat,
            points_b=tree_b.points_flat,
            grid=grid,
            split_dims=split_dims,
            sort_dim=tree_q.sort_dim,
        )
        sink = PairCollector()
        ctx = _JoinContext(
            tree_q.points_flat,
            tree_b.points_flat,
            grid,
            spec,
            sink,
            self_mode=False,
            kernel=kernel,
            perm_a=tree_q.perm,
            perm_b=tree_b.perm,
        )
        flat_cross_join(ctx, tree_q, 0, tree_b, 0)
        ctx.finish()
        ctx.stats.build_nodes = tree_q.n_nodes
        ctx.stats.build_sort_seconds = tree_q.build_sort_seconds
        self._absorb(JoinResult(stats=ctx.stats))
        return sink.arrays()

    def _get_executor(self):
        if self._executor is None:
            # Imported here: parallel imports the join module tree.
            from repro.core.parallel import ParallelJoinExecutor

            self._executor = ParallelJoinExecutor(
                self.spec,
                n_workers=self._n_workers,
                use_processes=self._use_processes,
            )
        return self._executor

    def _absorb(self, result: JoinResult) -> JoinResult:
        """Fold a sub-join's counters into the session stats.

        ``pairs_emitted`` is zeroed first: sub-joins count raw
        (pre-tombstone-filter) pairs, while the session counts the
        canonical deltas it actually reports.
        """
        stats = result.stats
        stats.pairs_emitted = 0
        self.stats.merge(stats)
        return result

    @staticmethod
    def _combine(parts: List[np.ndarray]) -> np.ndarray:
        if not parts:
            return _EMPTY_PAIRS.copy()
        stacked = np.concatenate(parts)
        return _canonical_id_pairs(stacked[:, 0], stacked[:, 1])


def normalize_update(update) -> Tuple[str, object]:
    """Coerce one update to ``(op, payload)``.

    Accepts ``("insert", points)`` / ``("delete", ids)`` pairs and
    ``{"op": "insert", "points": ...}`` / ``{"op": "delete", "ids": ...}``
    mappings (the CLI's JSONL row shape).
    """
    if isinstance(update, dict):
        op = update.get("op")
        if op == "insert":
            if "points" not in update:
                raise InvalidParameterError('insert update requires a "points" key')
            return "insert", update["points"]
        if op == "delete":
            if "ids" not in update:
                raise InvalidParameterError('delete update requires an "ids" key')
            return "delete", update["ids"]
        raise InvalidParameterError(
            f'update "op" must be "insert" or "delete", got {op!r}'
        )
    if isinstance(update, (tuple, list)) and len(update) == 2:
        op, payload = update
        if op in ("insert", "delete"):
            return op, payload
    raise InvalidParameterError(
        "each update must be ('insert', points), ('delete', ids) or the "
        f"equivalent mapping, got {update!r}"
    )


def apply_update_stream(
    session: IncrementalJoin, updates: Sequence
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a sequence of updates; return accumulated (added, retracted)."""
    added: List[np.ndarray] = []
    retracted: List[np.ndarray] = []
    for update in updates:
        op, payload = normalize_update(update)
        if op == "insert":
            delta = session.insert(np.asarray(payload, dtype=np.float64))
        else:
            delta = session.delete(payload)
        if len(delta.added):
            added.append(delta.added)
        if len(delta.retracted):
            retracted.append(delta.retracted)
    added_all = np.concatenate(added) if added else _EMPTY_PAIRS.copy()
    retracted_all = (
        np.concatenate(retracted) if retracted else _EMPTY_PAIRS.copy()
    )
    return added_all, retracted_all
