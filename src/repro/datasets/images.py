"""The "similar images" workload.

Image similarity systems of the paper's era (QBIC and friends) compared
images by color histograms: each image becomes a non-negative feature
vector over ``b`` color bins summing to one, and two images are similar
when their histograms are within epsilon.

The original image collection is unavailable, so this module synthesizes
histograms with the same geometry: images are drawn around a set of
*scene palettes* (sparse Dirichlet modes on the simplex), so that vectors
are non-negative, sum to one, concentrate most mass in a few bins, and
cluster by scene — the properties that shape join behaviour.  DESIGN.md
§5 records the substitution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError


def color_histograms(
    n: int,
    bins: int = 32,
    scenes: int = 12,
    concentration: float = 40.0,
    sparsity: float = 0.15,
    seed: Optional[int] = 0,
    return_labels: bool = False,
):
    """``n`` synthetic color histograms over ``bins`` color bins.

    Each of the ``scenes`` palettes is a sparse probability vector (only
    ``sparsity`` of bins carry real mass); an image samples a palette and
    perturbs it with a Dirichlet draw whose ``concentration`` controls
    how tightly images of one scene cluster.  Rows are non-negative and
    sum to one.

    With ``return_labels`` the ground-truth scene index of each image is
    returned alongside the histograms, which lets applications measure
    join precision against known duplicates.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if bins < 2:
        raise InvalidParameterError(f"bins must be >= 2, got {bins}")
    if scenes < 1:
        raise InvalidParameterError(f"scenes must be >= 1, got {scenes}")
    if concentration <= 0:
        raise InvalidParameterError(
            f"concentration must be > 0, got {concentration}"
        )
    if not 0.0 < sparsity <= 1.0:
        raise InvalidParameterError(
            f"sparsity must be in (0, 1], got {sparsity}"
        )
    rng = np.random.default_rng(seed)
    active_bins = max(1, int(round(bins * sparsity)))
    palettes = np.zeros((scenes, bins))
    for scene in range(scenes):
        chosen = rng.choice(bins, size=active_bins, replace=False)
        palettes[scene, chosen] = rng.dirichlet(np.ones(active_bins))
    membership = rng.integers(0, scenes, size=n)
    # Dirichlet around the palette: alpha = concentration * palette + tiny
    # floor so every bin stays a valid Dirichlet parameter.
    alphas = concentration * palettes[membership] + 0.01
    histograms = np.empty((n, bins))
    for row, alpha in enumerate(alphas):
        histograms[row] = rng.dirichlet(alpha)
    if return_labels:
        return histograms, membership
    return histograms
