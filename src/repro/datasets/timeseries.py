"""The "similar time sequences" workload.

The paper motivates similarity joins with finding similar time sequences:
each sequence is reduced to a low-dimensional feature vector by keeping
the first few DFT coefficients (the standard pipeline of the time-series
indexing literature it cites), and sequences are similar when their
feature vectors are within epsilon.

The proprietary stock/service data of the original evaluation is not
available, so this module synthesizes seeded geometric random-walk price
series — the canonical null model for such data — and applies exactly the
same DFT reduction.  What the join algorithms see is the *feature-vector
geometry* (heavily skewed coefficient variances, correlated series), and
the random-walk model reproduces that; DESIGN.md §5 records the
substitution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError


def random_walk_series(
    count: int,
    length: int,
    volatility: float = 0.01,
    drift: float = 0.0005,
    families: int = 8,
    family_mix: float = 0.6,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Generate ``count`` price series of ``length`` steps.

    Series are geometric random walks; to mimic a real market's sector
    structure (which is what makes the similarity join non-trivial), each
    series mixes a shared per-family return stream with idiosyncratic
    returns: ``r = family_mix * family_r + (1 - family_mix) * own_r``.

    Returns an ``(count, length)`` array of positive prices.
    """
    if count < 0 or length < 2:
        raise InvalidParameterError(
            f"need count >= 0 and length >= 2, got {count}, {length}"
        )
    if families < 1:
        raise InvalidParameterError(f"families must be >= 1, got {families}")
    if not 0.0 <= family_mix <= 1.0:
        raise InvalidParameterError(
            f"family_mix must be in [0, 1], got {family_mix}"
        )
    rng = np.random.default_rng(seed)
    family_returns = rng.normal(drift, volatility, size=(families, length))
    own_returns = rng.normal(drift, volatility, size=(count, length))
    membership = rng.integers(0, families, size=count)
    returns = (
        family_mix * family_returns[membership]
        + (1.0 - family_mix) * own_returns
    )
    log_prices = np.cumsum(returns, axis=1)
    return np.exp(log_prices)


def dft_features(
    series: np.ndarray, coefficients: int = 8, normalize: bool = True
) -> np.ndarray:
    """Reduce each series to its leading DFT coefficients.

    Each series is z-normalized (so similarity means *shape*, not scale —
    the convention of the similar-sequences literature), transformed with
    the real FFT, and the real and imaginary parts of coefficients
    ``1..coefficients`` are concatenated into a ``2 * coefficients``
    dimensional feature vector.  Coefficient 0 (the mean) is dropped by
    the normalization.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise InvalidParameterError(
            f"series must be 2-D (count, length), got shape {series.shape}"
        )
    count, length = series.shape
    if coefficients < 1 or coefficients > length // 2:
        raise InvalidParameterError(
            f"coefficients must be in [1, {length // 2}], got {coefficients}"
        )
    data = series
    if normalize:
        mean = data.mean(axis=1, keepdims=True)
        std = data.std(axis=1, keepdims=True)
        std[std == 0.0] = 1.0
        data = (data - mean) / std
    spectrum = np.fft.rfft(data, axis=1) / np.sqrt(length)
    kept = spectrum[:, 1 : coefficients + 1]
    return np.concatenate([kept.real, kept.imag], axis=1)


def timeseries_features(
    count: int,
    length: int = 128,
    coefficients: int = 8,
    seed: Optional[int] = 0,
    **walk_kwargs,
) -> np.ndarray:
    """End-to-end workload: random-walk series -> DFT feature vectors.

    Returns an ``(count, 2 * coefficients)`` feature array, the input the
    E6 experiment joins.
    """
    series = random_walk_series(count, length, seed=seed, **walk_kwargs)
    return dft_features(series, coefficients=coefficients)
