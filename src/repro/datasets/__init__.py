"""Workload generators for the evaluation.

* :mod:`repro.datasets.synthetic` — the paper's synthetic families:
  uniform, Gaussian clusters, and correlated data.
* :mod:`repro.datasets.timeseries` — the "similar time sequences"
  workload: random-walk price series reduced to DFT feature vectors
  (substitute for the paper's proprietary stock data; see DESIGN.md §5).
* :mod:`repro.datasets.images` — the "similar images" workload:
  synthetic color-histogram feature vectors (substitute for the paper's
  image dataset; see DESIGN.md §5).
"""

from repro.datasets.images import color_histograms
from repro.datasets.loaders import load_points, save_pairs, save_points
from repro.datasets.synthetic import (
    correlated_points,
    gaussian_clusters,
    uniform_points,
)
from repro.datasets.timeseries import (
    dft_features,
    random_walk_series,
    timeseries_features,
)

__all__ = [
    "uniform_points",
    "gaussian_clusters",
    "correlated_points",
    "random_walk_series",
    "dft_features",
    "timeseries_features",
    "color_histograms",
    "load_points",
    "save_points",
    "save_pairs",
]
