"""Synthetic point workloads.

The paper's synthetic evaluation draws points either uniformly in the
unit cube or from a mixture of Gaussian clusters (the realistic case for
feature vectors, which arrive clustered).  All generators are seeded and
return ``(n, d)`` float64 arrays in the unit cube.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check(n: int, dims: int) -> None:
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if dims < 1:
        raise InvalidParameterError(f"dims must be >= 1, got {dims}")


def uniform_points(n: int, dims: int, seed: Optional[int] = 0) -> np.ndarray:
    """``n`` points uniform in the unit cube ``[0, 1)^dims``."""
    _check(n, dims)
    return _rng(seed).random((n, dims))


def gaussian_clusters(
    n: int,
    dims: int,
    clusters: int = 10,
    sigma: float = 0.05,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """A mixture of ``clusters`` spherical Gaussians inside the unit cube.

    Cluster centers are uniform in ``[0.1, 0.9]^dims`` so that the
    clipped tails do not pile up on the cube boundary; points are clipped
    to ``[0, 1]`` (a negligible fraction for the default ``sigma``).
    This is the workload most of the paper's synthetic experiments use.
    """
    _check(n, dims)
    if clusters < 1:
        raise InvalidParameterError(f"clusters must be >= 1, got {clusters}")
    if sigma < 0:
        raise InvalidParameterError(f"sigma must be >= 0, got {sigma}")
    rng = _rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(clusters, dims))
    assignment = rng.integers(0, clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, sigma, size=(n, dims))
    return np.clip(points, 0.0, 1.0)


def correlated_points(
    n: int,
    dims: int,
    correlation: float = 0.9,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Points whose dimensions are pairwise correlated.

    Generated as a convex mix of one shared uniform driver and per-
    dimension independent noise: ``x_k = c * shared + (1 - c) * noise_k``.
    Models feature vectors with strongly dependent coordinates (e.g. DFT
    coefficients of smooth series), where one split dimension already
    prunes most of the space.
    """
    _check(n, dims)
    if not 0.0 <= correlation <= 1.0:
        raise InvalidParameterError(
            f"correlation must be in [0, 1], got {correlation}"
        )
    rng = _rng(seed)
    shared = rng.random((n, 1))
    noise = rng.random((n, dims))
    return correlation * shared + (1.0 - correlation) * noise
