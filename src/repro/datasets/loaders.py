"""Loading and saving point relations.

The CLI and examples accept external datasets; this module owns the
format handling so it is tested once: ``.npy`` (NumPy binary) and
``.csv`` (one point per line, comma-separated coordinates), both
validated through the same rules as every other entry point.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.config import validate_points
from repro.errors import InvalidParameterError


def load_points(path: str) -> np.ndarray:
    """Load an ``(n, d)`` float relation from ``.npy`` or ``.csv``.

    The result passes :func:`repro.core.config.validate_points`, so the
    caller gets the same guarantees as with generated data (2-D, float64,
    finite).
    """
    if not os.path.exists(path):
        raise InvalidParameterError(f"dataset file not found: {path}")
    extension = os.path.splitext(path)[1].lower()
    if extension == ".npy":
        points = np.load(path)
    elif extension == ".csv":
        points = np.loadtxt(path, delimiter=",", ndmin=2)
    else:
        raise InvalidParameterError(
            f"unsupported dataset extension {extension!r}; "
            "expected .npy or .csv"
        )
    return validate_points(points, name=path)


def save_points(path: str, points: np.ndarray) -> None:
    """Save a relation to ``.npy`` or ``.csv`` (validated first)."""
    points = validate_points(points)
    extension = os.path.splitext(path)[1].lower()
    if extension == ".npy":
        np.save(path, points)
    elif extension == ".csv":
        np.savetxt(path, points, delimiter=",")
    else:
        raise InvalidParameterError(
            f"unsupported dataset extension {extension!r}; "
            "expected .npy or .csv"
        )


def save_pairs(path: str, pairs: np.ndarray) -> None:
    """Save an ``(m, 2)`` pair array to ``.npy`` or ``.csv``."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise InvalidParameterError(
            f"pairs must be an (m, 2) array, got shape {pairs.shape}"
        )
    extension = os.path.splitext(path)[1].lower()
    if extension == ".npy":
        np.save(path, pairs)
    elif extension == ".csv":
        np.savetxt(path, pairs, delimiter=",", fmt="%d")
    else:
        raise InvalidParameterError(
            f"unsupported pairs extension {extension!r}; expected .npy or .csv"
        )
