"""Command-line interface: ``python -m repro`` / ``repro-join``.

Three subcommands:

* ``join`` (the default when flags are given directly) — run one
  similarity join on a generated workload or a ``.npy``/``.csv`` file
  and print the result statistics.
* ``compare`` — run *every* implemented algorithm on the same workload
  and print the comparison table, a one-command version of the paper's
  head-to-head experiments.
* ``search`` — build an epsilon-kdB tree once and answer range queries
  against it (similarity search).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro import ALGORITHMS, EpsilonKdbTree, JoinSpec, PairCounter, similarity_join
from repro import _SELF_JOIN_ALGORITHMS as SELF_JOIN_REGISTRY
from repro.analysis import Table, format_seconds, format_si
from repro.datasets import (
    color_histograms,
    gaussian_clusters,
    load_points,
    save_pairs,
    timeseries_features,
    uniform_points,
)

_GENERATORS = {
    "uniform": lambda n, dims, seed: uniform_points(n, dims, seed=seed),
    "clusters": lambda n, dims, seed: gaussian_clusters(n, dims, seed=seed),
    "timeseries": lambda n, dims, seed: timeseries_features(
        n, coefficients=max(1, dims // 2), seed=seed
    ),
    "images": lambda n, dims, seed: color_histograms(n, bins=dims, seed=seed),
}


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--epsilon", type=float, required=True, help="join threshold"
    )
    parser.add_argument(
        "--metric", default="l2", help="l1, l2, linf or a Minkowski order"
    )
    parser.add_argument(
        "--dataset",
        choices=sorted(_GENERATORS),
        default="clusters",
        help="generated workload family (default: clusters)",
    )
    parser.add_argument(
        "--input",
        help="instead of generating, load points from a .npy or .csv file",
    )
    parser.add_argument("--points", type=int, default=10_000, help="point count")
    parser.add_argument("--dims", type=int, default=16, help="dimensionality")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--leaf-size", type=int, default=128, help="epsilon-kdB leaf threshold"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-join",
        description="High-dimensional similarity joins (epsilon-kdB tree "
        "reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command")

    join = subparsers.add_parser(
        "join", help="run one similarity join and print its statistics"
    )
    _add_common_arguments(join)
    join.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="epsilon-kdb",
        help="join algorithm (default: epsilon-kdb)",
    )
    join.add_argument(
        "--workers",
        type=int,
        help="run the stripe-parallel epsilon-kdB executor with this many "
        "worker processes (only valid with --algorithm epsilon-kdb; "
        "1 means the serial path)",
    )
    join.add_argument(
        "--task-timeout",
        type=float,
        help="per-stripe-task deadline in seconds for the parallel "
        "executor; timed-out attempts are retried (default: no deadline)",
    )
    join.add_argument(
        "--max-task-retries",
        type=int,
        help="pool re-dispatch budget per stripe task before the final "
        "in-parent attempt (default: 2)",
    )
    join.add_argument(
        "--output",
        help="write the resulting (m, 2) pair array to this .npy file",
    )

    compare = subparsers.add_parser(
        "compare", help="run every algorithm on the same workload"
    )
    _add_common_arguments(compare)
    compare.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=sorted(ALGORITHMS),
        help="algorithms to leave out (repeatable); e.g. --skip brute-force",
    )

    search = subparsers.add_parser(
        "search", help="build an epsilon-kdB tree and run range queries"
    )
    _add_common_arguments(search)
    search.add_argument(
        "--queries",
        type=int,
        default=10,
        help="number of random query points drawn from the data "
        "(default: 10)",
    )
    search.add_argument(
        "--query",
        action="append",
        default=[],
        help="explicit query point as comma-separated coordinates "
        "(repeatable; overrides --queries)",
    )
    return parser


def _load_points(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        return load_points(args.input)
    generator = _GENERATORS[args.dataset]
    return generator(args.points, args.dims, args.seed)


def _run_join(args: argparse.Namespace) -> int:
    points = _load_points(args)
    spec = JoinSpec(
        epsilon=args.epsilon, metric=args.metric, leaf_size=args.leaf_size
    )
    workers = getattr(args, "workers", None)
    print(
        f"joining {len(points)} points, d={points.shape[1]}, "
        f"eps={spec.epsilon}, metric={spec.metric.name}, "
        f"algorithm={args.algorithm}"
        + (f", workers={workers}" if workers else "")
    )
    started = time.perf_counter()
    result = similarity_join(
        points,
        epsilon=args.epsilon,
        metric=args.metric,
        algorithm=args.algorithm,
        leaf_size=args.leaf_size,
        n_workers=workers,
        task_timeout=getattr(args, "task_timeout", None),
        max_task_retries=getattr(args, "max_task_retries", None),
        return_result=True,
    )
    elapsed = time.perf_counter() - started
    stats = result.stats
    print(f"pairs:                 {format_si(stats.pairs_emitted)}")
    print(f"distance computations: {format_si(stats.distance_computations)}")
    print(f"node pairs visited:    {format_si(stats.node_pairs_visited)}")
    if stats.stripes:
        print(f"stripes:               {stats.stripes}")
        print(f"worker processes:      {stats.workers_used or 'serial path'}")
        print(f"boundary dups merged:  {format_si(stats.duplicate_pairs_merged)}")
    if stats.tasks_retried:
        print(f"tasks retried:         {stats.tasks_retried}")
    if stats.tasks_timed_out:
        print(f"tasks timed out:       {stats.tasks_timed_out}")
    if stats.degraded_to_serial:
        print("degraded to serial:    yes (pool unusable; results exact)")
    print(f"wall clock:            {format_seconds(elapsed)}")
    if args.output:
        save_pairs(args.output, result.pairs)
        print(f"wrote pairs to {args.output}")
    return 0


def _run_search(args: argparse.Namespace) -> int:
    points = _load_points(args)
    spec = JoinSpec(
        epsilon=args.epsilon, metric=args.metric, leaf_size=args.leaf_size
    )
    started = time.perf_counter()
    tree = EpsilonKdbTree.build(points, spec)
    build_seconds = time.perf_counter() - started
    print(
        f"built epsilon-kdB tree over {len(points)} points "
        f"(d={points.shape[1]}) in {format_seconds(build_seconds)}"
    )
    if args.query:
        queries = np.array(
            [[float(v) for v in q.split(",")] for q in args.query]
        )
    else:
        rng = np.random.default_rng(args.seed)
        queries = points[rng.choice(len(points), size=min(args.queries, len(points)), replace=False)]
    started = time.perf_counter()
    for query in queries:
        hits = tree.range_query(query)
        preview = ", ".join(str(h) for h in hits[:8])
        suffix = ", ..." if len(hits) > 8 else ""
        print(f"query {np.round(query[:4], 3).tolist()}...: "
              f"{len(hits)} hits [{preview}{suffix}]")
    elapsed = time.perf_counter() - started
    print(
        f"{len(queries)} queries in {format_seconds(elapsed)} "
        f"({format_seconds(elapsed / max(1, len(queries)))} each)"
    )
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    points = _load_points(args)
    spec = JoinSpec(
        epsilon=args.epsilon, metric=args.metric, leaf_size=args.leaf_size
    )
    table = Table(
        f"all algorithms on {len(points)} points, d={points.shape[1]}, "
        f"eps={spec.epsilon}, metric={spec.metric.name}",
        ["algorithm", "time", "pairs", "dist comps", "node pairs"],
    )
    counts = set()
    for name in ALGORITHMS:
        if name in args.skip:
            continue
        sink = PairCounter()
        started = time.perf_counter()
        result = SELF_JOIN_REGISTRY[name](points, spec, sink=sink)
        elapsed = time.perf_counter() - started
        counts.add(sink.count)
        table.add_row(
            name,
            format_seconds(elapsed),
            format_si(sink.count),
            format_si(result.stats.distance_computations),
            format_si(result.stats.node_pairs_visited),
        )
    table.print()
    if len(counts) > 1:
        print("WARNING: algorithms disagree on the pair count!", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare flags mean the (historical) join subcommand.
    if argv and argv[0].startswith("-"):
        argv = ["join", *argv]
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "search":
        return _run_search(args)
    if args.command == "join":
        return _run_join(args)
    build_parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
