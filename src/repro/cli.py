"""Command-line interface: ``python -m repro`` / ``repro-join``.

Eight subcommands:

* ``join`` (the default when flags are given directly) — run one
  similarity join on a generated workload or a ``.npy``/``.csv`` file
  and print the result statistics.  The execution strategy is chosen
  by the cost-based planner unless ``--engine`` forces one;
  ``--explain`` prints the plan table and exits without running.
* ``calibrate`` — measure this host's per-unit cost constants (the
  planner's inputs) and cache them as JSON (see docs/planner.md).
* ``join-stream`` — feed a JSONL update stream (insert/delete batches)
  through an incremental join session and report the emitted deltas
  per batch (see docs/streaming.md).  With ``--persist DIR`` the
  session is crash-consistent: every batch is journaled to a
  write-ahead log and checksummed snapshots are published at
  compactions, so an interrupted run resumes where it left off.
* ``join-open`` — recover a persisted session directory (replaying the
  WAL over the newest valid snapshot) and print its surviving pairs
  and recovery statistics (see docs/persistence.md).
* ``serve`` — run the asyncio TCP serving front-end: multi-tenant
  incremental-join sessions, query coalescing and sketch-based
  admission control (see docs/serving.md).
* ``query`` — a scripted client for a running server: attach a tenant,
  insert points, run range queries and print the answers.
* ``compare`` — run *every* implemented algorithm on the same workload
  and print the comparison table, a one-command version of the paper's
  head-to-head experiments.
* ``search`` — build an epsilon-kdB tree once and answer range queries
  against it (similarity search).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import ExitStack
from typing import Optional, Sequence

import numpy as np

from repro import (
    ALGORITHMS,
    EpsilonKdbTree,
    IncrementalJoin,
    JoinSpec,
    PairCounter,
    similarity_join,
    subtract_pairs,
)
from repro import _SELF_JOIN_ALGORITHMS as SELF_JOIN_REGISTRY
from repro.analysis import Table, format_seconds, format_si
from repro.core.backends import resolve_kernel_backend
from repro.core.incremental import normalize_update
from repro.core.result import JoinStats
from repro.errors import CorruptSnapshotError, InvalidParameterError
from repro.storage.wal import SYNC_MODES
from repro.datasets import (
    color_histograms,
    gaussian_clusters,
    load_points,
    save_pairs,
    timeseries_features,
    uniform_points,
)
from repro.obs import (
    Tracer,
    format_tree,
    profiled_span,
    trace,
    write_chrome_trace,
    write_jsonl,
)

_GENERATORS = {
    "uniform": lambda n, dims, seed: uniform_points(n, dims, seed=seed),
    "clusters": lambda n, dims, seed: gaussian_clusters(n, dims, seed=seed),
    "timeseries": lambda n, dims, seed: timeseries_features(
        n, coefficients=max(1, dims // 2), seed=seed
    ),
    "images": lambda n, dims, seed: color_histograms(n, bins=dims, seed=seed),
}


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--epsilon", type=float, required=True, help="join threshold"
    )
    parser.add_argument(
        "--metric", default="l2", help="l1, l2, linf or a Minkowski order"
    )
    parser.add_argument(
        "--dataset",
        choices=sorted(_GENERATORS),
        default="clusters",
        help="generated workload family (default: clusters)",
    )
    parser.add_argument(
        "--input",
        help="instead of generating, load points from a .npy or .csv file",
    )
    parser.add_argument("--points", type=int, default=10_000, help="point count")
    parser.add_argument("--dims", type=int, default=16, help="dimensionality")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--leaf-size", type=int, default=128, help="epsilon-kdB leaf threshold"
    )
    parser.add_argument(
        "--cascade",
        choices=["auto", "on", "off"],
        default="auto",
        help="filter-cascade distance kernels: auto (on for d >= 8, "
        "default), on, or off; never changes the result, only the work",
    )
    parser.add_argument(
        "--filter-dims",
        type=int,
        help="single-dimension pre-filter stages the cascade runs before "
        "the blocked reduction (default: scale with dimensionality)",
    )
    parser.add_argument(
        "--build",
        choices=["auto", "flat", "pointer"],
        default="auto",
        help="epsilon-kdB tree construction: flat (vectorized radix "
        "build), pointer (per-node objects), or auto (default: flat); "
        "both yield byte-identical pairs",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=["auto", "numpy", "numba"],
        default="auto",
        help="cascade kernel backend: auto (numba when installed, "
        "default), numpy, or numba (falls back to numpy when absent); "
        "every backend emits byte-identical pairs",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-join",
        description="High-dimensional similarity joins (epsilon-kdB tree "
        "reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command")

    join = subparsers.add_parser(
        "join", help="run one similarity join and print its statistics"
    )
    _add_common_arguments(join)
    join.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="epsilon-kdb",
        help="join algorithm (default: epsilon-kdb)",
    )
    join.add_argument(
        "--workers",
        type=int,
        help="run the stripe-parallel epsilon-kdB executor with this many "
        "worker processes (only valid with --algorithm epsilon-kdb; "
        "1 means the serial path)",
    )
    join.add_argument(
        "--engine",
        choices=["auto", "serial", "pointer", "parallel", "external", "sort-merge"],
        default="auto",
        help="execution strategy for --algorithm epsilon-kdb: auto "
        "(default; the cost-based planner picks) or a forced strategy; "
        "every strategy emits byte-identical pairs",
    )
    join.add_argument(
        "--explain",
        action="store_true",
        help="print the planner's per-strategy cost table for this "
        "workload and exit without executing the join",
    )
    join.add_argument(
        "--task-timeout",
        type=float,
        help="per-stripe-task deadline in seconds for the parallel "
        "executor; timed-out attempts are retried (default: no deadline)",
    )
    join.add_argument(
        "--max-task-retries",
        type=int,
        help="pool re-dispatch budget per stripe task before the final "
        "in-parent attempt (default: 2)",
    )
    join.add_argument(
        "--output",
        help="write the resulting (m, 2) pair array to this .npy file",
    )
    join.add_argument(
        "--trace",
        metavar="PATH",
        help="record a structured trace of the run and write it to PATH "
        "(format chosen by --trace-format)",
    )
    join.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format: jsonl (one span per line) or chrome "
        "(trace_event JSON; open in about:tracing or Perfetto)",
    )
    join.add_argument(
        "--trace-summary",
        action="store_true",
        help="print the phase-breakdown tree of the traced run",
    )
    join.add_argument(
        "--stats-json",
        metavar="PATH",
        help="dump the final JoinStats (every counter, including the "
        "resilience fields) as JSON to PATH",
    )
    join.add_argument(
        "--profile",
        action="store_true",
        help="run the join under cProfile; the top functions attach to "
        "the trace (visible with --trace / --trace-summary)",
    )
    join.add_argument(
        "--sample-memory",
        action="store_true",
        help="sample RSS during the join; the peak attaches to the trace",
    )

    stream = subparsers.add_parser(
        "join-stream",
        help="run an incremental join session over a JSONL update stream",
    )
    _add_common_arguments(stream)
    stream.add_argument(
        "--updates",
        required=True,
        metavar="PATH",
        help="JSONL update stream, one batch per line: "
        '{"op": "insert", "points": [[...], ...]} or '
        '{"op": "delete", "ids": [...]}; "-" reads stdin',
    )
    stream.add_argument(
        "--no-initial",
        action="store_true",
        help="start from an empty session instead of seeding it with the "
        "generated/loaded workload (ids then start at 0 with the first "
        "inserted batch)",
    )
    stream.add_argument(
        "--delta-threshold",
        type=int,
        help="delta-buffer size that triggers automatic compaction "
        "(default: scale with the base size)",
    )
    stream.add_argument(
        "--workers",
        type=int,
        help="route the batch-vs-base probes through the stripe-parallel "
        "executor with this many workers (results are identical)",
    )
    stream.add_argument(
        "--output",
        help="write the surviving (m, 2) id-pair array to this .npy file",
    )
    stream.add_argument(
        "--stats-json",
        metavar="PATH",
        help="dump the session's cumulative JoinStats as JSON to PATH",
    )
    stream.add_argument(
        "--trace",
        metavar="PATH",
        help="record a structured trace of the session (delta-join, "
        "compact and estimate spans) and write it to PATH",
    )
    stream.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format: jsonl (one span per line) or chrome "
        "(trace_event JSON)",
    )
    stream.add_argument(
        "--trace-summary",
        action="store_true",
        help="print the phase-breakdown tree of the traced session",
    )
    stream.add_argument(
        "--persist",
        metavar="DIR",
        help="make the session crash-consistent: journal every batch to "
        "a write-ahead log in DIR and publish checksummed snapshots at "
        "compactions; an existing session directory is resumed (the "
        "seed workload is then skipped)",
    )
    stream.add_argument(
        "--sync-mode",
        choices=list(SYNC_MODES),
        default=None,
        help="WAL durability policy with --persist: always (fsync per "
        "batch), batch (default; fsync at snapshot boundaries), or off",
    )
    stream.add_argument(
        "--keep-generations",
        type=int,
        default=None,
        help="snapshot generations retained on disk with --persist "
        "(default: 2; older generations are pruned at each compaction)",
    )

    opened = subparsers.add_parser(
        "join-open",
        help="recover a persisted session directory and print its "
        "surviving pairs and recovery statistics",
    )
    opened.add_argument(
        "path", help="session directory previously written with --persist"
    )
    opened.add_argument(
        "--sync-mode",
        choices=list(SYNC_MODES),
        default=None,
        help="WAL durability policy for the reopened session "
        "(default: the persisted spec's policy)",
    )
    opened.add_argument(
        "--keep-generations",
        type=int,
        default=None,
        help="snapshot generations the reopened session retains "
        "(default: 2)",
    )
    opened.add_argument(
        "--output",
        help="write the surviving (m, 2) id-pair array to this .npy file",
    )
    opened.add_argument(
        "--stats-json",
        metavar="PATH",
        help="dump the recovered session's JoinStats as JSON to PATH",
    )
    opened.add_argument(
        "--trace",
        metavar="PATH",
        help="record a structured trace of the recovery and the join "
        "(recover, wal-append and traversal spans) and write it to PATH",
    )
    opened.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format: jsonl (one span per line) or chrome "
        "(trace_event JSON)",
    )
    opened.add_argument(
        "--trace-summary",
        action="store_true",
        help="print the phase-breakdown tree of the traced recovery",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the async TCP serving front-end for incremental join "
        "sessions (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0, pick a free one; the chosen port is "
        "printed on startup)",
    )
    serve.add_argument(
        "--coalesce-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="range queries for the same tenant and radius arriving "
        "within this window are answered by one batched tree traversal "
        "(default: 0.002; 0 disables coalescing)",
    )
    serve.add_argument(
        "--max-predicted-pairs",
        type=float,
        default=None,
        help="shed any request whose sketch-predicted output exceeds "
        "this many pairs (default: no size budget)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="requests executing concurrently; more wait in the "
        "admission queue (default: 8)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission queue length beyond which requests are shed "
        "(default: 64)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline; requests missing it get a "
        "'deadline' error (default: none; clients may set deadline_ms "
        "per request)",
    )
    serve.add_argument(
        "--kernel-backend",
        choices=["auto", "numpy", "numba"],
        default="auto",
        help="default cascade kernel backend for attached tenants "
        "(default: auto — numba when installed, else numpy); attach "
        "requests may override per tenant",
    )
    serve.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="dump the serving metrics registry as JSON to PATH on "
        "shutdown",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        help="record a structured trace of every served request and "
        "write it to PATH on shutdown",
    )
    serve.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format: jsonl (one span per line) or chrome "
        "(trace_event JSON)",
    )

    query = subparsers.add_parser(
        "query",
        help="scripted client for a running serve instance: attach, "
        "insert, range-query, print answers",
    )
    query.add_argument("--host", default="127.0.0.1", help="server address")
    query.add_argument(
        "--port",
        type=int,
        default=None,
        help="server port (required unless --explain runs offline "
        "against --path)",
    )
    query.add_argument(
        "--tenant", required=True, help="tenant session name to attach"
    )
    query.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="join threshold when the attach creates the tenant "
        "(in-memory, or a fresh --path directory)",
    )
    query.add_argument(
        "--metric", default=None, help="metric when the attach creates the tenant"
    )
    query.add_argument(
        "--path",
        default=None,
        help="attach the tenant from this persisted session directory "
        "on the server's filesystem",
    )
    query.add_argument(
        "--keep-generations",
        type=int,
        default=None,
        help="snapshot generations the attached persisted session keeps",
    )
    query.add_argument(
        "--insert",
        metavar="PATH",
        help="insert points from a .npy or .csv file after attaching",
    )
    query.add_argument(
        "--range",
        action="append",
        default=[],
        metavar="COORDS",
        help="range query as comma-separated coordinates (repeatable); "
        "all queries are sent concurrently, so the server may coalesce "
        "them into one batched traversal",
    )
    query.add_argument(
        "--eps",
        type=float,
        default=None,
        help="query radius for --range (default: the tenant's epsilon)",
    )
    query.add_argument(
        "--pairs",
        action="store_true",
        help="print the tenant's current self-join pair count",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print the server and tenant statistics JSON",
    )
    query.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to shut down gracefully after the other "
        "operations",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="with --path: print the attach plan (memmapped snapshot "
        "view vs full recovery) for the persisted directory and exit "
        "without connecting to any server",
    )

    calibrate = subparsers.add_parser(
        "calibrate",
        help="measure this host's per-unit cost constants and cache "
        "them for the execution planner",
    )
    calibrate.add_argument(
        "--force",
        action="store_true",
        help="re-measure even when a valid profile for this host is "
        "already cached",
    )
    calibrate.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="profile file to write (default: $REPRO_COST_PROFILE, "
        "else ~/.cache/repro/cost_profile.json)",
    )

    compare = subparsers.add_parser(
        "compare", help="run every algorithm on the same workload"
    )
    _add_common_arguments(compare)
    compare.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=sorted(ALGORITHMS),
        help="algorithms to leave out (repeatable); e.g. --skip brute-force",
    )

    search = subparsers.add_parser(
        "search", help="build an epsilon-kdB tree and run range queries"
    )
    _add_common_arguments(search)
    search.add_argument(
        "--queries",
        type=int,
        default=10,
        help="number of random query points drawn from the data "
        "(default: 10)",
    )
    search.add_argument(
        "--query",
        action="append",
        default=[],
        help="explicit query point as comma-separated coordinates "
        "(repeatable; overrides --queries)",
    )
    return parser


def _load_points(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        return load_points(args.input)
    generator = _GENERATORS[args.dataset]
    return generator(args.points, args.dims, args.seed)


#: Stat lines whose wording predates the generic renderer; any field not
#: listed renders as its name with underscores spaced, so new JoinStats
#: counters show up without touching this module.
_STAT_LABELS = {
    "pairs_emitted": "pairs",
    "distance_computations": "distance computations",
    "node_pairs_visited": "node pairs visited",
    "duplicate_pairs_merged": "boundary dups merged",
    "workers_used": "worker processes",
    "build_nodes": "tree nodes built",
    "build_sort_seconds": "build sort time",
    "structure_cache_hits": "structure cache hits",
    "updates_applied": "update batches applied",
    "delta_size": "delta buffer size",
    "pairs_retracted": "pairs retracted",
    "estimated_join_size": "estimated join size",
    "kernel_backend": "kernel backend",
    "kernel_blocks": "kernel tiles",
    "kernel_tile_rows": "kernel tile rows",
    "kernel_seconds": "kernel time",
    "planned_strategy": "planned strategy",
    "predicted_cost": "predicted cost",
    "plan_seconds": "planning time",
}

#: Fields printed even when zero (the headline numbers of every join).
_ALWAYS_SHOWN = {"pairs_emitted", "distance_computations", "node_pairs_visited"}


def _render_stat(name: str, value) -> str:
    if name == "degraded_to_serial":
        return "yes (pool unusable; results exact)"
    if name == "estimated_join_size":
        # A pair-count estimate, not a duration like the other floats.
        return format_si(int(round(value)))
    if name == "workers_used":
        return str(value) if value else "serial path"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, list):
        total = sum(value)
        return f"{len(value)} tasks, {format_seconds(total)} total"
    if isinstance(value, int):
        return format_si(value)
    if isinstance(value, float):
        return format_seconds(value)
    return str(value)


def _print_stats(stats: JoinStats) -> None:
    """Render every populated JoinStats field, one aligned line each."""
    data = stats.as_dict()
    lines = []
    for name, value in data.items():
        if name not in _ALWAYS_SHOWN and not value:
            if name != "workers_used" or not data.get("stripes"):
                continue
        label = _STAT_LABELS.get(name, name.replace("_", " "))
        lines.append((label, _render_stat(name, value)))
    width = max(len(label) for label, _ in lines) + 1
    for label, rendered in lines:
        print(f"{label + ':':<{width}} {rendered}")


def _run_join(args: argparse.Namespace) -> int:
    points = _load_points(args)
    spec = JoinSpec(
        epsilon=args.epsilon,
        metric=args.metric,
        leaf_size=args.leaf_size,
        cascade=args.cascade,
        filter_dims=args.filter_dims,
        build=args.build,
        kernel_backend=args.kernel_backend,
    )
    workers = getattr(args, "workers", None)
    engine = getattr(args, "engine", "auto")
    if getattr(args, "explain", False):
        if args.algorithm != "epsilon-kdb":
            raise InvalidParameterError(
                "--explain plans the epsilon-kdb strategies; "
                f"--algorithm {args.algorithm} has nothing to plan"
            )
        from repro import plan_execution

        plan = plan_execution(
            spec,
            len(points),
            int(points.shape[1]),
            n_workers=workers,
            forced=None if engine == "auto" else engine,
        )
        plan.format_table().print()
        print(
            f"chosen: {plan.chosen}"
            + (" (forced)" if plan.forced else " (planned)")
        )
        return 0
    backend = resolve_kernel_backend(args.kernel_backend).name
    print(
        f"joining {len(points)} points, d={points.shape[1]}, "
        f"eps={spec.epsilon}, metric={spec.metric.name}, "
        f"algorithm={args.algorithm}, build={spec.resolved_build()}, "
        f"kernel backend={backend}"
        + (f", workers={workers}" if workers else "")
        + (f", engine={engine}" if engine != "auto" else "")
    )
    tracing = bool(
        args.trace or args.trace_summary or args.profile or args.sample_memory
    )
    tracer = Tracer() if tracing else None
    started = time.perf_counter()
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(trace.activate(tracer))
        with profiled_span(
            "cli-join",
            profile=args.profile,
            sample_memory=args.sample_memory,
            algorithm=args.algorithm,
            epsilon=args.epsilon,
            points=len(points),
            dims=int(points.shape[1]),
        ):
            result = similarity_join(
                points,
                epsilon=args.epsilon,
                metric=args.metric,
                algorithm=args.algorithm,
                leaf_size=args.leaf_size,
                n_workers=workers,
                task_timeout=getattr(args, "task_timeout", None),
                max_task_retries=getattr(args, "max_task_retries", None),
                cascade=args.cascade,
                filter_dims=args.filter_dims,
                kernel_backend=args.kernel_backend,
                build=args.build,
                engine=engine,
                return_result=True,
            )
    elapsed = time.perf_counter() - started
    _print_stats(result.stats)
    print(f"wall clock: {format_seconds(elapsed)}")
    if args.output:
        save_pairs(args.output, result.pairs)
        print(f"wrote pairs to {args.output}")
    if args.stats_json:
        payload = result.stats.as_dict()
        if result.plan is not None:
            payload["plan"] = result.plan.as_dict()
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote stats to {args.stats_json}")
    if tracer is not None:
        spans = tracer.export()
        if args.trace:
            if args.trace_format == "chrome":
                write_chrome_trace(spans, args.trace)
            else:
                write_jsonl(spans, args.trace)
            print(
                f"wrote {len(spans)} trace spans to {args.trace} "
                f"({args.trace_format})"
            )
        if args.trace_summary:
            print()
            print(format_tree(spans))
    return 0


def _iter_update_lines(path: str):
    """Yield parsed JSONL updates from a file path or stdin (``-``)."""
    handle = sys.stdin if path == "-" else open(path)
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidParameterError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            yield lineno, row
    finally:
        if handle is not sys.stdin:
            handle.close()


def _emit_trace(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    if tracer is None:
        return
    spans = tracer.export()
    if args.trace:
        if args.trace_format == "chrome":
            write_chrome_trace(spans, args.trace)
        else:
            write_jsonl(spans, args.trace)
        print(
            f"wrote {len(spans)} trace spans to {args.trace} "
            f"({args.trace_format})"
        )
    if args.trace_summary:
        print()
        print(format_tree(spans))


def _run_join_stream(args: argparse.Namespace) -> int:
    spec = JoinSpec(
        epsilon=args.epsilon,
        metric=args.metric,
        leaf_size=args.leaf_size,
        cascade=args.cascade,
        filter_dims=args.filter_dims,
        build=args.build,
        delta_threshold=args.delta_threshold,
        kernel_backend=args.kernel_backend,
    )
    print(
        "kernel backend: "
        f"{resolve_kernel_backend(args.kernel_backend).name}"
    )
    workers = args.workers
    engine = "parallel" if workers and workers > 1 else "serial"
    if args.persist:
        session = IncrementalJoin.open(
            args.persist,
            spec=spec,
            sync_mode=args.sync_mode,
            engine=engine,
            n_workers=workers,
            keep_generations=args.keep_generations,
        )
    else:
        session = IncrementalJoin(spec, engine=engine, n_workers=workers)
    resumed = session.last_update_seq > 0 or session.n_live > 0
    if resumed:
        print(
            f"resumed session at {args.persist}: {session.n_live} live "
            f"points, seq {session.last_update_seq}, "
            f"{session.stats.wal_records_replayed} WAL records replayed"
        )
    tracing = bool(args.trace or args.trace_summary)
    tracer = Tracer() if tracing else None
    added = []
    retracted = []

    def apply(label: str, op: str, payload) -> None:
        if op == "insert":
            delta = session.insert(np.asarray(payload, dtype=np.float64))
            if len(delta.added):
                added.append(delta.added)
            ids = (
                f"(ids {delta.ids[0]}..{delta.ids[-1]}) " if len(delta.ids) else ""
            )
            print(
                f"[{label}] insert {len(delta.ids)} points {ids}"
                f"+{len(delta.added)} pairs, delta {session.delta_size}, "
                f"est {format_si(int(round(session.estimated_join_size)))}"
            )
        else:
            delta = session.delete(payload)
            if len(delta.retracted):
                retracted.append(delta.retracted)
            print(
                f"[{label}] delete {len(delta.ids)} ids: "
                f"-{len(delta.retracted)} pairs, "
                f"est {format_si(int(round(session.estimated_join_size)))}"
            )

    started = time.perf_counter()
    with ExitStack() as stack:
        stack.callback(session.close)
        if tracer is not None:
            stack.enter_context(trace.activate(tracer))
        if not args.no_initial and not resumed:
            points = _load_points(args)
            print(
                f"seeding session with {len(points)} points, "
                f"d={points.shape[1]}, eps={spec.epsilon}, "
                f"metric={spec.metric.name}"
            )
            apply("seed", "insert", points)
        try:
            for lineno, row in _iter_update_lines(args.updates):
                try:
                    op, payload = normalize_update(row)
                    apply(str(lineno), op, payload)
                except InvalidParameterError as exc:
                    # One line — file, line, reason — not a traceback;
                    # everything applied so far stays applied (and, with
                    # --persist, journaled).
                    print(
                        f"error: {args.updates}:{lineno}: {exc}",
                        file=sys.stderr,
                    )
                    return 2
        except InvalidParameterError as exc:
            # Malformed JSON: the message already carries path:line.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.persist:
            # The durable ground truth, correct also for resumed runs
            # where earlier batches predate this process's ledger.
            pairs = session.current_pairs()
        else:
            empty = np.empty((0, 2), dtype=np.int64)
            pairs = subtract_pairs(
                np.concatenate(added) if added else empty,
                np.concatenate(retracted) if retracted else empty,
            )
    elapsed = time.perf_counter() - started
    print(
        f"{session.stats.updates_applied} batches: {len(pairs)} surviving "
        f"pairs over {session.n_live} live points"
    )
    _print_stats(session.stats)
    print(f"wall clock: {format_seconds(elapsed)}")
    if args.output:
        save_pairs(args.output, pairs)
        print(f"wrote pairs to {args.output}")
    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            json.dump(session.stats.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote stats to {args.stats_json}")
    _emit_trace(tracer, args)
    return 0


def _run_join_open(args: argparse.Namespace) -> int:
    tracing = bool(args.trace or args.trace_summary)
    tracer = Tracer() if tracing else None
    started = time.perf_counter()
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(trace.activate(tracer))
        try:
            session = IncrementalJoin.open(
                args.path,
                sync_mode=args.sync_mode,
                keep_generations=args.keep_generations,
            )
        except (CorruptSnapshotError, InvalidParameterError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        stack.callback(session.close)
        stats = session.stats
        print(
            f"recovered session at {args.path}: {session.n_live} live "
            f"points (d={session.dims}), seq {session.last_update_seq}, "
            f"{stats.wal_records_replayed} WAL records replayed, "
            f"{stats.corrupt_frames_discarded} corrupt frames discarded"
        )
        pairs = session.current_pairs()
    elapsed = time.perf_counter() - started
    print(f"{len(pairs)} surviving pairs over {session.n_live} live points")
    _print_stats(stats)
    print(f"wall clock: {format_seconds(elapsed)}")
    if args.output:
        save_pairs(args.output, pairs)
        print(f"wrote pairs to {args.output}")
    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            json.dump(stats.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote stats to {args.stats_json}")
    _emit_trace(tracer, args)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import JoinServer

    tracer = Tracer() if args.trace else None

    async def run() -> None:
        server = JoinServer(
            args.host,
            args.port,
            coalesce_window=args.coalesce_window,
            max_predicted_pairs=args.max_predicted_pairs,
            max_inflight=args.max_inflight,
            max_pending=args.max_pending,
            default_deadline=args.deadline,
            default_kernel_backend=args.kernel_backend,
        )
        await server.start()
        print(
            f"serving on {args.host}:{server.port} "
            f"(coalesce window {args.coalesce_window}s, "
            f"size budget {args.max_predicted_pairs or 'none'}, "
            f"kernel backend {server.resolved_kernel_backend})",
            flush=True,
        )
        try:
            await server.serve_until_shutdown()
        finally:
            await server.stop()
            if args.metrics_json:
                with open(args.metrics_json, "w") as handle:
                    json.dump(
                        server.metrics.as_dict(), handle, indent=2, sort_keys=True
                    )
                    handle.write("\n")
                print(f"wrote metrics to {args.metrics_json}")

    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(trace.activate(tracer))
        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("interrupted; sessions closed")
    if tracer is not None:
        spans = tracer.export()
        if args.trace_format == "chrome":
            write_chrome_trace(spans, args.trace)
        else:
            write_jsonl(spans, args.trace)
        print(f"wrote {len(spans)} trace spans to {args.trace}")
    return 0


def _explain_attach(path: str) -> int:
    """Offline ``query --explain``: plan the attach for a persisted dir.

    Opens the newest snapshot as a read-only memmapped view (no server,
    no materialization) and prints the planner's choice between serving
    queries straight off it (``snapshot-reuse``) and a full recovery
    (``serial``).  A stale or damaged snapshot reports that recovery is
    required instead of failing.
    """
    from repro import plan_execution
    from repro.errors import StorageError
    from repro.storage import SnapshotView

    try:
        view = SnapshotView.open(path)
    except StorageError as exc:
        print(f"{path}: snapshot view unavailable ({exc})")
        print("attach would recover the session (WAL replay) instead")
        return 0
    try:
        plan = plan_execution(
            view.spec,
            view.n_live,
            view.dims or 1,
            snapshot_bytes=view.snapshot_bytes,
            strategies=("serial", "snapshot-reuse"),
        )
        plan.format_table().print()
        verdict = (
            "attach serves queries off the memmapped snapshot "
            "(zero materialization)"
            if plan.chosen == "snapshot-reuse"
            else "attach recovers the full session"
        )
        print(f"chosen: {plan.chosen} — {verdict}")
    finally:
        view.close()
    return 0


def _run_query(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeClient

    if args.explain:
        if not args.path:
            print(
                "error: query --explain plans a persisted attach; "
                "it needs --path",
                file=sys.stderr,
            )
            return 2
        return _explain_attach(args.path)
    if args.port is None:
        print(
            "error: query needs --port (or --explain with --path for "
            "an offline plan)",
            file=sys.stderr,
        )
        return 2

    async def run() -> int:
        client = await ServeClient.connect(args.host, args.port)
        try:
            info = await client.attach(
                args.tenant,
                epsilon=args.epsilon,
                metric=args.metric,
                path=args.path,
                keep_generations=args.keep_generations,
            )
            print(
                f"attached {args.tenant!r}: {info['n_live']} live points, "
                f"eps={info['epsilon']}, "
                f"{'persisted' if info['persisted'] else 'in-memory'}"
            )
            if args.insert:
                points = load_points(args.insert)
                ids = await client.insert(args.tenant, points)
                print(f"inserted {len(ids)} points (ids {ids[0]}..{ids[-1]})")
            if args.range:
                queries = [
                    np.array([float(v) for v in coords.split(",")])
                    for coords in args.range
                ]
                answers = await asyncio.gather(
                    *[
                        client.range_query(args.tenant, q, eps=args.eps)
                        for q in queries
                    ]
                )
                for coords, ids in zip(args.range, answers):
                    preview = ", ".join(str(i) for i in ids[:8])
                    suffix = ", ..." if len(ids) > 8 else ""
                    print(f"range({coords}): {len(ids)} hits [{preview}{suffix}]")
            if args.pairs:
                pairs = await client.pairs(args.tenant)
                print(f"current pairs: {len(pairs)}")
            if args.stats:
                stats = await client.stats(args.tenant)
                stats.pop("id", None)
                stats.pop("ok", None)
                print(json.dumps(stats, indent=2, sort_keys=True))
            if args.shutdown:
                await client.shutdown()
                print("server shutting down")
        finally:
            await client.close()
        return 0

    try:
        return asyncio.run(run())
    except ConnectionRefusedError:
        print(
            f"error: no server listening on {args.host}:{args.port}",
            file=sys.stderr,
        )
        return 2


def _run_calibrate(args: argparse.Namespace) -> int:
    from repro.planner import (
        calibrate_and_save,
        default_profile_path,
        set_active_profile,
    )

    target = args.out or default_profile_path()
    if not args.force:
        print(f"checking cached profile at {target} ...")
    profile, path, ran = calibrate_and_save(path=args.out, force=args.force)
    set_active_profile(profile)
    if ran:
        print(f"calibrated this host; profile written to {path}")
    else:
        print(f"reusing cached profile at {path} (re-measure with --force)")
    table = Table(
        f"cost profile ({profile.source}, host {profile.host or 'n/a'})",
        ["constant", "value"],
    )
    for name, value in profile.as_dict().items():
        if name in ("version", "host", "source"):
            continue
        if name == "calibrated_at":
            value = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(value)
            ) if value else "never"
        elif name == "tile_rows":
            value = format_si(int(value))
        elif name.endswith("_factor"):
            value = f"{value:.2f}x"  # dimensionless multiplier
        elif isinstance(value, float):
            # The per-unit constants live in the nano/microsecond range;
            # scientific notation keeps them distinguishable.
            value = f"{value:.3e} s"
        table.add_row(name, str(value))
    table.print()
    return 0


def _run_search(args: argparse.Namespace) -> int:
    points = _load_points(args)
    spec = JoinSpec(
        epsilon=args.epsilon,
        metric=args.metric,
        leaf_size=args.leaf_size,
        cascade=args.cascade,
        filter_dims=args.filter_dims,
        build=args.build,
    )
    started = time.perf_counter()
    tree = EpsilonKdbTree.build(points, spec)
    build_seconds = time.perf_counter() - started
    print(
        f"built epsilon-kdB tree over {len(points)} points "
        f"(d={points.shape[1]}) in {format_seconds(build_seconds)}"
    )
    if args.query:
        queries = np.array(
            [[float(v) for v in q.split(",")] for q in args.query]
        )
    else:
        rng = np.random.default_rng(args.seed)
        queries = points[rng.choice(len(points), size=min(args.queries, len(points)), replace=False)]
    started = time.perf_counter()
    for query in queries:
        hits = tree.range_query(query)
        preview = ", ".join(str(h) for h in hits[:8])
        suffix = ", ..." if len(hits) > 8 else ""
        print(f"query {np.round(query[:4], 3).tolist()}...: "
              f"{len(hits)} hits [{preview}{suffix}]")
    elapsed = time.perf_counter() - started
    print(
        f"{len(queries)} queries in {format_seconds(elapsed)} "
        f"({format_seconds(elapsed / max(1, len(queries)))} each)"
    )
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    points = _load_points(args)
    spec = JoinSpec(
        epsilon=args.epsilon,
        metric=args.metric,
        leaf_size=args.leaf_size,
        cascade=args.cascade,
        filter_dims=args.filter_dims,
        build=args.build,
    )
    table = Table(
        f"all algorithms on {len(points)} points, d={points.shape[1]}, "
        f"eps={spec.epsilon}, metric={spec.metric.name}",
        ["algorithm", "time", "pairs", "dist comps", "node pairs"],
    )
    counts = set()
    for name in ALGORITHMS:
        if name in args.skip:
            continue
        sink = PairCounter()
        started = time.perf_counter()
        result = SELF_JOIN_REGISTRY[name](points, spec, sink=sink)
        elapsed = time.perf_counter() - started
        counts.add(sink.count)
        table.add_row(
            name,
            format_seconds(elapsed),
            format_si(sink.count),
            format_si(result.stats.distance_computations),
            format_si(result.stats.node_pairs_visited),
        )
    table.print()
    if len(counts) > 1:
        print("WARNING: algorithms disagree on the pair count!", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare flags mean the (historical) join subcommand.
    if argv and argv[0].startswith("-"):
        argv = ["join", *argv]
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "search":
        return _run_search(args)
    if args.command == "join":
        return _run_join(args)
    if args.command == "join-stream":
        return _run_join_stream(args)
    if args.command == "join-open":
        return _run_join_open(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "calibrate":
        return _run_calibrate(args)
    build_parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
