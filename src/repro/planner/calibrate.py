"""One-time micro-probes that measure this host's cost constants.

Each probe isolates one term of the planner's cost formulas and times it
on a small synthetic workload: a real ε-kdB join for the kernel and
traversal constants, flat-vs-pointer builds for the build ratio, a
:class:`~repro.storage.pages.PageStore` scan for simulated page I/O, a
two-worker process pool for dispatch and startup, a throwaway memmap for
snapshot mapping, and a :class:`~repro.core.backends.LeafBatchQueue`
sweep that picks the fastest tile size.  The whole suite runs in a few
seconds and the result is cached on disk (see
:func:`repro.planner.profile.default_profile_path`) keyed to the host
fingerprint, so subsequent runs are free.

Unlike :mod:`repro.planner.profile`, this module may import
:mod:`repro.core` freely — nothing in core imports it.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.core.backends import LeafBatchQueue
from repro.core.config import JoinSpec
from repro.core.join import epsilon_kdb_self_join
from repro.planner.profile import (
    CostProfile,
    default_profile_path,
    host_fingerprint,
    load_profile,
    save_profile,
    stamp,
)
from repro.storage.pages import PageStore, PointFile

__all__ = ["calibrate", "calibrate_and_save", "TILE_CANDIDATES"]

#: Tile sizes the calibration sweep races (row pairs per kernel call).
TILE_CANDIDATES: Sequence[int] = (16_384, 32_768, 65_536, 131_072)

#: Never store a constant at or below zero — clock resolution can round
#: a cheap probe to 0.0, and the planner divides by nothing.
_FLOOR = 1.0e-12


def _positive(value: float) -> float:
    if not math.isfinite(value) or value <= 0.0:
        return _FLOOR
    return max(value, _FLOOR)


def _noop(x: int) -> int:
    # Must be module-level so the process pool can pickle it.
    return x


def _probe_join_constants(profile: CostProfile) -> None:
    """Kernel, traversal, and build constants from one real join."""
    rng = np.random.RandomState(1234)
    n, d = 6000, 12
    points = rng.uniform(size=(n, d))
    spec = JoinSpec(epsilon=0.12)
    result = epsilon_kdb_self_join(points, spec)
    stats = result.stats
    rows = stats.cascade_candidates or stats.distance_computations
    profile.candidate_check_seconds = _positive(
        stats.kernel_seconds / max(1, rows * d)
    )
    profile.node_visit_seconds = _positive(
        (result.join_seconds - stats.kernel_seconds)
        / max(1, stats.node_pairs_visited)
    )
    profile.build_point_seconds = _positive(result.build_seconds / n)


def _probe_pointer_ratio() -> float:
    """Flat-vs-pointer build timing at a size where pointer is bearable."""
    rng = np.random.RandomState(99)
    points = rng.uniform(size=(1500, 8))
    flat = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.1, build="flat"))
    pointer = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.1, build="pointer"))
    return _positive(pointer.build_seconds) / _positive(flat.build_seconds)


def _probe_sort_constant() -> float:
    """Seconds per point per log2(n) of a plain numpy sort."""
    rng = np.random.RandomState(7)
    values = rng.uniform(size=200_000)
    best = float("inf")
    for _ in range(3):
        data = values.copy()
        started = time.perf_counter()
        data.sort()
        best = min(best, time.perf_counter() - started)
    m = len(values)
    return _positive(best / (m * math.log2(m)))


def _probe_page_io() -> float:
    """Seconds per simulated page through the PageStore counters."""
    rng = np.random.RandomState(42)
    points = rng.uniform(size=(20_000, 8))
    store = PageStore(page_rows=256)
    started = time.perf_counter()
    point_file = PointFile.from_points(store, points)
    for _ in point_file.scan():
        pass
    elapsed = time.perf_counter() - started
    pages = store.counters.reads + store.counters.writes
    return _positive(elapsed / max(1, pages))


def _probe_pool() -> tuple:
    """(worker_dispatch_seconds, pool_startup_seconds)."""
    try:
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=2) as pool:
            pool.submit(_noop, 0).result()
            startup = time.perf_counter() - started
            rounds = 16
            started = time.perf_counter()
            for future in [pool.submit(_noop, i) for i in range(rounds)]:
                future.result()
            dispatch = (time.perf_counter() - started) / rounds
    except (OSError, RuntimeError):
        # Sandboxed environments without fork/spawn keep the defaults,
        # which are pessimistic enough that serial keeps winning.
        defaults = CostProfile()
        return defaults.worker_dispatch_seconds, defaults.pool_startup_seconds
    return _positive(dispatch), _positive(startup)


def _probe_snapshot_bytes() -> float:
    """Seconds per byte of mapping + touching a cold file."""
    size = 4 * 1024 * 1024
    payload = np.arange(size // 8, dtype=np.int64)
    handle, path = tempfile.mkstemp(prefix="repro-calibrate-", suffix=".bin")
    try:
        os.close(handle)
        payload.tofile(path)
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            view = np.memmap(path, dtype=np.int64, mode="r")
            # Touch one element per 4 KiB page so the mapping is real.
            total = int(view[:: 4096 // 8].sum())
            best = min(best, time.perf_counter() - started)
            del view, total
        return _positive(best / size)
    finally:
        os.unlink(path)


def _probe_tile_rows() -> int:
    """Race LeafBatchQueue tile sizes on a realistic filter workload."""
    rng = np.random.RandomState(3)
    n, d, eps = 50_000, 12, 0.1
    points = rng.uniform(size=(n, d))
    total = 400_000
    rows_a = rng.randint(0, n, size=total).astype(np.int64)
    rows_b = rng.randint(0, n, size=total).astype(np.int64)

    def filter_rows(left: np.ndarray, right: np.ndarray) -> np.ndarray:
        diffs = np.abs(points[left] - points[right])
        return np.all(diffs <= eps, axis=1)

    def emit(left: np.ndarray, right: np.ndarray) -> None:
        pass

    best_tile, best_time = TILE_CANDIDATES[0], float("inf")
    chunk = 10_000  # feed in leaf-sized chunks, as the sweeps would
    for tile in TILE_CANDIDATES:
        queue = LeafBatchQueue(filter_rows, emit, tile_rows=tile)
        started = time.perf_counter()
        for pos in range(0, total, chunk):
            queue.add(rows_a[pos:pos + chunk], rows_b[pos:pos + chunk])
        queue.flush()
        elapsed = time.perf_counter() - started
        if elapsed < best_time:
            best_tile, best_time = tile, elapsed
    return best_tile


def calibrate() -> CostProfile:
    """Run every probe and return a freshly measured :class:`CostProfile`."""
    profile = CostProfile()
    _probe_join_constants(profile)
    profile.pointer_build_factor = _probe_pointer_ratio()
    profile.sort_point_seconds = _probe_sort_constant()
    profile.page_io_seconds = _probe_page_io()
    dispatch, startup = _probe_pool()
    profile.worker_dispatch_seconds = dispatch
    profile.pool_startup_seconds = startup
    profile.snapshot_byte_seconds = _probe_snapshot_bytes()
    profile.tile_rows = _probe_tile_rows()
    # sort_merge_overhead_factor and pointer_build_factor aside, every
    # constant above is now measured; the overhead factor is structural
    # (python sweep vs blocked kernels) and keeps its default.
    return stamp(profile)


def calibrate_and_save(
    path: Optional[str] = None, force: bool = False
) -> tuple:
    """Calibrate unless a profile for this host is already cached.

    Returns ``(profile, path, ran)`` where ``ran`` says whether the
    probes actually executed (False = cache hit).
    """
    path = path or default_profile_path()
    if not force:
        cached = load_profile(path)
        if cached.source == "calibrated" and cached.host == host_fingerprint():
            return cached, path, False
    profile = calibrate()
    save_profile(profile, path)
    return profile, path, True
