"""Score every viable execution strategy and pick the cheapest.

:func:`plan_execution` combines the analytic work predictions of
:mod:`repro.analysis.cost_model` (how many candidates, how many node
visits) with the calibrated per-unit constants of a
:class:`~repro.planner.profile.CostProfile` (how long each unit takes on
this host) into a predicted wall-clock cost per strategy, returning an
:class:`ExecutionPlan` whose ``chosen`` entry drives
``similarity_join(engine="auto")``, the serve layer's per-request
dispatch, and the snapshot-reuse-vs-rebuild decision for persisted
tenants.

The formulas deliberately stay first-order: the goal is to *rank*
strategies, not to forecast seconds precisely.  E22 measures the gap —
planner regret, chosen cost over oracle-best cost — across the
(n, d, ε, persisted?) matrix.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.cost_model import (
    predict_kdb_candidates,
    predict_kdb_candidates_cross,
    predict_sort_merge_candidates,
    predict_sort_merge_candidates_cross,
    split_depth,
)
from repro.errors import InvalidParameterError
from repro.planner.profile import CostProfile, active_profile

__all__ = [
    "ExecutionPlan",
    "StrategyCost",
    "ALL_STRATEGIES",
    "plan_execution",
]

#: Every strategy the planner knows how to score, in display order.
ALL_STRATEGIES = (
    "serial",
    "pointer",
    "parallel",
    "external",
    "sort-merge",
    "delta-probe",
    "snapshot-reuse",
)

#: Pages the external driver touches per input page: domain scan,
#: histogram scan, partition write, partition read, output drain.
_EXTERNAL_PASSES = 5.0

#: Default page size (rows) of the external driver's simulated disk.
_EXTERNAL_PAGE_ROWS = 256


@dataclass
class StrategyCost:
    """One scored strategy.

    ``feasible`` is False when the strategy cannot run for this request
    (no snapshot to reuse, no delta session, or a memory budget the
    in-memory engines would blow); infeasible strategies keep their
    predicted cost for the explain table but are never chosen.
    """

    strategy: str
    predicted_seconds: float
    feasible: bool = True
    chosen: bool = False
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "predicted_seconds": self.predicted_seconds,
            "feasible": self.feasible,
            "chosen": self.chosen,
            "detail": self.detail,
        }


@dataclass
class ExecutionPlan:
    """The planner's verdict for one join or query request."""

    chosen: str
    costs: List[StrategyCost] = field(default_factory=list)
    n: int = 0
    dims: int = 0
    epsilon: float = 0.0
    plan_seconds: float = 0.0
    profile_source: str = "default"
    forced: Optional[str] = None

    @property
    def predicted_cost(self) -> float:
        """Predicted seconds of the chosen strategy."""
        for cost in self.costs:
            if cost.chosen:
                return cost.predicted_seconds
        return 0.0

    def cost_of(self, strategy: str) -> Optional[StrategyCost]:
        for cost in self.costs:
            if cost.strategy == strategy:
                return cost
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chosen": self.chosen,
            "n": self.n,
            "dims": self.dims,
            "epsilon": self.epsilon,
            "plan_seconds": self.plan_seconds,
            "profile_source": self.profile_source,
            "forced": self.forced,
            "costs": [cost.as_dict() for cost in self.costs],
        }

    def format_table(self):
        """Render the explain table (lazy import keeps planner light)."""
        from repro.analysis.report import Table, format_seconds

        table = Table(
            f"execution plan — n={self.n} d={self.dims} eps={self.epsilon:g}"
            f" (profile: {self.profile_source})",
            ["strategy", "predicted", "feasible", "chosen"],
        )
        for cost in self.costs:
            table.add_row(
                cost.strategy,
                format_seconds(cost.predicted_seconds),
                "yes" if cost.feasible else "no",
                "<==" if cost.chosen else "",
            )
        return table


def _traversal_visits(n: int, dims: int, eps: float, leaf_size: int) -> float:
    """Rough node-pair visit count: leaves times bounded adjacency fan-out."""
    leaves = max(1.0, n / max(1, leaf_size))
    k = split_depth(n, eps, leaf_size, dims)
    return leaves * (3.0 ** min(k, 3))


def plan_execution(
    spec,
    n: int,
    dims: int,
    *,
    n2: Optional[int] = None,
    eps: Optional[float] = None,
    sketch_estimate: Optional[float] = None,
    snapshot_bytes: Optional[int] = None,
    delta_size: Optional[int] = None,
    n_workers: Optional[int] = None,
    memory_budget_points: Optional[int] = None,
    profile: Optional[CostProfile] = None,
    strategies: Optional[Sequence[str]] = None,
    forced: Optional[str] = None,
) -> ExecutionPlan:
    """Score the viable strategies for one request and choose the cheapest.

    Args:
        spec: the :class:`~repro.core.config.JoinSpec` of the request
            (epsilon, leaf_size, and n_workers defaults come from it).
        n: number of points (outer set for two-set joins).
        dims: point dimensionality.
        n2: inner-set size — switches the candidate model to the
            cross-join (``n_a * n_b``) variant.
        eps: query radius override (defaults to ``spec.epsilon``).
        sketch_estimate: a live session's ``JoinSizeSketch`` estimate of
            the output size; raises the candidate floor when the
            analytic model under-predicts clustered data.
        snapshot_bytes: size of a persisted snapshot generation, when
            one exists — enables the ``snapshot-reuse`` strategy.
        delta_size: live delta-buffer rows of an open incremental
            session — enables the ``delta-probe`` strategy.
        n_workers: process-pool size for the parallel strategy
            (defaults to ``spec.n_workers`` or the CPU count).
        memory_budget_points: points that fit in memory; when set and
            smaller than the input, every in-memory strategy becomes
            infeasible and the external driver is the only choice.
        profile: cost constants; defaults to the process-wide active
            profile (see :func:`repro.planner.profile.active_profile`).
        strategies: restrict scoring to this subset (the serve layer
            only dispatches serial vs parallel for mini-joins).
        forced: record that the caller pinned this strategy
            (``engine="parallel"`` etc.); it is chosen regardless of its
            predicted cost, but every cost still lands in the plan so
            ``--explain`` and the mispredict metrics stay meaningful.

    Returns:
        An :class:`ExecutionPlan`; ``plan.chosen`` names the winner.
    """
    started = time.perf_counter()
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if dims < 1:
        raise InvalidParameterError(f"dims must be >= 1, got {dims}")
    profile = profile if profile is not None else active_profile()
    eps = float(eps if eps is not None else spec.epsilon)
    leaf_size = int(spec.leaf_size)
    total = n + (n2 or 0)
    workers = int(
        n_workers
        or (spec.n_workers or 0)
        or max(1, (os.cpu_count() or 2) - 1)
    )

    # --- predicted work counts ------------------------------------------
    if n2 is None:
        kdb_candidates = predict_kdb_candidates(
            max(n, 2), dims, eps, leaf_size=leaf_size
        )
        sm_candidates = predict_sort_merge_candidates(max(n, 2), eps)
    else:
        kdb_candidates = predict_kdb_candidates_cross(
            max(n, 1), max(n2, 1), dims, eps, leaf_size=leaf_size
        )
        sm_candidates = predict_sort_merge_candidates_cross(
            max(n, 1), max(n2, 1), eps
        )
    if sketch_estimate:
        # The sketch estimates *output* pairs, a lower bound on
        # candidates actually checked.
        kdb_candidates = max(kdb_candidates, float(sketch_estimate))
        sm_candidates = max(sm_candidates, float(sketch_estimate))

    visits = _traversal_visits(total, dims, eps, leaf_size)
    check = profile.candidate_check_seconds * dims
    build_cost = total * profile.build_point_seconds
    traverse_cost = visits * profile.node_visit_seconds
    kernel_cost = kdb_candidates * check
    fits_in_memory = (
        memory_budget_points is None or total <= memory_budget_points
    )

    costs: List[StrategyCost] = []

    def add(strategy, seconds, feasible=True, detail=""):
        if strategies is not None and strategy not in strategies:
            return
        costs.append(
            StrategyCost(
                strategy=strategy,
                predicted_seconds=float(seconds),
                feasible=bool(feasible),
                detail=detail,
            )
        )

    add(
        "serial",
        build_cost + traverse_cost + kernel_cost,
        feasible=fits_in_memory,
        detail=f"candidates~{kdb_candidates:.0f}",
    )
    add(
        "pointer",
        profile.pointer_build_factor * build_cost + traverse_cost + kernel_cost,
        feasible=fits_in_memory,
        detail=f"build x{profile.pointer_build_factor:.0f}",
    )
    add(
        "parallel",
        build_cost
        + traverse_cost
        + kernel_cost / max(1, workers)
        + profile.pool_startup_seconds
        + 2.0 * workers * profile.worker_dispatch_seconds,
        feasible=fits_in_memory and total >= 2,
        detail=f"workers={workers}",
    )
    pages = math.ceil(max(1, total) / _EXTERNAL_PAGE_ROWS)
    add(
        "external",
        build_cost
        + traverse_cost
        + kernel_cost
        + _EXTERNAL_PASSES * pages * profile.page_io_seconds,
        feasible=total >= 2,
        detail=f"pages~{pages}",
    )
    add(
        "sort-merge",
        total * math.log2(max(2, total)) * profile.sort_point_seconds
        + sm_candidates * check * profile.sort_merge_overhead_factor,
        feasible=fits_in_memory,
        detail=f"candidates~{sm_candidates:.0f}",
    )
    if delta_size is not None:
        fraction = min(1.0, delta_size / max(1, total))
        add(
            "delta-probe",
            traverse_cost * fraction + kernel_cost * 2.0 * fraction,
            feasible=fits_in_memory,
            detail=f"delta={delta_size}",
        )
    if snapshot_bytes is not None:
        add(
            "snapshot-reuse",
            snapshot_bytes * profile.snapshot_byte_seconds
            + traverse_cost
            + kernel_cost,
            detail=f"bytes={snapshot_bytes}",
        )

    if not costs:
        raise InvalidParameterError(
            f"no strategies to plan (restriction {strategies!r})"
        )

    if forced is not None:
        chosen = forced
        matched = [cost for cost in costs if cost.strategy == forced]
        if not matched:
            raise InvalidParameterError(
                f"forced strategy {forced!r} is not plannable here "
                f"(have {[cost.strategy for cost in costs]})"
            )
        matched[0].chosen = True
    else:
        viable = [cost for cost in costs if cost.feasible]
        if not viable:
            raise InvalidParameterError(
                "no feasible strategy: input exceeds the memory budget "
                "and the external driver was excluded"
            )
        winner = min(viable, key=lambda cost: cost.predicted_seconds)
        winner.chosen = True
        chosen = winner.strategy

    return ExecutionPlan(
        chosen=chosen,
        costs=costs,
        n=int(n),
        dims=int(dims),
        epsilon=eps,
        plan_seconds=time.perf_counter() - started,
        profile_source=profile.source,
        forced=forced,
    )
