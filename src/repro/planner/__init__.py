"""Cost-based execution planner.

Turns :mod:`repro.analysis.cost_model` from a paper-validation artifact
into the runtime brain of the system: :mod:`~repro.planner.calibrate`
measures this host's per-unit costs once and caches them as a
:class:`~repro.planner.profile.CostProfile`;
:func:`~repro.planner.plan.plan_execution` combines those constants with
the analytic work predictions (and a live session's join-size sketch)
into an :class:`~repro.planner.plan.ExecutionPlan` ranking serial,
pointer, parallel, external, sort-merge, delta-probe, and
snapshot-reuse execution.  ``similarity_join(engine="auto")``, the
serve layer, and ``repro join --explain`` all consume it.
"""

from repro.planner.calibrate import TILE_CANDIDATES, calibrate, calibrate_and_save
from repro.planner.plan import (
    ALL_STRATEGIES,
    ExecutionPlan,
    StrategyCost,
    plan_execution,
)
from repro.planner.profile import (
    PROFILE_ENV_VAR,
    CostProfile,
    active_profile,
    active_tile_rows,
    default_profile_path,
    host_fingerprint,
    load_profile,
    save_profile,
    set_active_profile,
)

__all__ = [
    "ALL_STRATEGIES",
    "CostProfile",
    "ExecutionPlan",
    "PROFILE_ENV_VAR",
    "StrategyCost",
    "TILE_CANDIDATES",
    "active_profile",
    "active_tile_rows",
    "calibrate",
    "calibrate_and_save",
    "default_profile_path",
    "host_fingerprint",
    "load_profile",
    "plan_execution",
    "save_profile",
    "set_active_profile",
]
