"""Calibrated per-host cost constants for the execution planner.

A :class:`CostProfile` holds the handful of hardware constants the
planner multiplies against the analytic work predictions of
:mod:`repro.analysis.cost_model`: seconds per candidate coordinate
checked, per node pair visited, per simulated page of I/O, per stripe
task dispatched to the process pool, and so on.  The defaults are
conservative order-of-magnitude figures good enough to rank strategies
on a typical machine; ``repro calibrate`` (see
:mod:`repro.planner.calibrate`) replaces them with measured values and
caches the result as JSON, fingerprinted to the host so a profile
copied to different hardware is ignored rather than trusted.

This module deliberately imports nothing from :mod:`repro.core`: the
kernel work-queue (:class:`~repro.core.backends.LeafBatchQueue`) reads
its auto-tuned tile size from the active profile, so the dependency
must point this way only.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.errors import InvalidParameterError

__all__ = [
    "CostProfile",
    "PROFILE_ENV_VAR",
    "active_profile",
    "active_tile_rows",
    "default_profile_path",
    "host_fingerprint",
    "load_profile",
    "save_profile",
    "set_active_profile",
]

#: Schema version stamped into the JSON file; a mismatch falls back to
#: defaults instead of misreading old fields.
PROFILE_VERSION = 1

#: Environment override for the profile path (CI points this at a
#: workspace file so calibration survives between steps).
PROFILE_ENV_VAR = "REPRO_COST_PROFILE"

#: Mirror of :data:`repro.core.backends.DEFAULT_TILE_ROWS` — kept as a
#: literal because backends resolves its tile size *from* this module.
_DEFAULT_TILE_ROWS = 65_536


def host_fingerprint() -> str:
    """Stable hash of the hardware/interpreter a profile was measured on."""
    blob = json.dumps(
        {
            "machine": platform.machine(),
            "processor": platform.processor(),
            "system": platform.system(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        sort_keys=True,
    ).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


@dataclass
class CostProfile:
    """Per-unit execution costs of this host, in seconds.

    Attributes:
        candidate_check_seconds: per candidate pair *per dimension*
            spent in the leaf filter kernel (the cascade reads fewer
            coordinates than ``d``, which this constant absorbs).
        node_visit_seconds: per node pair the tree traversal touches
            outside the kernel (descent, adjacency grouping, sweep
            bookkeeping).
        page_io_seconds: per simulated disk page read or written by the
            external-memory driver.
        worker_dispatch_seconds: per stripe task shipped to and merged
            from the process pool, excluding pool startup.
        pool_startup_seconds: one-time cost of spinning up the process
            pool (fork/spawn plus the first round-trip).
        build_point_seconds: per point of the flat (radix) tree build,
            sort included.
        pointer_build_factor: multiplier of the flat build cost when the
            per-node pointer build runs instead (E17 measures 16-21x).
        sort_point_seconds: per point per ``log2 n`` of a plain numpy
            sort — the cost model of the sort-merge baseline's sort.
        sort_merge_overhead_factor: multiplier on the sort-merge
            baseline's per-candidate cost relative to the kernel path —
            its windowed python sweep pays per-candidate python and
            small-array overhead the blocked kernels amortize away, so
            the realistic figure is tens, not units.  The crossover the
            paper predicts (sort-merge wins at very small radii, where
            its band filter alone kills nearly everything) survives:
            with the default 40, sort-merge plans cheaper only once the
            per-coordinate band drops below about 0.025.
        snapshot_byte_seconds: per byte of mapping and validating a
            persisted snapshot (memmap open + checksum, amortized).
        tile_rows: auto-tuned :class:`~repro.core.backends.LeafBatchQueue`
            tile capacity chosen by the calibration sweep.
        host: :func:`host_fingerprint` of the measuring machine; empty
            for the built-in defaults.
        calibrated_at: unix timestamp of the measurement (0 = defaults).
        source: ``"default"``, ``"calibrated"``, or ``"synthetic"``
            (tests inject synthetic profiles to force decisions).
    """

    candidate_check_seconds: float = 2.0e-9
    node_visit_seconds: float = 2.0e-6
    page_io_seconds: float = 2.0e-5
    worker_dispatch_seconds: float = 2.0e-3
    pool_startup_seconds: float = 0.35
    build_point_seconds: float = 5.0e-7
    pointer_build_factor: float = 18.0
    sort_point_seconds: float = 1.5e-8
    sort_merge_overhead_factor: float = 40.0
    snapshot_byte_seconds: float = 2.0e-10
    tile_rows: int = _DEFAULT_TILE_ROWS
    host: str = ""
    calibrated_at: float = 0.0
    source: str = "default"

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("host", "source"):
                if not isinstance(value, str):
                    raise InvalidParameterError(
                        f"CostProfile.{spec.name} must be a string, got {value!r}"
                    )
                continue
            if spec.name == "tile_rows":
                if int(value) < 1:
                    raise InvalidParameterError(
                        f"CostProfile.tile_rows must be >= 1, got {value!r}"
                    )
                self.tile_rows = int(value)
                continue
            value = float(value)
            floor = 0.0 if spec.name == "calibrated_at" else None
            if not (value >= 0.0 if floor == 0.0 else value > 0.0) or value != value:
                raise InvalidParameterError(
                    f"CostProfile.{spec.name} must be a positive finite "
                    f"number, got {value!r}"
                )
            setattr(self, spec.name, value)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"version": PROFILE_VERSION}
        for spec in fields(self):
            out[spec.name] = getattr(self, spec.name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CostProfile":
        if data.get("version") != PROFILE_VERSION:
            raise InvalidParameterError(
                f"cost profile version {data.get('version')!r} is not "
                f"{PROFILE_VERSION}"
            )
        kwargs = {
            spec.name: data[spec.name]
            for spec in fields(cls)
            if spec.name in data
        }
        return cls(**kwargs)


def default_profile_path() -> str:
    """Where the calibrated profile lives: env override, else the cache dir."""
    override = os.environ.get(PROFILE_ENV_VAR)
    if override:
        return override
    cache_home = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
    )
    return os.path.join(cache_home, "repro", "cost_profile.json")


def save_profile(profile: CostProfile, path: Optional[str] = None) -> str:
    """Write ``profile`` as JSON (atomically); returns the path used."""
    path = path or default_profile_path()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(profile.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_profile(path: Optional[str] = None) -> CostProfile:
    """Load the cached profile, falling back to defaults.

    Defaults are returned (never an exception) when the file is missing,
    unreadable, from another schema version, or — crucially — calibrated
    on a different host: constants measured elsewhere would mis-rank
    strategies silently, which is worse than the conservative defaults.
    """
    path = path or default_profile_path()
    try:
        with open(path) as handle:
            data = json.load(handle)
        profile = CostProfile.from_dict(data)
    except (OSError, ValueError, InvalidParameterError, KeyError, TypeError):
        return CostProfile()
    if profile.host and profile.host != host_fingerprint():
        return CostProfile()
    return profile


_ACTIVE: Optional[CostProfile] = None


def active_profile() -> CostProfile:
    """The process-wide profile the planner and work-queue consult.

    Loaded lazily from :func:`default_profile_path` on first use;
    :func:`set_active_profile` overrides it (tests inject synthetic
    constants, ``repro calibrate`` installs fresh measurements).
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = load_profile()
    return _ACTIVE


def set_active_profile(profile: Optional[CostProfile]) -> None:
    """Install ``profile`` process-wide; ``None`` re-reads from disk lazily."""
    global _ACTIVE
    _ACTIVE = profile


def active_tile_rows() -> int:
    """Tile capacity for :class:`~repro.core.backends.LeafBatchQueue`."""
    return active_profile().tile_rows


def stamp(profile: CostProfile, source: str = "calibrated") -> CostProfile:
    """Mark ``profile`` as measured here and now."""
    profile.host = host_fingerprint()
    profile.calibrated_at = time.time()
    profile.source = source
    return profile
