"""Structured tracing: nestable spans with cross-process stitching.

The tracer is the ground truth the benchmark and CLI phase breakdowns
read from.  Code under measurement opens *spans*::

    from repro.obs import trace

    with trace.span("build", points=len(points)) as sp:
        tree = EpsilonKdbTree.build(points, spec)
    result.build_seconds = sp.duration

Spans nest per thread (a thread-local stack), carry attributes and
point-in-time *events*, and are timestamped with ``time.perf_counter()``
— on Linux that is ``CLOCK_MONOTONIC``, which is shared by every process
on the machine, so spans recorded in pool workers stitch onto the parent
timeline without clock translation.

Tracing is *ambient*: instrumented code talks to the module-level
current tracer (:func:`span`, :func:`add_event`, ...), which defaults to
the :class:`NullTracer`.  The disabled path is the design center: a null
span still measures its own duration (two clock reads — exactly the
``perf_counter`` arithmetic it replaces) but records nothing, allocates
one small object, and takes no locks, so production runs pay effectively
nothing.  Enable collection by activating a recording tracer::

    tracer = Tracer()
    with trace.activate(tracer):
        run_join()
    spans = tracer.export()          # list of serializable dicts

Worker processes build their own :class:`Tracer`, serialize its spans
with :meth:`Tracer.export`, ship them back alongside the task result,
and the parent re-attaches them with :meth:`Tracer.adopt` — span ids
embed the producing pid, so ids never collide across processes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "is_enabled",
    "activate",
    "span",
    "add_event",
    "set_attribute",
    "current_span_id",
    "record_span",
]


class Span:
    """One timed, attributed region of execution.

    ``start``/``end`` are ``time.perf_counter()`` seconds; ``span_id``
    and ``parent_id`` are strings of the form ``"<pid>-<seq>"`` so ids
    from different processes never collide.  ``events`` are point-in-time
    annotations (e.g. an injected fault) as ``{"name", "time", "attributes"}``
    dicts.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "events",
        "pid",
        "tid",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[Dict[str, Any]] = []
        self.pid = os.getpid()
        self.tid = threading.get_ident()

    @property
    def duration(self) -> float:
        """Span wall-clock in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append(
            {
                "name": name,
                "time": time.perf_counter(),
                "attributes": dict(attributes),
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form; the JSONL exporter writes exactly this."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": self.attributes,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            data["name"],
            data["span_id"],
            data.get("parent_id"),
            data["start"],
            data.get("attributes"),
        )
        span.end = data.get("end")
        span.events = list(data.get("events", ()))
        span.pid = data.get("pid", span.pid)
        span.tid = data.get("tid", span.tid)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} id={self.span_id} parent={self.parent_id} "
            f"dur={self.duration:.6f}s attrs={self.attributes}>"
        )


class _NullSpan:
    """Disabled-path span: measures its own duration, records nothing."""

    __slots__ = ("start", "end")

    # Class attributes shared by every instance: the null span has no
    # identity and belongs to no trace.
    name = ""
    span_id = ""
    parent_id = None
    attributes: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []

    def __init__(self) -> None:
        self.start = 0.0
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass


class NullTracer:
    """The default, disabled tracer: spans time themselves, nothing is kept."""

    enabled = False

    @contextmanager
    def span(self, name: str, parent_id: Optional[str] = None, **attributes: Any) -> Iterator[_NullSpan]:
        sp = _NullSpan()
        sp.start = time.perf_counter()
        try:
            yield sp
        finally:
            sp.end = time.perf_counter()

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def current_span_id(self) -> Optional[str]:
        return None

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        pass

    def adopt(self, span_dicts, parent_id: Optional[str] = None) -> None:
        pass


#: Process-global span-id sequence, shared by every Tracer instance so
#: ids stay unique even when many short-lived tracers run in one process
#: (a pool worker creates one per task attempt, and their spans are all
#: adopted into the same parent trace).
_SPAN_SEQ = itertools.count(1)


class Tracer:
    """Thread-safe collecting tracer.

    Finished spans accumulate in insertion order; :meth:`export` returns
    them as serializable dicts sorted by start time.  The *current span*
    is tracked per thread, so concurrent threads nest independently.
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> str:
        return f"{os.getpid()}-{next(_SPAN_SEQ)}"

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_span_id(self) -> Optional[str]:
        current = self.current_span()
        return current.span_id if current is not None else None

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, parent_id: Optional[str] = None, **attributes: Any) -> Iterator[Span]:
        """Open a nested span; it closes (and is recorded) on exit.

        ``parent_id`` overrides the ambient parent — workers use it to
        attach their root span under a parent-process span.
        """
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        sp = Span(name, self._new_id(), parent_id, time.perf_counter(), attributes)
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end = time.perf_counter()
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Record an already-timed span (e.g. a failed worker attempt)."""
        if parent_id is None:
            parent_id = self.current_span_id()
        sp = Span(name, self._new_id(), parent_id, start, attributes)
        sp.end = end
        with self._lock:
            self._spans.append(sp)
        return sp

    def add_event(self, name: str, **attributes: Any) -> None:
        """Annotate the current span; dropped when no span is open."""
        current = self.current_span()
        if current is not None:
            current.add_event(name, **attributes)

    def set_attribute(self, key: str, value: Any) -> None:
        current = self.current_span()
        if current is not None:
            current.set_attribute(key, value)

    # ------------------------------------------------------------------
    def adopt(self, span_dicts, parent_id: Optional[str] = None) -> None:
        """Stitch spans exported by another process into this trace.

        Roots among ``span_dicts`` (spans whose parent is not in the
        shipped set) are re-parented to ``parent_id`` (default: the
        current span), preserving the worker-side hierarchy below them.
        """
        span_dicts = list(span_dicts)
        if not span_dicts:
            return
        if parent_id is None:
            parent_id = self.current_span_id()
        shipped_ids = {d["span_id"] for d in span_dicts}
        adopted = []
        for data in span_dicts:
            sp = Span.from_dict(data)
            if sp.parent_id is None or sp.parent_id not in shipped_ids:
                sp.parent_id = parent_id
            adopted.append(sp)
        with self._lock:
            self._spans.extend(adopted)

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def export(self) -> List[Dict[str, Any]]:
        """All finished spans as dicts, sorted by start time."""
        with self._lock:
            spans = sorted(self._spans, key=lambda s: s.start)
        return [s.to_dict() for s in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-wide disabled tracer (shared, stateless).
NULL_TRACER = NullTracer()

_ACTIVE: Any = NULL_TRACER


def current_tracer():
    """The ambient tracer instrumented code talks to."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE.enabled


@contextmanager
def activate(tracer) -> Iterator[Any]:
    """Make ``tracer`` the ambient tracer for the duration of the block.

    Activation is process-global (matching the ``perf_counter`` clock it
    timestamps with); nested activations restore the previous tracer on
    exit.  Pass ``None`` to explicitly deactivate tracing for a block.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_TRACER if tracer is None else tracer
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def span(name: str, parent_id: Optional[str] = None, **attributes: Any):
    """Open a span on the ambient tracer (no-op handle when disabled)."""
    return _ACTIVE.span(name, parent_id=parent_id, **attributes)


def add_event(name: str, **attributes: Any) -> None:
    """Annotate the ambient tracer's current span."""
    _ACTIVE.add_event(name, **attributes)


def set_attribute(key: str, value: Any) -> None:
    """Set an attribute on the ambient tracer's current span."""
    _ACTIVE.set_attribute(key, value)


def current_span_id() -> Optional[str]:
    return _ACTIVE.current_span_id()


def record_span(
    name: str,
    start: float,
    end: float,
    parent_id: Optional[str] = None,
    **attributes: Any,
) -> None:
    """Record a pre-timed span on the ambient tracer."""
    _ACTIVE.record_span(name, start, end, parent_id=parent_id, **attributes)
