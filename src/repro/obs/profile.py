"""Opt-in profiling hooks: RSS sampling and per-phase ``cProfile``.

Both hooks are off by default and cost nothing when disabled (the
context managers degrade to bare ``yield``).  When enabled they attach
their findings to the ambient trace span, so profiles travel inside the
same artifact as the timing data:

* :class:`MemorySampler` — a daemon thread sampling resident set size
  at a fixed interval (``/proc/self/status`` on Linux, falling back to
  ``resource.getrusage``); records ``rss_peak_bytes`` / ``rss_samples``.
* :func:`profiled_span` — a span whose body runs under ``cProfile``;
  the top functions by cumulative time are stored in the span's
  ``profile`` attribute.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs import trace

__all__ = ["read_rss_bytes", "MemorySampler", "profiled_span"]


def read_rss_bytes() -> int:
    """Current resident set size in bytes (0 when unavailable)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; either way it is a
        # usable high-water mark when /proc is missing.
        return int(usage.ru_maxrss) * 1024
    except (ImportError, ValueError):  # pragma: no cover - no resource module
        return 0


class MemorySampler:
    """Background RSS sampler; use as a context manager around a phase.

    Samples ``(t, rss_bytes)`` every ``interval`` seconds on a daemon
    thread.  On exit the peak and sample count are attached to the
    ambient trace span (when one is open) and remain readable from
    :attr:`samples` / :attr:`peak_bytes`.
    """

    def __init__(self, interval: float = 0.05):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.samples: List[tuple] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def peak_bytes(self) -> int:
        return max((rss for _, rss in self.samples), default=0)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.samples.append((time.perf_counter(), read_rss_bytes()))
            self._stop.wait(self.interval)

    def start(self) -> "MemorySampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self.samples.append((time.perf_counter(), read_rss_bytes()))
        self._thread = threading.Thread(
            target=self._run, name="repro-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.samples.append((time.perf_counter(), read_rss_bytes()))
        trace.set_attribute("rss_peak_bytes", self.peak_bytes)
        trace.set_attribute("rss_samples", len(self.samples))

    def __enter__(self) -> "MemorySampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@contextmanager
def profiled_span(
    name: str,
    profile: bool = False,
    sample_memory: bool = False,
    sample_interval: float = 0.05,
    top: int = 15,
    **attributes,
) -> Iterator[object]:
    """A trace span whose body optionally runs under ``cProfile``.

    With both flags off this is exactly :func:`repro.obs.trace.span` —
    the guaranteed-cheap disabled path.  With ``profile=True`` the top
    ``top`` functions by cumulative time land in the span's ``profile``
    attribute; with ``sample_memory=True`` a :class:`MemorySampler`
    runs for the duration of the span.
    """
    with trace.span(name, **attributes) as span:
        sampler = None
        profiler = None
        if sample_memory:
            sampler = MemorySampler(interval=sample_interval).start()
        if profile:
            profiler = cProfile.Profile()
            profiler.enable()
        try:
            yield span
        finally:
            if profiler is not None:
                profiler.disable()
                buffer = io.StringIO()
                stats = pstats.Stats(profiler, stream=buffer)
                stats.sort_stats("cumulative").print_stats(top)
                span.set_attribute("profile", buffer.getvalue())
            if sampler is not None:
                sampler.stop()
