"""Observability: structured tracing, metrics, exporters, profiling.

The measurement substrate under the join stack.  Four pieces:

* :mod:`repro.obs.trace` — nestable spans with monotonic timestamps,
  thread/process-safe collection, and cross-process stitching of worker
  spans onto the parent timeline.  Disabled by default (ambient
  :data:`~repro.obs.trace.NULL_TRACER`) with a near-zero-overhead
  disabled path.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges and
  histograms that ``JoinStats`` (including the resilience counters) and
  ``PageStore`` I/O feed through.
* :mod:`repro.obs.export` — JSONL trace files, Chrome ``trace_event``
  JSON (opens in ``about:tracing`` / Perfetto), and the CLI's
  human-readable phase-breakdown tree.
* :mod:`repro.obs.profile` — opt-in RSS sampling and per-phase
  ``cProfile`` wrappers that attach results to the trace.

Typical use::

    from repro.obs import Tracer, trace, format_tree, write_jsonl

    tracer = Tracer()
    with trace.activate(tracer):
        similarity_join(points, epsilon=0.1, parallel=True)
    spans = tracer.export()
    print(format_tree(spans))
    write_jsonl(spans, "join.trace.jsonl")
"""

from repro.obs import trace
from repro.obs.export import (
    format_tree,
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import MemorySampler, profiled_span, read_rss_bytes
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "trace",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "format_tree",
    "MemorySampler",
    "profiled_span",
    "read_rss_bytes",
]
