"""Named metrics: counters, gauges, and histograms behind one registry.

:class:`MetricsRegistry` is the single consistent sink the scattered
counters feed through: :class:`~repro.core.result.JoinStats` fields
(including the resilience counters) ingest generically via
:meth:`MetricsRegistry.ingest_stats`, and the simulated disk reports
physical I/O through an optional per-store registry
(``PageStore(metrics=...)``).  Instruments are created lazily on first
use and are thread-safe; :meth:`MetricsRegistry.as_dict` renders the
whole registry as plain JSON-ready data.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Any, Dict, List

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-set value (e.g. workers in use, a boolean flag as 0/1)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Distribution of observed values (all observations retained).

    Sized for the cardinalities this library produces — per-stripe task
    times, per-phase durations — not for unbounded production firehoses.
    """

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100]. NaN when empty."""
        with self._lock:
            values = sorted(self._values)
        if not values:
            return math.nan
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        return values[min(rank, len(values)) - 1]

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            values = list(self._values)
        summary: Dict[str, Any] = {"type": "histogram", "count": len(values)}
        if values:
            summary.update(
                total=sum(values),
                min=min(values),
                max=max(values),
                mean=sum(values) / len(values),
            )
        return summary


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per registry."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name)
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def as_dict(self) -> Dict[str, Any]:
        """Every instrument rendered as JSON-ready data, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.as_dict() for name, instrument in items}

    # ------------------------------------------------------------------
    def ingest_stats(self, stats, prefix: str = "join.") -> None:
        """Feed a dataclass of counters (e.g. ``JoinStats``) generically.

        Field mapping: ints increment counters, bools set 0/1 gauges,
        floats set gauges, numeric lists feed histograms, and non-empty
        strings set a ``<name>.<value>`` marker gauge to 1 (so e.g.
        ``kernel_backend="numba"`` surfaces as
        ``join.kernel_backend.numba``) — so new ``JoinStats`` fields
        flow through without touching this code.
        When the dataclass renders itself via ``as_dict`` (as
        ``JoinStats`` does, expanding per-stage cascade survivor counts
        into ``cascade_survivors_stage{N}`` keys), that expanded view is
        ingested instead of the raw fields.
        """
        as_dict = getattr(stats, "as_dict", None)
        if callable(as_dict):
            items = list(as_dict().items())
        else:
            items = [
                (field.name, getattr(stats, field.name))
                for field in dataclasses.fields(stats)
            ]
        for key, value in items:
            name = prefix + key
            if isinstance(value, bool):
                self.gauge(name).set(1.0 if value else 0.0)
            elif isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.gauge(name).set(value)
            elif isinstance(value, (list, tuple)):
                histogram = self.histogram(name)
                for item in value:
                    if isinstance(item, (int, float)):
                        histogram.observe(item)
            elif isinstance(value, str):
                if value:
                    self.gauge(f"{name}.{value}").set(1.0)
