"""Trace export sinks: JSONL, Chrome ``trace_event``, and a phase tree.

Three consumers of one span list (as produced by
:meth:`repro.obs.trace.Tracer.export`):

* :func:`write_jsonl` / :func:`load_jsonl` — one span dict per line; the
  durable artifact the benchmarks record and tests round-trip.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format; open the file in ``about:tracing`` or
  https://ui.perfetto.dev to see the join on a timeline, one track per
  (process, thread).
* :func:`format_tree` — the human-readable phase breakdown the CLI
  prints for ``--trace-summary``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "format_tree",
]

#: Keys every exported span dict must carry (schema checked by tests).
SPAN_SCHEMA_KEYS = (
    "name",
    "span_id",
    "parent_id",
    "start",
    "end",
    "duration",
    "pid",
    "tid",
    "attributes",
    "events",
)


def write_jsonl(spans: Iterable[Dict[str, Any]], path: str) -> int:
    """Write one span dict per line; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True, default=str))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace file back into span dicts."""
    spans = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def to_chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert span dicts to the Chrome ``trace_event`` format.

    Each span becomes one complete (``"ph": "X"``) event; span events
    become instant (``"ph": "i"``) events.  Timestamps are microseconds
    on the shared monotonic clock, so worker spans land at the right
    offsets on the parent timeline.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        start = span["start"]
        end = span["end"] if span["end"] is not None else start
        args = dict(span.get("attributes") or {})
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": start * 1e6,
                "dur": (end - start) * 1e6,
                "pid": span["pid"],
                "tid": span["tid"],
                "cat": "repro",
                "args": args,
            }
        )
        for event in span.get("events", ()):
            events.append(
                {
                    "name": event["name"],
                    "ph": "i",
                    "ts": event["time"] * 1e6,
                    "pid": span["pid"],
                    "tid": span["tid"],
                    "cat": "repro",
                    "s": "t",
                    "args": dict(event.get("attributes") or {}),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Dict[str, Any]], path: str) -> int:
    """Write the Chrome-format trace; returns the number of trace events."""
    trace = to_chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(trace, handle, default=str)
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# phase-breakdown tree
# ----------------------------------------------------------------------
def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


def _format_attributes(span: Dict[str, Any], keys: Optional[int] = 4) -> str:
    attributes = span.get("attributes") or {}
    shown = list(attributes.items())[:keys]
    if not shown:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in shown)
    return f"  [{inner}]"


def format_tree(spans: Sequence[Dict[str, Any]]) -> str:
    """Render spans as an indented tree with durations and attributes.

    Roots are spans whose parent is absent from the list (e.g. worker
    spans whose parent crashed before being recorded still show up,
    rather than disappearing).  Events are listed under their span with
    a ``*`` marker.
    """
    spans = sorted(spans, key=lambda s: s["start"])
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    lines: List[str] = []

    def emit(span: Dict[str, Any], prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        start = span["start"]
        end = span["end"] if span["end"] is not None else start
        label = (
            f"{prefix}{connector}{span['name']}  "
            f"{_format_duration(end - start)}{_format_attributes(span)}"
        )
        lines.append(label)
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        kids = children.get(span["span_id"], [])
        events = span.get("events", ())
        for event in events:
            marker = "│  " if kids else "   "
            attrs = ", ".join(
                f"{k}={v}" for k, v in (event.get("attributes") or {}).items()
            )
            suffix = f" ({attrs})" if attrs else ""
            lines.append(f"{child_prefix}{marker}* {event['name']}{suffix}")
        for position, child in enumerate(kids):
            emit(child, child_prefix, position == len(kids) - 1, is_root=False)

    for root in roots:
        emit(root, "", True, is_root=True)
    return "\n".join(lines)
