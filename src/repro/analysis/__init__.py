"""Selectivity analysis, cost models and result reporting."""

from repro.analysis.cost_model import (
    predict_brute_force_candidates,
    predict_brute_force_candidates_cross,
    predict_kdb_candidates,
    predict_kdb_candidates_cross,
    predict_sort_merge_candidates,
    predict_sort_merge_candidates_cross,
    split_depth,
)
from repro.analysis.report import Table, format_seconds, format_si
from repro.analysis.tuning import (
    LeafSizeProbe,
    probe_leaf_sizes,
    recommend_leaf_size,
)
from repro.analysis.stats import (
    ball_volume,
    epsilon_for_selectivity,
    estimate_selectivity,
    expected_pairs_uniform,
)

__all__ = [
    "ball_volume",
    "expected_pairs_uniform",
    "epsilon_for_selectivity",
    "estimate_selectivity",
    "predict_kdb_candidates",
    "predict_kdb_candidates_cross",
    "predict_sort_merge_candidates",
    "predict_sort_merge_candidates_cross",
    "predict_brute_force_candidates",
    "predict_brute_force_candidates_cross",
    "split_depth",
    "Table",
    "format_si",
    "format_seconds",
    "LeafSizeProbe",
    "probe_leaf_sizes",
    "recommend_leaf_size",
]
