"""Plain-text result tables.

The benchmark harness prints the same rows/series the paper's figures
plot; this module renders them as aligned fixed-width tables so the
bench output is directly readable and diffable.
"""

from __future__ import annotations

from typing import List, Sequence


def format_si(value: float) -> str:
    """Human-scale a count: 12_400_000 -> '12.4M'."""
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= threshold:
            return f"{value / threshold:.3g}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def format_seconds(seconds: float) -> str:
    """Render a duration with sensible units."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


class Table:
    """Fixed-width table accumulating rows, rendered with a title."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        lines = [self.title, ""]
        header = "  ".join(
            col.ljust(widths[k]) for k, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[k]) for k, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()
