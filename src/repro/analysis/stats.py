"""Join selectivity: analytic models and sampling estimators.

Used by the benchmark harness for two things the paper's evaluation also
needed: choosing per-dimension epsilon values that keep output size
comparable across a dimensionality sweep (E2), and sanity-checking that a
measured pair count is in the analytically expected range.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.core.config import validate_points
from repro.errors import InvalidParameterError
from repro.metrics import LINF, L1, L2, Metric, get_metric


def ball_volume(radius: float, dims: int, metric: Union[str, float, Metric] = "l2") -> float:
    """Volume of an L_p ball of ``radius`` in ``dims`` dimensions.

    Supports the three common metrics in closed form:

    * L2: ``pi^(d/2) / Gamma(d/2 + 1) * r^d``
    * L1 (cross-polytope): ``(2 r)^d / d!``
    * L-infinity (cube): ``(2 r)^d``
    """
    if radius < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    if dims < 1:
        raise InvalidParameterError(f"dims must be >= 1, got {dims}")
    metric = get_metric(metric)
    if metric is LINF:
        return (2.0 * radius) ** dims
    if metric is L1:
        return (2.0 * radius) ** dims / math.factorial(dims)
    if metric is L2:
        return (
            math.pi ** (dims / 2.0)
            / math.gamma(dims / 2.0 + 1.0)
            * radius**dims
        )
    raise InvalidParameterError(
        f"closed-form ball volume is available for l1/l2/linf, not {metric.name}"
    )


def expected_pairs_uniform(
    n: int, dims: int, eps: float, metric: Union[str, float, Metric] = "l2"
) -> float:
    """Expected self-join output size for uniform data in the unit cube.

    First-order model ignoring boundary effects: each of the
    ``n * (n - 1) / 2`` pairs qualifies with probability equal to the
    epsilon-ball volume.  Accurate for ``eps`` well below 1; an
    overestimate near the boundary-dominated regime.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    return n * (n - 1) / 2.0 * min(1.0, ball_volume(eps, dims, metric))


def epsilon_for_selectivity(
    target_fraction: float, dims: int, metric: Union[str, float, Metric] = "l2"
) -> float:
    """Epsilon whose ball volume equals ``target_fraction`` of the unit cube.

    The E2 dimensionality sweep uses this to hold expected output roughly
    constant while ``dims`` varies (otherwise the curse of dimensionality
    empties the output and every algorithm looks instant).
    """
    if not 0.0 < target_fraction <= 1.0:
        raise InvalidParameterError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    metric = get_metric(metric)
    unit = ball_volume(1.0, dims, metric)
    return (target_fraction / unit) ** (1.0 / dims)


def estimate_selectivity(
    points: np.ndarray,
    eps: float,
    metric: Union[str, float, Metric] = "l2",
    sample: int = 512,
    seed: Optional[int] = 0,
) -> float:
    """Monte-Carlo estimate of the self-join pair fraction.

    Samples ``sample`` anchor points and measures the fraction of all
    points within ``eps`` of each; the mean is an unbiased estimate of
    ``P(dist <= eps)`` over random pairs (up to the negligible
    self-match).  Cost is ``O(sample * n)``.
    """
    points = validate_points(points)
    metric = get_metric(metric)
    n = len(points)
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    anchors = rng.choice(n, size=min(sample, n), replace=False)
    total_matches = 0
    for anchor in anchors:
        diff = np.abs(points - points[anchor])
        within = metric.within_gap(diff, eps)
        total_matches += int(within.sum()) - 1  # drop the self match
    return total_matches / (len(anchors) * (n - 1))
