"""Analytic cost model of the epsilon-kdB self-join.

The paper's analysis predicts how many candidate pairs each algorithm
must fully check on uniform data.  The model here reproduces that
reasoning and is validated (within small constant factors) against the
measured ``distance_computations`` counters in the test suite.

For uniform data in the unit cube:

* the tree splits dimensions ``0..k-1`` where ``k`` is the smallest
  depth at which the expected cell population fits a leaf:
  ``n * eps^k <= leaf_size``;
* the traversal pairs points only when they fall in the same or
  adjacent cells of every split dimension — probability about
  ``3 * eps - 2 * eps**2 ~ 3 eps`` per dimension (exact for interior
  cells, boundary effects shrink it);
* inside leaf pairs, the sort-merge sweep admits a candidate only when
  the sort dimension differs by at most eps — probability about
  ``2 * eps - eps**2``.

So expected candidates ~ ``C(n,2) * prod(split filters) * band filter``.
The sort-merge model is the special case with one filter (two for the
2-level variant); brute force checks everything.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError


def _pair_count(n: int) -> float:
    return n * (n - 1) / 2.0


def _pair_count_cross(n_a: int, n_b: int) -> float:
    """Candidate universe of a two-set join: every (a, b) combination.

    The self-join's ``C(n, 2)`` halves the square because pairs are
    unordered within one set; across two sets nothing is symmetric, so
    the count is the full ``n_a * n_b`` rectangle.
    """
    return float(n_a) * float(n_b)


def _validate_cross(n_a: int, n_b: int, eps: float) -> None:
    if n_a < 1 or n_b < 1 or eps <= 0:
        raise InvalidParameterError(
            f"need n_a >= 1, n_b >= 1, eps > 0; got {n_a}, {n_b}, {eps}"
        )


def _adjacent_cell_probability(eps: float) -> float:
    """P(|x - y| <= cell-adjacency) for uniform x, y when cells have
    width eps: both in the same or adjacent cells of ~1/eps cells."""
    cells = max(1.0, math.floor(1.0 / eps))
    # same cell: 1/cells; each adjacent cell: 1/cells (two sides).
    return min(1.0, 3.0 / cells)


def _band_probability(eps: float) -> float:
    """P(|x - y| <= eps) for uniform x, y in [0, 1]."""
    return min(1.0, 2.0 * eps - eps * eps)


def split_depth(n: int, eps: float, leaf_size: int, dims: int) -> int:
    """Expected number of dimensions the tree splits on uniform data.

    Depth ``k`` leaves about ``n * eps^k`` points per leaf region; the
    build stops splitting once that fits ``leaf_size`` (or dimensions
    run out, or cells stop subdividing because eps >= 1).
    """
    if n <= 0 or leaf_size < 1 or dims < 1:
        raise InvalidParameterError(
            f"need n > 0, leaf_size >= 1, dims >= 1; got {n}, {leaf_size}, {dims}"
        )
    if eps >= 1.0:
        return 0
    depth = 0
    expected = float(n)
    while expected > leaf_size and depth < dims:
        expected *= eps
        depth += 1
    return depth


def predict_kdb_candidates(
    n: int, dims: int, eps: float, leaf_size: int = 128
) -> float:
    """Expected distance computations of the eps-kdB self-join (uniform)."""
    k = split_depth(n, eps, leaf_size, dims)
    probability = _adjacent_cell_probability(eps) ** k
    if k < dims:
        probability *= _band_probability(eps)
    return _pair_count(n) * probability


def predict_kdb_candidates_cross(
    n_a: int, n_b: int, dims: int, eps: float, leaf_size: int = 128
) -> float:
    """Expected distance computations of the two-set eps-kdB join.

    The two-set driver builds one tree over the union of both sets (the
    grid is fit over ``R ∪ S``), so the split depth is governed by the
    combined population; the per-dimension filters apply identically,
    only the candidate universe changes from ``C(n, 2)`` to
    ``n_a * n_b``.
    """
    _validate_cross(n_a, n_b, eps)
    total = n_a + n_b
    k = split_depth(total, eps, leaf_size, dims)
    probability = _adjacent_cell_probability(eps) ** k
    if k < dims:
        probability *= _band_probability(eps)
    return _pair_count_cross(n_a, n_b) * probability


def predict_sort_merge_candidates(
    n: int, eps: float, two_level: bool = True
) -> float:
    """Expected distance computations of the sort-merge join (uniform)."""
    probability = _band_probability(eps)
    if two_level:
        probability *= _band_probability(eps)
    return _pair_count(n) * probability


def predict_sort_merge_candidates_cross(
    n_a: int, n_b: int, eps: float, two_level: bool = True
) -> float:
    """Expected distance computations of the two-set sort-merge join."""
    _validate_cross(n_a, n_b, eps)
    probability = _band_probability(eps)
    if two_level:
        probability *= _band_probability(eps)
    return _pair_count_cross(n_a, n_b) * probability


def predict_brute_force_candidates(n: int) -> float:
    """The nested loop checks every pair."""
    return _pair_count(n)


def predict_brute_force_candidates_cross(n_a: int, n_b: int) -> float:
    """The two-set nested loop checks the full rectangle."""
    return _pair_count_cross(n_a, n_b)


def predict_expected_output(n: int, dims: int, eps: float, metric="l2") -> float:
    """Expected output pairs; re-exported convenience over the stats model."""
    from repro.analysis.stats import expected_pairs_uniform

    return expected_pairs_uniform(n, dims, eps, metric)
