"""Leaf-threshold auto-tuning.

Experiment E4 shows the ε-kdB leaf threshold has a broad flat optimum,
but the ends of the range are genuinely bad (tiny leaves pay traversal
overhead, huge leaves pay near-quadratic sweeps).  This module picks a
good threshold for a concrete workload by *probing*: it joins a sample
of the data at each candidate threshold and scores the runs with a
deterministic work model instead of wall-clock, so the recommendation is
reproducible.

The score charges one unit per full distance computation and
``NODE_OVERHEAD`` units per visited node pair — the latter approximates
the fixed per-node cost of the traversal (Python dispatch plus small
NumPy calls) relative to one vectorized candidate check.  The constant
was calibrated once against the measured E4 curve and is deliberately
coarse; anywhere in the flat region is a fine answer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.join import epsilon_kdb_self_join
from repro.core.result import PairCounter
from repro.errors import InvalidParameterError

#: Work units one visited node pair costs relative to one candidate check.
NODE_OVERHEAD = 400

DEFAULT_CANDIDATES = (16, 64, 256, 1024, 4096)


@dataclass(frozen=True)
class LeafSizeProbe:
    """One probed candidate and its deterministic score."""

    leaf_size: int
    distance_computations: int
    node_pairs_visited: int

    @property
    def score(self) -> int:
        return self.distance_computations + NODE_OVERHEAD * self.node_pairs_visited


def probe_leaf_sizes(
    points: np.ndarray,
    spec: JoinSpec,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    sample: int = 4000,
    seed: Optional[int] = 0,
) -> List[LeafSizeProbe]:
    """Join a sample of ``points`` at each candidate leaf threshold.

    Returns one :class:`LeafSizeProbe` per candidate, in input order.
    """
    points = validate_points(points)
    if not candidates:
        raise InvalidParameterError("candidates must be non-empty")
    if any(int(c) < 1 for c in candidates):
        raise InvalidParameterError("leaf-size candidates must be >= 1")
    if len(points) > sample:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(points), size=sample, replace=False)
        points = points[chosen]
    probes = []
    for leaf_size in candidates:
        sink = PairCounter()
        result = epsilon_kdb_self_join(
            points, replace(spec, leaf_size=int(leaf_size)), sink=sink
        )
        probes.append(
            LeafSizeProbe(
                leaf_size=int(leaf_size),
                distance_computations=result.stats.distance_computations,
                node_pairs_visited=result.stats.node_pairs_visited,
            )
        )
    return probes


def recommend_leaf_size(
    points: np.ndarray,
    spec: JoinSpec,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    sample: int = 4000,
    seed: Optional[int] = 0,
) -> Tuple[int, List[LeafSizeProbe]]:
    """Pick the candidate threshold with the lowest probed work score.

    Returns ``(best_leaf_size, probes)`` so callers can inspect the whole
    curve.  Note the probe joins a *sample*; optima shift slightly with
    scale (larger relations favour somewhat smaller leaves), but E4's
    flat optimum makes the choice forgiving.
    """
    probes = probe_leaf_sizes(points, spec, candidates, sample, seed)
    best = min(probes, key=lambda probe: probe.score)
    return best.leaf_size, probes
