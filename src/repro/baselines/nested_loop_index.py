"""Index-nested-loop similarity join.

The third classical join strategy besides synchronized tree traversal
and sort-merge: build an index over one relation (S) and issue one range
query per point of the other (R).  Costs roughly
``build(S) + |R| * query(S)``, so it wins when R is much smaller than S
and loses to the synchronized traversals as the sides even out — the
crossover experiment E13 measures exactly that.

Either index family can drive it: the epsilon-kdB tree (default; its
queries are valid for any radius up to the build epsilon) or the
R+-tree.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import EpsilonKdbTree
from repro.core.result import JoinResult, JoinStats, PairCollector, PairSink
from repro.errors import InvalidParameterError

INDEX_CHOICES = ("epsilon-kdb", "rplus")


def index_nested_loop_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    index: str = "epsilon-kdb",
) -> JoinResult:
    """Two-set join by probing an index over S once per point of R.

    Emits ``(r_index, s_index)`` pairs, like every other two-set join.
    ``index`` selects the probed structure: ``"epsilon-kdb"`` or
    ``"rplus"``.
    """
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality"
        )
    if index not in INDEX_CHOICES:
        raise InvalidParameterError(
            f"index must be one of {INDEX_CHOICES}, got {index!r}"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    if len(points_r) == 0 or len(points_s) == 0:
        return result

    started = time.perf_counter()
    if index == "epsilon-kdb":
        # The probe points may lie outside S's bounding box; tree range
        # queries handle that (clamped cells stay exact).
        tree = EpsilonKdbTree.build(points_s, spec)

        def query(point):
            return tree.range_query(point)

    else:
        from repro.baselines.rplus_tree import RPlusTree

        rplus = RPlusTree.bulk_load(points_s)

        def query(point):
            return rplus.range_query(point, spec.epsilon, spec.metric)

    built = time.perf_counter()
    # Note: the probed index does its candidate filtering internally and
    # does not surface a candidate count, so ``distance_computations``
    # stays zero for this algorithm; ``node_pairs_visited`` counts probes.
    for r_index, point in enumerate(points_r):
        stats.node_pairs_visited += 1
        hits = query(point)
        if len(hits):
            sink.emit(np.full(len(hits), r_index, dtype=np.int64), hits)
            stats.pairs_emitted += int(len(hits))
    finished = time.perf_counter()
    result.build_seconds = built - started
    result.join_seconds = finished - built
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
