"""Epsilon-grid hash join.

Buckets points into axis-aligned cells of width ``epsilon`` over the
first ``grid_dims`` dimensions, then compares each cell only against
itself and its neighbor cells.  A common comparator for similarity joins
and, because its pruning logic (|cell difference| <= 1 per dimension) is
independent of the epsilon-kdB traversal, a useful second oracle in the
test suite.

The number of neighbor probes grows as ``3 ** grid_dims``, so only a few
leading dimensions are gridded; the remaining dimensions are handled by
the full distance check.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines._common import emit_block_pairs
from repro.core.config import JoinSpec, validate_points
from repro.core.result import JoinResult, JoinStats, PairCollector, PairSink
from repro.errors import InvalidParameterError

#: Default number of leading dimensions used for bucketing.
DEFAULT_GRID_DIMS = 3

_CellMap = Dict[Tuple[int, ...], np.ndarray]


def _bucket(points: np.ndarray, eps: float, grid_dims: int) -> _CellMap:
    """Group point indices by their cell tuple over the leading dims."""
    cells = np.floor(points[:, :grid_dims] / eps).astype(np.int64)
    _, inverse, counts = np.unique(
        cells, axis=0, return_inverse=True, return_counts=True
    )
    order = np.argsort(inverse, kind="stable")
    boundaries = np.concatenate([[0], np.cumsum(counts)])
    groups: _CellMap = {}
    for group_id in range(len(counts)):
        members = order[boundaries[group_id] : boundaries[group_id + 1]]
        key = tuple(cells[members[0]].tolist())
        groups[key] = members.astype(np.int64)
    return groups


def _resolve_grid_dims(dims: int, grid_dims: Optional[int]) -> int:
    if grid_dims is None:
        return min(dims, DEFAULT_GRID_DIMS)
    if not 1 <= grid_dims <= dims:
        raise InvalidParameterError(
            f"grid_dims must be in [1, {dims}], got {grid_dims}"
        )
    return grid_dims


def grid_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    grid_dims: Optional[int] = None,
) -> JoinResult:
    """Self-join via epsilon-cell bucketing.

    Each unordered cell pair is visited once: a cell joins itself and
    every neighbor whose offset is lexicographically positive.
    """
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    if len(points) < 2:
        return result
    k = _resolve_grid_dims(points.shape[1], grid_dims)
    started = time.perf_counter()
    groups = _bucket(points, spec.band_width, k)
    built = time.perf_counter()
    positive_offsets = [
        off
        for off in itertools.product((-1, 0, 1), repeat=k)
        if off > (0,) * k
    ]
    for key, members in groups.items():
        stats.node_pairs_visited += 1
        emit_block_pairs(
            points, points, members, members, spec.metric, spec.epsilon,
            sink, stats, self_mode=True, same_group=True,
        )
        for off in positive_offsets:
            neighbor = tuple(c + o for c, o in zip(key, off))
            other = groups.get(neighbor)
            if other is None:
                continue
            stats.node_pairs_visited += 1
            emit_block_pairs(
                points, points, members, other, spec.metric, spec.epsilon,
                sink, stats, self_mode=True,
            )
    finished = time.perf_counter()
    result.build_seconds = built - started
    result.join_seconds = finished - built
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def grid_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    grid_dims: Optional[int] = None,
) -> JoinResult:
    """Two-set join via epsilon-cell bucketing of both sides."""
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    k = _resolve_grid_dims(points_r.shape[1], grid_dims)
    started = time.perf_counter()
    groups_r = _bucket(points_r, spec.band_width, k)
    groups_s = _bucket(points_s, spec.band_width, k)
    built = time.perf_counter()
    all_offsets = list(itertools.product((-1, 0, 1), repeat=k))
    for key, members in groups_r.items():
        for off in all_offsets:
            neighbor = tuple(c + o for c, o in zip(key, off))
            other = groups_s.get(neighbor)
            if other is None:
                continue
            stats.node_pairs_visited += 1
            emit_block_pairs(
                points_r, points_s, members, other, spec.metric, spec.epsilon,
                sink, stats, self_mode=False,
            )
    finished = time.perf_counter()
    result.build_seconds = built - started
    result.join_seconds = finished - built
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
