"""Shared helpers for the baseline join algorithms."""

from __future__ import annotations

import numpy as np

from repro.core.result import JoinStats, PairSink
from repro.metrics import Metric

#: Tile side for dense block comparisons between index groups.
_TILE = 1024


def emit_block_pairs(
    points_a: np.ndarray,
    points_b: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    metric: Metric,
    eps: float,
    sink: PairSink,
    stats: JoinStats,
    self_mode: bool,
    same_group: bool = False,
) -> None:
    """Check every pair between two index groups and emit the matches.

    ``same_group`` means ``idx_a is idx_b`` over the same point set, in
    which case only the strict upper triangle is checked so each
    unordered pair is emitted once.  With ``self_mode`` (both sides index
    the same array) emitted pairs are oriented ``left < right``.
    """
    for a_start in range(0, len(idx_a), _TILE):
        a_stop = min(a_start + _TILE, len(idx_a))
        rows = points_a[idx_a[a_start:a_stop]]
        b_begin = a_start if same_group else 0
        for b_start in range(b_begin, len(idx_b), _TILE):
            b_stop = min(b_start + _TILE, len(idx_b))
            cols = points_b[idx_b[b_start:b_stop]]
            mask = metric.within_block(rows, cols, eps)
            stats.distance_computations += mask.size
            if same_group and b_start == a_start:
                mask = np.triu(mask, k=1)
            left_pos, right_pos = np.nonzero(mask)
            if not len(left_pos):
                continue
            left = idx_a[left_pos + a_start]
            right = idx_b[right_pos + b_start]
            if self_mode:
                lo = np.minimum(left, right)
                hi = np.maximum(left, right)
                sink.emit(lo, hi)
            else:
                sink.emit(left, right)
            stats.pairs_emitted += int(len(left))
