"""Blocked nested-loop similarity join.

The exact, assumption-free reference algorithm: every pair is checked.
Work is tiled into fixed-size coordinate blocks so memory stays bounded
and the inner comparison runs as one dense NumPy broadcast per tile.
Quadratic in the input size, so the benchmarks use it only at small N —
exactly the regime where the paper's evaluation includes it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.result import JoinResult, JoinStats, PairCollector, PairSink

#: Points per tile side; a tile evaluates at most BLOCK * BLOCK pairs.
BLOCK = 1024


def brute_force_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
) -> JoinResult:
    """All pairs ``i < j`` with ``dist(points[i], points[j]) <= eps``."""
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    n = len(points)
    metric = spec.metric
    for row_start in range(0, n, BLOCK):
        row_stop = min(row_start + BLOCK, n)
        rows = points[row_start:row_stop]
        for col_start in range(row_start, n, BLOCK):
            col_stop = min(col_start + BLOCK, n)
            cols = points[col_start:col_stop]
            stats.node_pairs_visited += 1
            mask = metric.within_block(rows, cols, spec.epsilon)
            stats.distance_computations += mask.size
            if col_start == row_start:
                # keep only the strict upper triangle of the diagonal tile
                mask = np.triu(mask, k=1)
            left, right = np.nonzero(mask)
            if len(left):
                sink.emit(left + row_start, right + col_start)
                stats.pairs_emitted += int(len(left))
    result = JoinResult(stats=stats)
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def brute_force_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
) -> JoinResult:
    """All ``(i, j)`` with ``dist(points_r[i], points_s[j]) <= eps``."""
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    metric = spec.metric
    for row_start in range(0, len(points_r), BLOCK):
        row_stop = min(row_start + BLOCK, len(points_r))
        rows = points_r[row_start:row_stop]
        for col_start in range(0, len(points_s), BLOCK):
            col_stop = min(col_start + BLOCK, len(points_s))
            cols = points_s[col_start:col_stop]
            stats.node_pairs_visited += 1
            mask = metric.within_block(rows, cols, spec.epsilon)
            stats.distance_computations += mask.size
            left, right = np.nonzero(mask)
            if len(left):
                sink.emit(left + row_start, right + col_start)
                stats.pairs_emitted += int(len(left))
    result = JoinResult(stats=stats)
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
