"""Baseline similarity-join algorithms the paper evaluates against.

* :mod:`repro.baselines.brute_force` — blocked nested loop, the exact
  reference every other algorithm is tested against.
* :mod:`repro.baselines.sort_merge` — multidimensional sort-merge band
  join (1-level and 2-level variants).
* :mod:`repro.baselines.grid` — epsilon-grid hash join.
* :mod:`repro.baselines.zorder` — Z-order (Morton-code) sort-based join,
  the space-filling-curve school of the era's related work.
* :mod:`repro.baselines.rplus_tree` — the paper's R+-tree baseline
  (overlap-free regions; on point data the duplication machinery never
  triggers).
* :mod:`repro.baselines.rtree` / :mod:`repro.baselines.rtree_join` — an
  R-tree (insert and STR bulk load) and the synchronized-traversal
  spatial join shared by both R-variants.
"""

from repro.baselines.brute_force import brute_force_join, brute_force_self_join
from repro.baselines.grid import grid_join, grid_self_join
from repro.baselines.nested_loop_index import index_nested_loop_join
from repro.baselines.rplus_tree import RPlusTree
from repro.baselines.rtree import RTree
from repro.baselines.rtree_join import (
    rplus_join,
    rplus_self_join,
    rtree_join,
    rtree_self_join,
)
from repro.baselines.sort_merge import sort_merge_join, sort_merge_self_join
from repro.baselines.zorder import zorder_join, zorder_self_join

__all__ = [
    "brute_force_self_join",
    "brute_force_join",
    "sort_merge_self_join",
    "sort_merge_join",
    "grid_self_join",
    "grid_join",
    "RTree",
    "rtree_self_join",
    "rtree_join",
    "RPlusTree",
    "rplus_self_join",
    "rplus_join",
    "zorder_self_join",
    "zorder_join",
    "index_nested_loop_join",
]
