"""Z-order (space-filling curve) similarity join.

The sort-based alternative to hierarchical indexes that the era's
literature proposed (Orenstein's Z-ordering, later the UB-tree): map
each point's ε-cell to a **Morton code** by interleaving the bits of its
cell coordinates, sort the relation once by code, and answer all cell
lookups with binary search in the sorted code array — the sorted array
*is* the index.

The join then mirrors the ε-grid logic: a cell joins itself and its
3^k − 1 neighbors (per-coordinate cell difference ≤ 1 is necessary for
any L_p match), but neighbor groups are located by ``searchsorted`` on
Morton codes instead of a hash directory.  Compared to the hash grid
this trades O(1) probes for O(log n) probes in exchange for a fully
sort-based, directory-free layout — the property that made Z-ordering
attractive for disk-resident data.

Only the first ``zorder_dims`` dimensions are encoded (neighbor
enumeration is 3^k); remaining dimensions are handled by the full
distance check, exactly like the grid baseline.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Tuple

import numpy as np

from repro.baselines._common import emit_block_pairs
from repro.core.config import JoinSpec, validate_points
from repro.core.result import JoinResult, JoinStats, PairCollector, PairSink
from repro.errors import InvalidParameterError

#: Default number of leading dimensions interleaved into the code.
DEFAULT_ZORDER_DIMS = 3

#: Total bit budget for a code (fits comfortably in int64).
_CODE_BITS = 60


def morton_encode(cells: np.ndarray, bits: int) -> np.ndarray:
    """Interleave the bits of per-dimension cell coordinates.

    ``cells`` is an ``(n, k)`` non-negative int array with every value
    below ``2**bits``.  Returns ``(n,)`` int64 Morton codes where bit
    ``b`` of dimension ``d`` lands at position ``b * k + d`` — the
    standard bit-interleaving that makes lexicographic code order follow
    the Z-curve.
    """
    cells = np.asarray(cells, dtype=np.int64)
    if cells.ndim != 2:
        raise InvalidParameterError(
            f"cells must be 2-D (n, k), got shape {cells.shape}"
        )
    n, dims = cells.shape
    if bits < 1 or bits * dims > _CODE_BITS:
        raise InvalidParameterError(
            f"bits * dims must be in [1, {_CODE_BITS}], got {bits} * {dims}"
        )
    if n and (cells.min() < 0 or cells.max() >= (1 << bits)):
        raise InvalidParameterError(
            f"cell coordinates must lie in [0, 2**{bits})"
        )
    codes = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        for dim in range(dims):
            codes |= ((cells[:, dim] >> bit) & 1) << (bit * dims + dim)
    return codes


def morton_decode(codes: np.ndarray, dims: int, bits: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`; returns ``(n, dims)`` cells."""
    codes = np.asarray(codes, dtype=np.int64)
    cells = np.zeros((len(codes), dims), dtype=np.int64)
    for bit in range(bits):
        for dim in range(dims):
            cells[:, dim] |= ((codes >> (bit * dims + dim)) & 1) << bit
    return cells


class _ZIndex:
    """A relation sorted by Morton code, with binary-search cell lookup."""

    def __init__(self, points: np.ndarray, eps: float, zdims: int,
                 lo: np.ndarray, bits: int):
        self.points = points
        self.zdims = zdims
        self.bits = bits
        cells = np.floor((points[:, :zdims] - lo) / eps).astype(np.int64)
        np.clip(cells, 0, (1 << bits) - 1, out=cells)
        codes = morton_encode(cells, bits)
        self.order = np.argsort(codes, kind="stable")
        self.codes = codes[self.order]
        self.cells = cells[self.order]
        # Group boundaries: one run per distinct occupied cell.
        if len(self.codes):
            change = np.flatnonzero(np.diff(self.codes)) + 1
            self.starts = np.concatenate([[0], change])
            self.stops = np.concatenate([change, [len(self.codes)]])
        else:
            self.starts = np.empty(0, dtype=np.int64)
            self.stops = np.empty(0, dtype=np.int64)

    def group_count(self) -> int:
        return len(self.starts)

    def group(self, position: int) -> np.ndarray:
        """Original point indices of the ``position``-th occupied cell."""
        return self.order[self.starts[position] : self.stops[position]]

    def group_cell(self, position: int) -> np.ndarray:
        return self.cells[self.starts[position]]

    def lookup(self, cell: np.ndarray) -> Optional[np.ndarray]:
        """Binary-search the sorted codes for one cell's point group."""
        if np.any(cell < 0) or np.any(cell >= (1 << self.bits)):
            return None
        code = int(morton_encode(cell.reshape(1, -1), self.bits)[0])
        left = int(np.searchsorted(self.codes, code, side="left"))
        right = int(np.searchsorted(self.codes, code, side="right"))
        if left == right:
            return None
        return self.order[left:right]

    def lookup_batch(self, cells: np.ndarray):
        """Vectorized lookup of many cells at once.

        Returns aligned ``(lefts, rights)`` position ranges into the
        sorted order (``lefts[i] == rights[i]`` means cell ``i`` is
        empty or out of range).  One encode and two searchsorted calls
        replace a Python-level probe per cell.
        """
        cells = np.asarray(cells, dtype=np.int64)
        in_range = np.all((cells >= 0) & (cells < (1 << self.bits)), axis=1)
        codes = np.zeros(len(cells), dtype=np.int64)
        if in_range.any():
            codes[in_range] = morton_encode(cells[in_range], self.bits)
        lefts = np.searchsorted(self.codes, codes, side="left")
        rights = np.searchsorted(self.codes, codes, side="right")
        lefts = np.where(in_range, lefts, 0)
        rights = np.where(in_range, rights, 0)
        return lefts.astype(np.int64), rights.astype(np.int64)


def _resolve(points: np.ndarray, eps: float, zorder_dims: Optional[int],
             lo: np.ndarray, hi: np.ndarray) -> Tuple[int, int]:
    dims = points.shape[1]
    if zorder_dims is None:
        zdims = min(dims, DEFAULT_ZORDER_DIMS)
    else:
        if not 1 <= zorder_dims <= dims:
            raise InvalidParameterError(
                f"zorder_dims must be in [1, {dims}], got {zorder_dims}"
            )
        zdims = zorder_dims
    span = float(np.max(hi[:zdims] - lo[:zdims]))
    cells_needed = max(2, int(span / eps) + 2)
    bits = max(1, int(np.ceil(np.log2(cells_needed))))
    bits = min(bits, _CODE_BITS // zdims)
    return zdims, bits


def zorder_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    zorder_dims: Optional[int] = None,
) -> JoinResult:
    """Self-join via a Morton-code-sorted relation.

    Note: when ``2**bits`` cells cannot cover the domain (huge spans at
    tiny ε within the 60-bit code budget), coordinates clip into the
    last cell; clipping only ever *adds* candidates, so results stay
    exact.
    """
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    if len(points) < 2:
        return result
    started = time.perf_counter()
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    zdims, bits = _resolve(points, spec.band_width, zorder_dims, lo, hi)
    index = _ZIndex(points, spec.band_width, zdims, lo[:zdims], bits)
    built = time.perf_counter()
    positive_offsets = [
        np.array(offset)
        for offset in itertools.product((-1, 0, 1), repeat=zdims)
        if offset > (0,) * zdims
    ]
    group_cells = index.cells[index.starts] if index.group_count() else None
    for position in range(index.group_count()):
        members = index.group(position)
        stats.node_pairs_visited += 1
        emit_block_pairs(
            points, points, members, members, spec.metric, spec.epsilon,
            sink, stats, self_mode=True, same_group=True,
        )
    for offset in positive_offsets:
        if group_cells is None:
            break
        lefts, rights = index.lookup_batch(group_cells + offset)
        for position in np.flatnonzero(rights > lefts):
            members = index.group(position)
            neighbors = index.order[lefts[position] : rights[position]]
            stats.node_pairs_visited += 1
            emit_block_pairs(
                points, points, members, neighbors, spec.metric,
                spec.epsilon, sink, stats, self_mode=True,
            )
    finished = time.perf_counter()
    result.build_seconds = built - started
    result.join_seconds = finished - built
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def zorder_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    zorder_dims: Optional[int] = None,
) -> JoinResult:
    """Two-set join: sort S by Morton code, probe with R's cells."""
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    started = time.perf_counter()
    lo = np.minimum(points_r.min(axis=0), points_s.min(axis=0))
    hi = np.maximum(points_r.max(axis=0), points_s.max(axis=0))
    both = np.vstack([lo, hi])
    zdims, bits = _resolve(
        np.empty((0, points_r.shape[1])), spec.band_width, zorder_dims,
        both[0], both[1],
    )
    index_r = _ZIndex(points_r, spec.band_width, zdims, lo[:zdims], bits)
    index_s = _ZIndex(points_s, spec.band_width, zdims, lo[:zdims], bits)
    built = time.perf_counter()
    offsets = [
        np.array(offset)
        for offset in itertools.product((-1, 0, 1), repeat=zdims)
    ]
    group_cells = (
        index_r.cells[index_r.starts] if index_r.group_count() else None
    )
    for offset in offsets:
        if group_cells is None:
            break
        lefts, rights = index_s.lookup_batch(group_cells + offset)
        for position in np.flatnonzero(rights > lefts):
            members = index_r.group(position)
            neighbors = index_s.order[lefts[position] : rights[position]]
            stats.node_pairs_visited += 1
            emit_block_pairs(
                points_r, points_s, members, neighbors, spec.metric,
                spec.epsilon, sink, stats, self_mode=False,
            )
    finished = time.perf_counter()
    result.build_seconds = built - started
    result.join_seconds = finished - built
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
