"""An R+-tree over points — the paper's actual index baseline.

The R+-tree (Sellis, Roussopoulos & Faloutsos) is the overlap-free
R-tree variant: sibling regions never overlap, at the price of
duplicating objects that straddle region boundaries.  For *point* data —
all this paper joins — no object ever straddles a boundary, so the
duplication machinery never triggers and the structure reduces to a
disjoint multiway space partition with MBR-tightened nodes.

This implementation bulk-builds that partition directly: each node sorts
its points along the locally widest dimension and cuts them into
``max_entries`` contiguous slabs, recursing until a slab fits in a leaf.
Sibling MBRs therefore have disjoint interiors (they can share a
boundary hyperplane when points tie on the split coordinate), the
property the test suite asserts.

Nodes reuse :class:`repro.baselines.rtree.RNode`, so the synchronized
spatial join in :mod:`repro.baselines.rtree_join` works on both trees
unchanged.
"""

from __future__ import annotations

import math
from typing import Iterator, List

import numpy as np

from repro.baselines.rtree import RNode
from repro.core.config import validate_points
from repro.errors import InvalidParameterError

DEFAULT_MAX_ENTRIES = 32


class RPlusTree:
    """Overlap-free R+-tree over an ``(n, d)`` point array."""

    def __init__(self, points: np.ndarray, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.points = validate_points(points)
        if max_entries < 2:
            raise InvalidParameterError(
                f"max_entries must be >= 2, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.dims = self.points.shape[1]
        self.root = RNode(is_leaf=True, dims=self.dims)
        self.size = 0

    @classmethod
    def bulk_load(
        cls, points: np.ndarray, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> "RPlusTree":
        """Build the disjoint partition bottom-up from all points."""
        tree = cls(points, max_entries=max_entries)
        n = len(tree.points)
        if n == 0:
            return tree
        indices = np.arange(n, dtype=np.int64)
        tree.root = tree._partition(indices)
        tree.size = n
        return tree

    def _widest_dim(self, indices: np.ndarray) -> int:
        block = self.points[indices]
        spreads = block.max(axis=0) - block.min(axis=0)
        return int(np.argmax(spreads))

    def _partition(self, indices: np.ndarray) -> RNode:
        if len(indices) <= self.max_entries:
            leaf = RNode(is_leaf=True, dims=self.dims)
            leaf.entries = indices.tolist()
            block = self.points[indices]
            leaf.lo = block.min(axis=0)
            leaf.hi = block.max(axis=0)
            return leaf
        dim = self._widest_dim(indices)
        order = np.argsort(self.points[indices, dim], kind="stable")
        ordered = indices[order]
        # Cut into at most max_entries slabs, each big enough that the
        # recursion terminates (ceil division keeps slabs non-empty).
        slabs = min(self.max_entries, math.ceil(len(ordered) / self.max_entries))
        slabs = max(2, slabs)
        slab_size = math.ceil(len(ordered) / slabs)
        node = RNode(is_leaf=False, dims=self.dims)
        for start in range(0, len(ordered), slab_size):
            child = self._partition(ordered[start : start + slab_size])
            node.entries.append(child)
        node.lo = np.min([child.lo for child in node.entries], axis=0)
        node.hi = np.max([child.hi for child in node.entries], axis=0)
        return node

    # ------------------------------------------------------------------
    # queries and inspection (same surface as RTree)
    # ------------------------------------------------------------------
    def range_query(self, point: np.ndarray, eps: float, metric) -> np.ndarray:
        """Indices of points within ``eps`` of ``point`` under ``metric``."""
        point = np.asarray(point, dtype=np.float64)
        hits: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            gaps = np.maximum(0.0, np.maximum(node.lo - point, point - node.hi))
            if not metric.within_gap(gaps, eps):
                continue
            if node.is_leaf:
                if node.entries:
                    members = np.asarray(node.entries, dtype=np.int64)
                    diffs = np.abs(self.points[members] - point)
                    keep = metric.within_gap(diffs, eps)
                    hits.extend(members[keep].tolist())
            else:
                stack.extend(node.entries)
        return np.array(sorted(hits), dtype=np.int64)

    def iter_leaves(self) -> Iterator[RNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.entries)

    def height(self) -> int:
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0]
            height += 1
        return height

    def __len__(self) -> int:
        return self.size
