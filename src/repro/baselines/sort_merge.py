"""Multidimensional sort-merge band join.

The classic non-index baseline: sort all points along one dimension, then
sweep a band of width ``epsilon`` and fully check every pair inside it.
The 2-level variant adds a cheap second-dimension filter before the full
distance computation, which is the refinement the paper's sort-merge
comparison point uses.

Effective when ``epsilon`` is tiny (bands are empty) and in low
dimensions; degrades toward quadratic as ``epsilon`` grows because one
sort dimension prunes less and less of a high-dimensional space — the
behaviour experiments E1–E3 demonstrate.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.kernels import KernelContext, build_kernel_context
from repro.core.result import JoinResult, JoinStats, PairCollector, PairSink
from repro.core.sweep import iter_band_pairs_cross, iter_band_pairs_self


def sort_merge_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    sweep_dim: int = 0,
    two_level: bool = True,
    filter_dim: Optional[int] = None,
) -> JoinResult:
    """Self-join via a sorted band sweep along ``sweep_dim``.

    With ``two_level`` a per-coordinate filter on ``filter_dim`` (default:
    the dimension after ``sweep_dim``) runs before the full distance
    check; it never changes the result, only the work.
    """
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    n, dims = points.shape
    if n < 2:
        return result
    started = time.perf_counter()
    order = np.argsort(points[:, sweep_dim], kind="stable")
    values = points[order, sweep_dim]
    second = _second_dim(sweep_dim, filter_dim, dims) if two_level else None
    second_values = points[order, second] if second is not None else None
    kernel = build_kernel_context(spec, points, sort_dim=sweep_dim)
    sorted_done = time.perf_counter()
    for pos_a, pos_b in iter_band_pairs_self(values, spec.band_width):
        _check_and_emit(
            points,
            order,
            pos_a,
            pos_b,
            second_values,
            spec,
            sink,
            stats,
            kernel,
        )
    finished = time.perf_counter()
    result.build_seconds = sorted_done - started
    result.join_seconds = finished - sorted_done
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def sort_merge_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    sweep_dim: int = 0,
    two_level: bool = True,
    filter_dim: Optional[int] = None,
) -> JoinResult:
    """Two-set join via a sorted band sweep along ``sweep_dim``."""
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    collect = sink is None
    if collect:
        sink = PairCollector()
    stats = JoinStats()
    result = JoinResult(stats=stats)
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    dims = points_r.shape[1]
    started = time.perf_counter()
    order_r = np.argsort(points_r[:, sweep_dim], kind="stable")
    order_s = np.argsort(points_s[:, sweep_dim], kind="stable")
    values_r = points_r[order_r, sweep_dim]
    values_s = points_s[order_s, sweep_dim]
    second = _second_dim(sweep_dim, filter_dim, dims) if two_level else None
    kernel = build_kernel_context(
        spec, points_r, points_b=points_s, sort_dim=sweep_dim
    )
    sorted_done = time.perf_counter()
    for pos_a, pos_b in iter_band_pairs_cross(
        values_r, values_s, spec.band_width
    ):
        left = order_r[pos_a]
        right = order_s[pos_b]
        if second is not None:
            keep = (
                np.abs(points_r[left, second] - points_s[right, second])
                <= spec.band_width
            )
            left, right = left[keep], right[keep]
        if not len(left):
            continue
        stats.distance_computations += len(left)
        if kernel is not None:
            mask = kernel.within_rows(left, right, stats)
        else:
            mask = spec.metric.within_rows(
                points_r, points_s, left, right, spec.epsilon
            )
        if mask.any():
            sink.emit(left[mask], right[mask])
            stats.pairs_emitted += int(mask.sum())
    finished = time.perf_counter()
    result.build_seconds = sorted_done - started
    result.join_seconds = finished - sorted_done
    result.stats.pairs_emitted = sink.count
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def _second_dim(sweep_dim: int, filter_dim: Optional[int], dims: int) -> Optional[int]:
    """Resolve the 2-level filter dimension; ``None`` if there is no second."""
    if filter_dim is not None:
        return filter_dim if filter_dim != sweep_dim else None
    if dims < 2:
        return None
    return (sweep_dim + 1) % dims


def _check_and_emit(
    points: np.ndarray,
    order: np.ndarray,
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    second_values: Optional[np.ndarray],
    spec: JoinSpec,
    sink: PairSink,
    stats: JoinStats,
    kernel: Optional[KernelContext] = None,
) -> None:
    if second_values is not None:
        keep = (
            np.abs(second_values[pos_a] - second_values[pos_b])
            <= spec.band_width
        )
        pos_a, pos_b = pos_a[keep], pos_b[keep]
    if not len(pos_a):
        return
    left = order[pos_a]
    right = order[pos_b]
    stats.distance_computations += len(left)
    if kernel is not None:
        mask = kernel.within_rows(left, right, stats)
    else:
        mask = spec.metric.within_rows(points, points, left, right, spec.epsilon)
    if mask.any():
        lo = np.minimum(left[mask], right[mask])
        hi = np.maximum(left[mask], right[mask])
        sink.emit(lo, hi)
        stats.pairs_emitted += int(mask.sum())
