"""An R-tree over points, with incremental insert and STR bulk load.

The general-purpose index family behind spatial joins: a classic
Guttman-style R-tree with quadratic-split insert for the incremental
API, plus Sort-Tile-Recursive (STR) bulk loading — an
overlap-minimizing packing that gives the baseline its best case.  The
paper's own index baseline, the overlap-free R+-tree, lives in
:mod:`repro.baselines.rplus_tree`; both share the synchronized spatial
join in :mod:`repro.baselines.rtree_join`, so the benchmarks compare
the packing strategies directly.

One deliberate adaptation for high dimensions: node-volume heuristics
(area enlargement, area waste) degenerate in high-d space because the
product of many small extents underflows to zero and stops
discriminating.  The insert and split heuristics therefore use *margin*
(sum of side lengths) instead of volume, which is standard practice for
high-dimensional R-tree variants.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.config import validate_points
from repro.errors import InvalidParameterError

DEFAULT_MAX_ENTRIES = 32


class RNode:
    """One R-tree node.

    A leaf's ``entries`` is a list of point indices; an internal node's
    ``entries`` is a list of child :class:`RNode`.  ``lo``/``hi`` bound
    everything beneath the node.
    """

    __slots__ = ("is_leaf", "entries", "lo", "hi")

    def __init__(self, is_leaf: bool, dims: int):
        self.is_leaf = is_leaf
        self.entries: List = []
        self.lo = np.full(dims, np.inf)
        self.hi = np.full(dims, -np.inf)

    def margin(self) -> float:
        """Sum of side lengths of the node's MBR."""
        return float(np.sum(self.hi - self.lo))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"<RNode {kind} entries={len(self.entries)}>"


def _mbr_of_indices(points: np.ndarray, indices: Sequence[int]):
    block = points[np.asarray(indices, dtype=np.int64)]
    return block.min(axis=0), block.max(axis=0)


class RTree:
    """R-tree over an ``(n, d)`` point array.

    Use :meth:`bulk_load` for the packed STR build (what the join
    benchmarks use) or construct empty and :meth:`insert` point indices
    one at a time.
    """

    def __init__(self, points: np.ndarray, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.points = validate_points(points)
        if max_entries < 4:
            raise InvalidParameterError(
                f"max_entries must be >= 4, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.min_entries = max(2, self.max_entries // 3)
        self.dims = self.points.shape[1]
        self.root = RNode(is_leaf=True, dims=self.dims)
        self.size = 0

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, points: np.ndarray, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive loading."""
        tree = cls(points, max_entries=max_entries)
        n = len(tree.points)
        if n == 0:
            return tree
        indices = np.arange(n, dtype=np.int64)
        leaf_groups = _str_tile(
            tree.points, indices, dim=0, capacity=tree.max_entries
        )
        level: List[RNode] = []
        for group in leaf_groups:
            node = RNode(is_leaf=True, dims=tree.dims)
            node.entries = group.tolist()
            node.lo, node.hi = _mbr_of_indices(tree.points, group)
            level.append(node)
        while len(level) > 1:
            centers = np.array([(node.lo + node.hi) * 0.5 for node in level])
            order_groups = _str_tile(
                centers,
                np.arange(len(level), dtype=np.int64),
                dim=0,
                capacity=tree.max_entries,
            )
            parents: List[RNode] = []
            for group in order_groups:
                parent = RNode(is_leaf=False, dims=tree.dims)
                parent.entries = [level[i] for i in group]
                parent.lo = np.min([c.lo for c in parent.entries], axis=0)
                parent.hi = np.max([c.hi for c in parent.entries], axis=0)
                parents.append(parent)
            level = parents
        tree.root = level[0]
        tree.size = n
        return tree

    # ------------------------------------------------------------------
    # incremental insert
    # ------------------------------------------------------------------
    def insert(self, index: int) -> None:
        """Insert one point (by index) with quadratic-split overflow."""
        point = self.points[index]
        path = self._choose_leaf(point)
        leaf = path[-1]
        leaf.entries.append(int(index))
        np.minimum(leaf.lo, point, out=leaf.lo)
        np.maximum(leaf.hi, point, out=leaf.hi)
        self.size += 1
        self._handle_overflow(path)

    def _choose_leaf(self, point: np.ndarray) -> List[RNode]:
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            best: Optional[RNode] = None
            best_key = (math.inf, math.inf)
            for child in node.entries:
                enlarged = float(
                    np.sum(
                        np.maximum(child.hi, point) - np.minimum(child.lo, point)
                    )
                )
                key = (enlarged - child.margin(), child.margin())
                if key < best_key:
                    best_key = key
                    best = child
            node = best
            path.append(node)
        return path

    def _handle_overflow(self, path: List[RNode]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.entries) <= self.max_entries:
                self._tighten(path[: depth + 1])
                return
            sibling = self._quadratic_split(node)
            if depth == 0:
                new_root = RNode(is_leaf=False, dims=self.dims)
                new_root.entries = [node, sibling]
                new_root.lo = np.minimum(node.lo, sibling.lo)
                new_root.hi = np.maximum(node.hi, sibling.hi)
                self.root = new_root
                return
            parent = path[depth - 1]
            parent.entries.append(sibling)
            parent.lo = np.minimum(parent.lo, sibling.lo)
            parent.hi = np.maximum(parent.hi, sibling.hi)
        self._tighten(path[:1])

    def _tighten(self, path: List[RNode]) -> None:
        """Recompute MBRs bottom-up along an insertion path."""
        for node in reversed(path):
            if node.is_leaf:
                if node.entries:
                    node.lo, node.hi = _mbr_of_indices(self.points, node.entries)
            else:
                node.lo = np.min([c.lo for c in node.entries], axis=0)
                node.hi = np.max([c.hi for c in node.entries], axis=0)

    def _entry_bounds(self, node: RNode, position: int):
        if node.is_leaf:
            point = self.points[node.entries[position]]
            return point, point
        child = node.entries[position]
        return child.lo, child.hi

    def _quadratic_split(self, node: RNode) -> RNode:
        """Split an overflowing node; returns the new sibling."""
        entries = node.entries
        count = len(entries)
        bounds = [self._entry_bounds(node, k) for k in range(count)]
        # Pick the seed pair wasting the most margin when combined.
        worst = -math.inf
        seeds = (0, 1)
        for a in range(count):
            for b in range(a + 1, count):
                combined = float(
                    np.sum(
                        np.maximum(bounds[a][1], bounds[b][1])
                        - np.minimum(bounds[a][0], bounds[b][0])
                    )
                )
                waste = combined - float(
                    np.sum(bounds[a][1] - bounds[a][0])
                ) - float(np.sum(bounds[b][1] - bounds[b][0]))
                if waste > worst:
                    worst = waste
                    seeds = (a, b)
        group_a = [seeds[0]]
        group_b = [seeds[1]]
        lo_a, hi_a = (bounds[seeds[0]][0].copy(), bounds[seeds[0]][1].copy())
        lo_b, hi_b = (bounds[seeds[1]][0].copy(), bounds[seeds[1]][1].copy())
        remaining = [k for k in range(count) if k not in seeds]
        for k in remaining:
            # Force-assign when one group must absorb all leftovers to
            # reach the minimum fill.
            needed_a = self.min_entries - len(group_a)
            needed_b = self.min_entries - len(group_b)
            lo, hi = bounds[k]
            grow_a = float(
                np.sum(np.maximum(hi_a, hi) - np.minimum(lo_a, lo))
            ) - float(np.sum(hi_a - lo_a))
            grow_b = float(
                np.sum(np.maximum(hi_b, hi) - np.minimum(lo_b, lo))
            ) - float(np.sum(hi_b - lo_b))
            pending = count - (len(group_a) + len(group_b))
            if needed_a >= pending:
                choose_a = True
            elif needed_b >= pending:
                choose_a = False
            else:
                choose_a = grow_a < grow_b or (
                    grow_a == grow_b and len(group_a) <= len(group_b)
                )
            if choose_a:
                group_a.append(k)
                np.minimum(lo_a, lo, out=lo_a)
                np.maximum(hi_a, hi, out=hi_a)
            else:
                group_b.append(k)
                np.minimum(lo_b, lo, out=lo_b)
                np.maximum(hi_b, hi, out=hi_b)
        sibling = RNode(is_leaf=node.is_leaf, dims=self.dims)
        sibling.entries = [entries[k] for k in group_b]
        sibling.lo, sibling.hi = lo_b, hi_b
        node.entries = [entries[k] for k in group_a]
        node.lo, node.hi = lo_a, hi_a
        return sibling

    # ------------------------------------------------------------------
    # queries and inspection
    # ------------------------------------------------------------------
    def range_query(self, point: np.ndarray, eps: float, metric) -> np.ndarray:
        """Indices of points within ``eps`` of ``point`` under ``metric``."""
        point = np.asarray(point, dtype=np.float64)
        hits: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            gaps = np.maximum(
                0.0, np.maximum(node.lo - point, point - node.hi)
            )
            if not metric.within_gap(gaps, eps):
                continue
            if node.is_leaf:
                if node.entries:
                    members = np.asarray(node.entries, dtype=np.int64)
                    diffs = np.abs(self.points[members] - point)
                    keep = metric.within_gap(diffs, eps)
                    hits.extend(members[keep].tolist())
            else:
                stack.extend(node.entries)
        return np.array(sorted(hits), dtype=np.int64)

    def iter_leaves(self) -> Iterator[RNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.entries)

    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0]
            height += 1
        return height

    def __len__(self) -> int:
        return self.size if self.size else sum(
            len(leaf.entries) for leaf in self.iter_leaves()
        )


def _str_tile(
    coords: np.ndarray, indices: np.ndarray, dim: int, capacity: int
) -> List[np.ndarray]:
    """Sort-Tile-Recursive grouping of ``indices`` into runs of ``capacity``.

    Sorts along ``dim``, slices into ``ceil(pages ** (1/remaining_dims))``
    slabs and recurses on the next dimension inside each slab; the last
    dimension chunks each slab into page-sized runs.
    """
    n = len(indices)
    if n == 0:
        return []
    if n <= capacity:
        return [indices]
    dims = coords.shape[1]
    order = np.argsort(coords[indices, dim], kind="stable")
    ordered = indices[order]
    pages = math.ceil(n / capacity)
    remaining = dims - dim
    if remaining <= 1:
        return [ordered[k : k + capacity] for k in range(0, n, capacity)]
    slabs = math.ceil(pages ** (1.0 / remaining))
    slab_size = math.ceil(n / slabs)
    groups: List[np.ndarray] = []
    for start in range(0, n, slab_size):
        slab = ordered[start : start + slab_size]
        groups.extend(_str_tile(coords, slab, dim + 1, capacity))
    return groups
