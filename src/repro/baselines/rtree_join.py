"""R-tree spatial join (the paper's index baseline).

Synchronized traversal in the style of Brinkhoff et al.: two nodes are
joined only if the minimum distance between their MBRs is at most
``epsilon``; qualifying internal pairs recurse on their children, and
leaf pairs fall back to a dense block comparison.  The self-join variant
traverses ordered node pairs so each unordered point pair is produced
once.

In high dimensions MBRs of any realistic node fan-out stretch across most
of every axis, ``mindist`` collapses to ~0 everywhere and the traversal
degenerates toward all-pairs — the degradation experiments E1/E2 exist to
show.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.baselines._common import emit_block_pairs
from repro.baselines.rtree import RNode, RTree
from repro.core.config import JoinSpec, validate_points
from repro.core.result import JoinResult, JoinStats, PairCollector, PairSink
from repro.errors import InvalidParameterError
from repro.metrics import Metric


def _boxes_within(a: RNode, b: RNode, metric: Metric, eps: float) -> bool:
    gaps = np.maximum(0.0, np.maximum(a.lo - b.hi, b.lo - a.hi))
    return bool(metric.within_gap(gaps, eps))


class _RJoinContext:
    __slots__ = ("tree_a", "tree_b", "spec", "sink", "stats", "self_mode")

    def __init__(self, tree_a: RTree, tree_b: RTree, spec: JoinSpec,
                 sink: PairSink, self_mode: bool):
        self.tree_a = tree_a
        self.tree_b = tree_b
        self.spec = spec
        self.sink = sink
        self.stats = JoinStats()
        self.self_mode = self_mode


def _join_leaf_pair(ctx: _RJoinContext, a: RNode, b: RNode) -> None:
    ctx.stats.leaf_joins += 1
    idx_a = np.asarray(a.entries, dtype=np.int64)
    idx_b = np.asarray(b.entries, dtype=np.int64)
    emit_block_pairs(
        ctx.tree_a.points, ctx.tree_b.points, idx_a, idx_b,
        ctx.spec.metric, ctx.spec.epsilon, ctx.sink, ctx.stats,
        self_mode=ctx.self_mode, same_group=(a is b),
    )


def _join_nodes(ctx: _RJoinContext, a: RNode, b: RNode) -> None:
    """Join the points under ``a`` (tree A) with those under ``b`` (tree B)."""
    ctx.stats.node_pairs_visited += 1
    if a is b:
        # self pair: join children pairs (i, j) with i <= j
        if a.is_leaf:
            _join_leaf_pair(ctx, a, a)
            return
        children = a.entries
        for i, child_i in enumerate(children):
            _join_nodes(ctx, child_i, child_i)
            for child_j in children[i + 1:]:
                if _boxes_within(child_i, child_j, ctx.spec.metric,
                                 ctx.spec.epsilon):
                    _join_nodes(ctx, child_i, child_j)
        return
    if a.is_leaf and b.is_leaf:
        _join_leaf_pair(ctx, a, b)
        return
    # Descend the non-leaf side(s); when both are internal, descend both.
    if not a.is_leaf and not b.is_leaf:
        for child_a in a.entries:
            for child_b in b.entries:
                if _boxes_within(child_a, child_b, ctx.spec.metric,
                                 ctx.spec.epsilon):
                    _join_nodes(ctx, child_a, child_b)
    elif a.is_leaf:
        for child_b in b.entries:
            if _boxes_within(a, child_b, ctx.spec.metric, ctx.spec.epsilon):
                _join_nodes(ctx, a, child_b)
    else:
        for child_a in a.entries:
            if _boxes_within(child_a, b, ctx.spec.metric, ctx.spec.epsilon):
                _join_nodes(ctx, child_a, b)


def rtree_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    tree: Optional[RTree] = None,
    max_entries: int = 32,
) -> JoinResult:
    """Self-join via synchronized R-tree traversal.

    Bulk-loads an STR-packed tree unless a pre-built ``tree`` over the
    same points is supplied.
    """
    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points) < 2:
        return result
    started = time.perf_counter()
    if tree is None:
        tree = RTree.bulk_load(points, max_entries=max_entries)
    built = time.perf_counter()
    ctx = _RJoinContext(tree, tree, spec, sink, self_mode=True)
    _join_nodes(ctx, tree.root, tree.root)
    finished = time.perf_counter()
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = built - started
    result.join_seconds = finished - built
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def rplus_self_join(
    points: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    tree=None,
    max_entries: int = 32,
) -> JoinResult:
    """Self-join via synchronized traversal of an R+-tree.

    Identical traversal to :func:`rtree_self_join`; only the index
    differs (disjoint regions instead of STR-packed overlapping ones).
    """
    from repro.baselines.rplus_tree import RPlusTree

    points = validate_points(points)
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points) < 2:
        return result
    started = time.perf_counter()
    if tree is None:
        tree = RPlusTree.bulk_load(points, max_entries=max_entries)
    built = time.perf_counter()
    ctx = _RJoinContext(tree, tree, spec, sink, self_mode=True)
    _join_nodes(ctx, tree.root, tree.root)
    finished = time.perf_counter()
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = built - started
    result.join_seconds = finished - built
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def rplus_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    max_entries: int = 32,
) -> JoinResult:
    """Two-set join via synchronized traversal of two R+-trees."""
    from repro.baselines.rplus_tree import RPlusTree

    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    started = time.perf_counter()
    tree_r = RPlusTree.bulk_load(points_r, max_entries=max_entries)
    tree_s = RPlusTree.bulk_load(points_s, max_entries=max_entries)
    built = time.perf_counter()
    ctx = _RJoinContext(tree_r, tree_s, spec, sink, self_mode=False)
    if _boxes_within(tree_r.root, tree_s.root, spec.metric, spec.epsilon):
        _join_nodes(ctx, tree_r.root, tree_s.root)
    finished = time.perf_counter()
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = built - started
    result.join_seconds = finished - built
    if collect:
        result.pairs = sink.sorted_pairs()
    return result


def rtree_join(
    points_r: np.ndarray,
    points_s: np.ndarray,
    spec: JoinSpec,
    sink: Optional[PairSink] = None,
    max_entries: int = 32,
) -> JoinResult:
    """Two-set join via synchronized traversal of two STR-packed trees."""
    points_r = validate_points(points_r, "points_r")
    points_s = validate_points(points_s, "points_s")
    if points_r.shape[1] != points_s.shape[1]:
        raise InvalidParameterError(
            "both sides of a join must have the same dimensionality"
        )
    collect = sink is None
    if collect:
        sink = PairCollector()
    result = JoinResult()
    if len(points_r) == 0 or len(points_s) == 0:
        return result
    started = time.perf_counter()
    tree_r = RTree.bulk_load(points_r, max_entries=max_entries)
    tree_s = RTree.bulk_load(points_s, max_entries=max_entries)
    built = time.perf_counter()
    ctx = _RJoinContext(tree_r, tree_s, spec, sink, self_mode=False)
    if _boxes_within(tree_r.root, tree_s.root, spec.metric, spec.epsilon):
        _join_nodes(ctx, tree_r.root, tree_s.root)
    finished = time.perf_counter()
    result.stats = ctx.stats
    result.stats.pairs_emitted = sink.count
    result.build_seconds = built - started
    result.join_seconds = finished - built
    if collect:
        result.pairs = sink.sorted_pairs()
    return result
