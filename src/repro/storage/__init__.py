"""Simulated paged storage, plus crash-consistent session persistence.

The paper's external-memory join variant processes data larger than main
memory by striping the first dimension.  This package provides the
substrate that experiment E9 runs on: a page store standing in for a
disk, a point file that lays rows across pages, and an LRU buffer manager
that counts physical reads and writes.

It also houses the durable half of the incremental join (experiment
E19): checksummed, versioned index snapshots (:mod:`repro.storage.snapshot`)
and the write-ahead update journal (:mod:`repro.storage.wal`) that
together let :meth:`repro.core.incremental.IncrementalJoin.open` recover
a session after a crash — including crashes injected mid-write.  See
``docs/persistence.md`` for the format and the recovery state machine.
"""

from repro.storage.pages import BufferManager, PageStore, PointFile
from repro.storage.snapshot import (
    SNAP_MAGIC,
    SNAP_VERSION,
    encode_snapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    snapshot_filename,
    write_snapshot,
)
from repro.storage.wal import (
    OP_DELETE,
    OP_INSERT,
    SYNC_MODES,
    WAL_FILENAME,
    WAL_MAGIC,
    WAL_VERSION,
    WalRecord,
    WriteAheadLog,
    scan_wal,
)

# view imports core.config/epsilon_kdb/flat_build, so it must come after
# the dependency-free storage modules above.
from repro.storage.view import SnapshotView

__all__ = [
    "SnapshotView",
    "PageStore",
    "PointFile",
    "BufferManager",
    # snapshots
    "SNAP_MAGIC",
    "SNAP_VERSION",
    "snapshot_filename",
    "list_snapshots",
    "prune_snapshots",
    "encode_snapshot",
    "write_snapshot",
    "load_snapshot",
    # write-ahead log
    "WAL_MAGIC",
    "WAL_VERSION",
    "WAL_FILENAME",
    "OP_INSERT",
    "OP_DELETE",
    "SYNC_MODES",
    "WalRecord",
    "WriteAheadLog",
    "scan_wal",
]
