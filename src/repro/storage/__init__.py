"""Simulated paged storage with I/O accounting.

The paper's external-memory join variant processes data larger than main
memory by striping the first dimension.  This package provides the
substrate that experiment E9 runs on: a page store standing in for a
disk, a point file that lays rows across pages, and an LRU buffer manager
that counts physical reads and writes.
"""

from repro.storage.pages import BufferManager, PageStore, PointFile

__all__ = ["PageStore", "PointFile", "BufferManager"]
