"""Checksummed, memmap-friendly snapshots of incremental join sessions.

A snapshot is one self-describing file holding a JSON metadata header
plus a directory of named numpy arrays, laid out so a re-open can hand
the leaf-contiguous tree arrays straight to
:meth:`~repro.core.flat_build.FlatEpsilonKdbTree.from_arrays` as
``np.memmap`` views — no sort, no rebuild, no per-node objects.

On-disk layout (all integers little-endian)::

    EKDBSNAP | u32 version | u32 header_len | u32 crc32(header) | header
    <zero padding to a 64-byte boundary>
    array section 0 | <pad to 64> | array section 1 | ...

The header is UTF-8 JSON: caller metadata under ``"meta"`` plus an
``"arrays"`` directory of ``{name, dtype, shape, offset, nbytes, crc32}``
entries and the expected ``"file_size"``.  Validation on load checks,
in order: magic and version, header length bounds, header CRC, file
size (detects truncation without reading the arrays), and finally one
CRC per array section (detects bit flips).  Any failure raises
:class:`~repro.errors.StorageError` — recovery treats the whole file as
unusable and falls back to an older generation, reserving
:class:`~repro.errors.CorruptSnapshotError` for the caller to raise when
*no* generation survives.

Publishing is atomic: the snapshot is written and fsynced as
``<name>.tmp`` and then :func:`os.replace`'d into place, so a crash
mid-write leaves the previous generation untouched (a stale ``.tmp`` is
ignored by :func:`list_snapshots` and overwritten by the next publish).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import SessionCrashError, StorageError
from repro.obs import trace

SNAP_MAGIC = b"EKDBSNAP"
SNAP_VERSION = 1

_PREAMBLE = struct.Struct("<8sIII")  # magic, version, header_len, header_crc
_ALIGN = 64

#: Largest header accepted on load; a corrupted length field must not
#: make the loader attempt a multi-gigabyte read.
_MAX_HEADER_BYTES = 64 * 1024 * 1024

SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".ekdb"


def snapshot_filename(seq: int) -> str:
    return f"{SNAPSHOT_PREFIX}{int(seq):06d}{SNAPSHOT_SUFFIX}"


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` of every published snapshot, ascending by seq."""
    found: List[Tuple[int, str]] = []
    if not os.path.isdir(directory):
        return found
    for name in os.listdir(directory):
        if not (name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX)):
            continue
        stem = name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)]
        if stem.isdigit():
            found.append((int(stem), os.path.join(directory, name)))
    found.sort()
    return found


def prune_snapshots(directory: str, keep: int = 2) -> int:
    """Delete all but the newest ``keep`` generations; returns count removed."""
    removed = 0
    for _, path in list_snapshots(directory)[: -keep or None]:
        try:
            os.remove(path)
            removed += 1
        except OSError:  # pragma: no cover - racing deletes are harmless
            pass
    return removed


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def encode_snapshot(meta: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialize metadata + named arrays into one snapshot blob."""
    directory = []
    sections: List[bytes] = []
    # Probe the header size with zeroed offsets first: the offsets depend
    # on the header length, which depends on the digit counts of the
    # offsets themselves.  Padding the header to the alignment boundary
    # makes the fixpoint trivial — grow the header estimate until stable.
    blobs: List[Tuple[str, bytes, str, Tuple[int, ...]]] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        blobs.append((name, array.tobytes(), array.dtype.str, array.shape))
    header_size = 0
    while True:
        directory = []
        offset = _pad(_PREAMBLE.size + header_size)
        for name, raw, dtype, shape in blobs:
            directory.append(
                {
                    "name": name,
                    "dtype": dtype,
                    "shape": list(shape),
                    "offset": offset,
                    "nbytes": len(raw),
                    "crc32": zlib.crc32(raw),
                }
            )
            offset = _pad(offset + len(raw))
        header = json.dumps(
            {"meta": meta, "arrays": directory, "file_size": offset},
            sort_keys=True,
        ).encode("utf-8")
        if len(header) <= header_size:
            # Stable: offsets computed for a header at least this long.
            header = header + b" " * (header_size - len(header))
            break
        header_size = len(header)
    out = bytearray()
    out += _PREAMBLE.pack(SNAP_MAGIC, SNAP_VERSION, len(header), zlib.crc32(header))
    out += header
    for entry, (_, raw, _, _) in zip(directory, blobs):
        out += b"\x00" * (entry["offset"] - len(out))
        out += raw
    out += b"\x00" * (directory[-1]["offset"] + directory[-1]["nbytes"] - len(out) if directory else 0)
    # Trailing alignment pad so file_size matches exactly.
    expected = json.loads(header)["file_size"]
    out += b"\x00" * (expected - len(out))
    return bytes(out)


def write_snapshot(
    directory: str,
    seq: int,
    meta: Dict[str, Any],
    arrays: Dict[str, np.ndarray],
    fault_plan=None,
    fsync: bool = True,
) -> Tuple[str, int]:
    """Atomically publish snapshot generation ``seq``; returns (path, bytes).

    The blob is written and (optionally) fsynced to ``<final>.tmp`` and
    renamed into place.  ``fault_plan`` storage faults keyed on ``seq``
    fire here: a *publish crash* raises
    :class:`~repro.errors.SessionCrashError` after the tmp write but
    before the rename (the durable state is the previous generation); a
    *truncation* or *bit flip* damages the just-published file in place,
    modelling media corruption that only the next recovery will notice.
    """
    final_path = os.path.join(directory, snapshot_filename(seq))
    tmp_path = final_path + ".tmp"
    blob = encode_snapshot(meta, arrays)
    fault = fault_plan.snapshot_fault(seq) if fault_plan is not None else None
    with trace.span("snapshot-write", seq=seq, bytes=len(blob)):
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        if fault is not None and fault[0] == "crash":
            raise SessionCrashError(
                f"injected crash before publishing snapshot seq={seq}"
            )
        os.replace(tmp_path, final_path)
        if fault is not None and fault[0] == "truncate":
            keep = max(_PREAMBLE.size, int(len(blob) * fault[1]))
            with open(final_path, "r+b") as handle:
                handle.truncate(min(keep, len(blob) - 1))
        elif fault is not None and fault[0] == "flip":
            # Damage a byte inside the largest array section (never the
            # unchecksummed padding), so only the per-array CRC can
            # catch it; an array-less snapshot takes the hit in the
            # header, where the header CRC catches it.
            _, _, header_len, _ = _PREAMBLE.unpack_from(blob)
            header = json.loads(
                blob[_PREAMBLE.size : _PREAMBLE.size + header_len].decode("utf-8")
            )
            sections = [e for e in header["arrays"] if e["nbytes"] > 0]
            if sections:
                entry = max(sections, key=lambda e: e["nbytes"])
                victim = entry["offset"] + entry["nbytes"] // 2
            else:
                victim = _PREAMBLE.size
            with open(final_path, "r+b") as handle:
                handle.seek(victim)
                byte = handle.read(1)
                handle.seek(victim)
                handle.write(bytes([byte[0] ^ 0x20]))
    return final_path, len(blob)


def load_snapshot(
    path: str, validate_arrays: bool = True
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Validate and open one snapshot; returns ``(meta, arrays)``.

    The returned arrays are read-only views into an ``np.memmap`` of the
    file — reconstructing the tree from them copies nothing.  Raises
    :class:`~repro.errors.StorageError` on any validation failure
    (missing file, bad magic/version, short file, header or array CRC
    mismatch); the caller decides whether an older generation can serve.

    ``validate_arrays=False`` skips the per-array CRC pass.  Checksumming
    pages the entire file into memory — O(file size) — which defeats a
    zero-materialization open; the structural checks (magic, version,
    header CRC, exact file size, array bounds) still run, so torn and
    truncated files are caught either way, but a flipped bit inside an
    array section is only caught by a fully validating open (recovery
    always validates).
    """
    try:
        mm = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot open snapshot {path}: {exc}") from exc
    if mm.size < _PREAMBLE.size:
        raise StorageError(f"snapshot {path} is shorter than its preamble")
    magic, version, header_len, header_crc = _PREAMBLE.unpack_from(mm[: _PREAMBLE.size])
    if magic != SNAP_MAGIC:
        raise StorageError(f"snapshot {path} has bad magic {magic!r}")
    if version != SNAP_VERSION:
        raise StorageError(
            f"snapshot {path} has unsupported version {version}"
        )
    if header_len > _MAX_HEADER_BYTES or _PREAMBLE.size + header_len > mm.size:
        raise StorageError(f"snapshot {path} header is truncated")
    header_bytes = bytes(mm[_PREAMBLE.size : _PREAMBLE.size + header_len])
    if zlib.crc32(header_bytes) != header_crc:
        raise StorageError(f"snapshot {path} header fails its checksum")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"snapshot {path} header is not valid JSON") from exc
    expected_size = int(header.get("file_size", -1))
    if mm.size != expected_size:
        raise StorageError(
            f"snapshot {path} is {mm.size} bytes, expected {expected_size} "
            "(truncated or padded)"
        )
    arrays: Dict[str, np.ndarray] = {}
    for entry in header.get("arrays", []):
        offset = int(entry["offset"])
        nbytes = int(entry["nbytes"])
        if offset < 0 or offset + nbytes > mm.size:
            raise StorageError(
                f"snapshot {path} array {entry['name']!r} overruns the file"
            )
        raw = mm[offset : offset + nbytes]
        if validate_arrays and zlib.crc32(raw) != int(entry["crc32"]):
            raise StorageError(
                f"snapshot {path} array {entry['name']!r} fails its checksum"
            )
        arrays[entry["name"]] = raw.view(np.dtype(entry["dtype"])).reshape(
            tuple(entry["shape"])
        )
    return header["meta"], arrays
