"""Write-ahead log for incremental join sessions.

Every :meth:`~repro.core.incremental.IncrementalJoin.insert` /
``delete`` batch is journaled here *before* it mutates session state, so
the update stream since the last snapshot can be replayed after a crash
(see :mod:`repro.storage.snapshot` for the snapshot half and
``docs/persistence.md`` for the full recovery state machine).

On-disk format — a magic/version header followed by length-prefixed,
CRC-checked frames::

    EKDBWAL\\x01 | u32 version
    [u32 payload_len | u32 crc32(payload) | payload] ...

Each payload starts with ``u64 seq | u8 op`` followed by the op body
(points for an insert, ids for a delete).  The sequence number is the
session's monotone update counter; recovery replays only records whose
``seq`` exceeds the snapshot's durable watermark, which makes a crash
between snapshot publish and log truncation harmless.

:func:`scan_wal` is deliberately forgiving about the *suffix*: a torn
final frame (partial write at crash) or a bit-flipped payload fails the
length/CRC validation, and the scan stops there, reporting the damaged
byte offset so recovery can truncate the log back to its durable prefix.
A damaged *header* means no record can be trusted and the log reads as
empty.

``sync_mode`` maps to fsync policy: ``"always"`` fsyncs after every
append (each acked update is crash-durable), ``"batch"`` flushes to the
OS per append but fsyncs only at snapshot boundaries and close, and
``"off"`` never fsyncs.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError, SessionCrashError, StorageError
from repro.obs import trace

WAL_MAGIC = b"EKDBWAL\x01"
WAL_VERSION = 1

#: File name of the update journal inside a session directory.
WAL_FILENAME = "wal.ekdb"

#: Update-record opcodes.
OP_INSERT = 1
OP_DELETE = 2

_HEADER = struct.Struct("<8sI")  # magic, version
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_RECORD_HEAD = struct.Struct("<QB")  # seq, op
_INSERT_HEAD = struct.Struct("<II")  # n rows, d dims
_DELETE_HEAD = struct.Struct("<I")  # k ids

SYNC_MODES = ("always", "batch", "off")


@dataclass
class WalRecord:
    """One decoded update record."""

    seq: int
    op: int
    points: Optional[np.ndarray] = None  # OP_INSERT
    ids: Optional[np.ndarray] = None  # OP_DELETE


def encode_insert(seq: int, points: np.ndarray) -> bytes:
    points = np.ascontiguousarray(points, dtype=np.float64)
    n, d = points.shape
    return (
        _RECORD_HEAD.pack(seq, OP_INSERT)
        + _INSERT_HEAD.pack(n, d)
        + points.tobytes()
    )


def encode_delete(seq: int, ids: np.ndarray) -> bytes:
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    return _RECORD_HEAD.pack(seq, OP_DELETE) + _DELETE_HEAD.pack(len(ids)) + ids.tobytes()


def decode_record(payload: bytes) -> WalRecord:
    """Decode one frame payload; raises :class:`StorageError` on a
    structurally impossible record (wrong op or body length)."""
    if len(payload) < _RECORD_HEAD.size:
        raise StorageError("WAL record shorter than its fixed header")
    seq, op = _RECORD_HEAD.unpack_from(payload)
    body = payload[_RECORD_HEAD.size :]
    if op == OP_INSERT:
        if len(body) < _INSERT_HEAD.size:
            raise StorageError("WAL insert record truncated")
        n, d = _INSERT_HEAD.unpack_from(body)
        data = body[_INSERT_HEAD.size :]
        if len(data) != n * d * 8:
            raise StorageError("WAL insert record body length mismatch")
        points = np.frombuffer(data, dtype=np.float64).reshape(n, d)
        return WalRecord(seq=seq, op=op, points=points)
    if op == OP_DELETE:
        if len(body) < _DELETE_HEAD.size:
            raise StorageError("WAL delete record truncated")
        (k,) = _DELETE_HEAD.unpack_from(body)
        data = body[_DELETE_HEAD.size :]
        if len(data) != k * 8:
            raise StorageError("WAL delete record body length mismatch")
        return WalRecord(seq=seq, op=op, ids=np.frombuffer(data, dtype=np.int64))
    raise StorageError(f"unknown WAL opcode {op}")


def scan_wal(path: str) -> Tuple[List[WalRecord], int, int]:
    """Read a log, tolerating a damaged suffix.

    Returns ``(records, valid_bytes, corrupt_frames_discarded)``:
    every record of the durable prefix, the byte offset that prefix ends
    at (truncate the file here before appending again), and how many
    damaged-suffix events the scan discarded (0 or 1 — once a frame
    fails validation nothing after it can be trusted).  A missing file
    yields an empty log; a damaged header yields an empty log whose
    ``valid_bytes`` is the header size (the file is rewritten).
    """
    if not os.path.exists(path):
        return [], _HEADER.size, 0
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _HEADER.size:
        return [], _HEADER.size, 1 if blob else 0
    magic, version = _HEADER.unpack_from(blob)
    if magic != WAL_MAGIC or version != WAL_VERSION:
        return [], _HEADER.size, 1
    records: List[WalRecord] = []
    offset = _HEADER.size
    discarded = 0
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            discarded = 1  # torn frame header
            break
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        stop = start + length
        if stop > len(blob):
            discarded = 1  # torn payload
            break
        payload = blob[start:stop]
        if zlib.crc32(payload) != crc:
            discarded = 1  # bit flip (or worse) — nothing after is trusted
            break
        try:
            record = decode_record(payload)
        except StorageError:
            discarded = 1
            break
        records.append(record)
        offset = stop
    return records, offset, discarded


class WriteAheadLog:
    """Append-only update journal with checksummed frames.

    ``fault_plan`` (a :class:`~repro.core.resilience.FaultPlan`) may
    schedule storage-corruption faults by record sequence number: a torn
    append writes only a prefix of the frame and raises
    :class:`~repro.errors.SessionCrashError` (the process "died"
    mid-write), and a bit flip silently damages the just-written frame
    on disk (latent media corruption that only recovery will notice).
    """

    def __init__(self, path: str, sync_mode: str = "batch", fault_plan=None):
        if sync_mode not in SYNC_MODES:
            raise InvalidParameterError(
                f"sync_mode must be one of {SYNC_MODES}, got {sync_mode!r}"
            )
        self.path = str(path)
        self.sync_mode = sync_mode
        self.fault_plan = fault_plan
        self.appends = 0
        if os.path.exists(self.path):
            # Keep existing durable content; position after its valid
            # prefix (recovery truncates damage before handing us the
            # file, but be defensive about a bare header).
            self._handle = open(self.path, "r+b")
            self._handle.seek(0, os.SEEK_END)
            if self._handle.tell() < _HEADER.size:
                self._write_header()
        else:
            self._handle = open(self.path, "w+b")
            self._write_header()

    def _write_header(self) -> None:
        self._handle.seek(0)
        self._handle.truncate()
        self._handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION))
        self._handle.flush()

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def append(self, payload: bytes, seq: int) -> None:
        """Frame, write and (per ``sync_mode``) fsync one record."""
        if self._handle.closed:
            raise StorageError("write-ahead log is closed")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        fault = (
            self.fault_plan.wal_append_fault(seq)
            if self.fault_plan is not None
            else None
        )
        start = self._handle.seek(0, os.SEEK_END)
        with trace.span(
            "wal-append", seq=seq, bytes=len(frame), sync=self.sync_mode
        ):
            if fault is not None and fault[0] == "tear":
                keep = max(1, int(len(frame) * fault[1]))
                self._handle.write(frame[: min(keep, len(frame) - 1)])
                self._handle.flush()
                raise SessionCrashError(
                    f"injected crash tearing WAL record seq={seq}"
                )
            self._handle.write(frame)
            self._handle.flush()
            if fault is not None and fault[0] == "flip":
                # Flip one payload bit in place: the frame stays the
                # right length, so only the CRC can catch it.
                victim = start + _FRAME.size + len(payload) // 2
                self._handle.seek(victim)
                byte = self._handle.read(1)
                self._handle.seek(victim)
                self._handle.write(bytes([byte[0] ^ 0x10]))
                self._handle.flush()
                self._handle.seek(0, os.SEEK_END)
            if self.sync_mode == "always":
                os.fsync(self._handle.fileno())
        self.appends += 1

    def append_insert(self, seq: int, points: np.ndarray) -> None:
        self.append(encode_insert(seq, points), seq)

    def append_delete(self, seq: int, ids: np.ndarray) -> None:
        self.append(encode_delete(seq, ids), seq)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        if not self._handle.closed and self.sync_mode != "off":
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def reset(self) -> None:
        """Truncate back to a bare header (after a snapshot publish)."""
        self._write_header()
        if self.sync_mode != "off":
            os.fsync(self._handle.fileno())

    def truncate_to(self, valid_bytes: int) -> None:
        """Cut a damaged suffix off (recovery's discard step)."""
        self._handle.seek(max(int(valid_bytes), _HEADER.size))
        self._handle.truncate()
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            if self.sync_mode != "off":
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteAheadLog path={self.path!r} sync={self.sync_mode} "
            f"appends={self.appends}>"
        )
