"""Zero-materialization queries over a persisted snapshot.

:class:`SnapshotView` answers ``range_query`` / ``batch_range_query``
straight off the read-only memmapped CSR arrays of a snapshot file — no
:class:`~repro.core.incremental.IncrementalJoin` construction, no WAL
replay machinery, and no array copies on the in-grid query path: the
flat tree is rebuilt *structurally* with
:meth:`~repro.core.flat_build.FlatEpsilonKdbTree.from_arrays` over the
memmap views themselves, and the traversal only ever reads them.

The view is strictly read-only and strictly as-of the snapshot: if the
session's write-ahead log holds records newer than the snapshot's
watermark, opening raises :class:`~repro.errors.StaleSnapshotError` and
the caller falls back to full recovery (which replays the log).  The
cost-based planner picks this path for read-only queries against
persisted tenants — E19 measured the snapshot re-open 2937× faster than
a rebuild, and E22 measures this view against full session
materialization.

Import discipline: this module sits *below* :mod:`repro.core.incremental`
— it may import :mod:`~repro.core.config`, :mod:`~repro.core.epsilon_kdb`
and :mod:`~repro.core.flat_build` (all earlier in the core import
order), never :mod:`~repro.core.join` or :mod:`~repro.core.incremental`.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.core.config import JoinSpec, validate_points
from repro.core.epsilon_kdb import Grid
from repro.core.flat_build import FlatEpsilonKdbTree
from repro.errors import (
    CorruptSnapshotError,
    InvalidParameterError,
    StaleSnapshotError,
    StorageError,
)
from repro.obs import trace
from repro.storage.snapshot import list_snapshots, load_snapshot
from repro.storage.wal import WAL_FILENAME, scan_wal

__all__ = ["SnapshotView"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class SnapshotView:
    """Read-only range queries over one memmapped snapshot generation.

    Construct with :meth:`open`; query with :meth:`range_query` /
    :meth:`batch_range_query`, which are byte-identical, per query, to
    the same calls on the fully materialized
    :class:`~repro.core.incremental.IncrementalJoin` session recovered
    from the same directory (a brute-force-oracle-backed guarantee the
    test suite enforces).
    """

    def __init__(
        self,
        meta: dict,
        arrays: dict,
        *,
        path: str,
        snapshot_bytes: int,
    ):
        self.path = path
        self.snapshot_bytes = int(snapshot_bytes)
        self.spec = JoinSpec.from_structural_dict(meta["spec"])
        self._dims = meta["dims"]
        self.last_update_seq = int(meta["wal_seq"])
        # All of these stay memmap views — nothing below copies them.
        self._base_ids = np.asarray(arrays["base_ids"], dtype=np.int64)
        self._base_alive = np.asarray(arrays["base_alive"], dtype=bool)
        self._delta_points = np.asarray(arrays["delta_points"], dtype=np.float64)
        self._delta_ids = np.asarray(arrays["delta_ids"], dtype=np.int64)
        self._delta_alive = np.asarray(arrays["delta_alive"], dtype=bool)
        self._base_points: Optional[np.ndarray] = None
        if meta["tree"] is not None:
            grid_meta = meta["tree"]["grid"]
            grid = Grid(
                lo=np.asarray(grid_meta["lo"], dtype=np.float64),
                hi=np.asarray(grid_meta["hi"], dtype=np.float64),
                eps=float(grid_meta["eps"]),
                n_cells=np.asarray(grid_meta["n_cells"], dtype=np.int64),
            )
            # The tree may have been built at a coarser epsilon (shared
            # TreeCache reuse); adopt its build spec so the query-radius
            # validation reflects what the structure actually supports.
            tree_epsilon = float(meta["tree"]["epsilon"])
            # cascade="off": the filter-cascade kernels build a (d, n)
            # column store over *all* points on first use — a full
            # transpose copy of the dataset, i.e. exactly the
            # materialization this view exists to skip.  The direct
            # leaf path instead fancy-indexes only candidate rows out
            # of the memmap, touching just the pages a query needs.
            # Results are byte-identical either way.
            tree_spec = replace(
                self.spec,
                cascade="off",
                **(
                    {}
                    if tree_epsilon == self.spec.epsilon
                    else {"epsilon": tree_epsilon}
                ),
            )
            self._tree: Optional[FlatEpsilonKdbTree] = (
                FlatEpsilonKdbTree.from_arrays(
                    np.asarray(arrays["points_flat"], dtype=np.float64),
                    np.asarray(arrays["perm"], dtype=np.int64),
                    np.asarray(arrays["digits"], dtype=np.int64),
                    np.asarray(arrays["packed_nodes"], dtype=np.int64),
                    tree_spec,
                    grid,
                )
            )
        else:
            self._tree = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, validate: bool = False) -> "SnapshotView":
        """Map the newest valid snapshot under ``path`` (a session dir).

        Falls back across generations when a snapshot file fails its
        structural validation, exactly like
        :meth:`~repro.core.incremental.IncrementalJoin.open`.  Raises
        :class:`~repro.errors.CorruptSnapshotError` when no generation
        survives, and :class:`~repro.errors.StaleSnapshotError` when the
        write-ahead log holds committed records newer than the chosen
        snapshot — the view cannot replay them, so serving from it would
        silently drop updates.

        By default the per-array CRC pass is skipped: checksumming pages
        the whole file in, costing O(file size) where the map itself is
        O(1) — the exact overhead this class exists to avoid.  Magic,
        version, header CRC, exact file size and array bounds are always
        checked (torn/truncated files are still rejected); pass
        ``validate=True`` to also verify every array byte, or recover
        the session, which always does.
        """
        path = str(path)
        with trace.span("snapshot-view.open", path=path):
            if os.path.isdir(path):
                directory = path
                snaps = list_snapshots(path)
                if not snaps:
                    raise StorageError(
                        f"{path!r} holds no snapshot to map; run a "
                        "persisted session there first"
                    )
                candidates = [snap_path for _, snap_path in reversed(snaps)]
            else:
                directory = os.path.dirname(path) or "."
                candidates = [path]
            meta = arrays = chosen = None
            for snap_path in candidates:
                try:
                    meta, arrays = load_snapshot(
                        snap_path, validate_arrays=validate
                    )
                    chosen = snap_path
                    break
                except StorageError:
                    continue
            if meta is None:
                raise CorruptSnapshotError(
                    f"all {len(candidates)} snapshot generation(s) under "
                    f"{path!r} failed validation"
                )
            watermark = int(meta["wal_seq"])
            records, _, _ = scan_wal(os.path.join(directory, WAL_FILENAME))
            newer = sum(1 for rec in records if rec.seq > watermark)
            if newer:
                raise StaleSnapshotError(
                    f"write-ahead log at {directory!r} holds {newer} "
                    f"record(s) past snapshot watermark {watermark}; "
                    "a SnapshotView cannot replay them — recover the "
                    "session instead"
                )
            return cls(
                meta,
                arrays,
                path=chosen,
                snapshot_bytes=os.path.getsize(chosen),
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_live(self) -> int:
        return int(self._base_alive.sum()) + int(self._delta_alive.sum())

    @property
    def dims(self) -> Optional[int]:
        return self._dims

    @property
    def epsilon(self) -> float:
        return self.spec.epsilon

    def close(self) -> None:
        """Drop the array references so the mappings can be reclaimed."""
        self._tree = None
        self._base_points = None
        self._base_ids = _EMPTY_IDS
        self._base_alive = np.empty(0, dtype=bool)
        self._delta_points = np.empty((0, self._dims or 0))
        self._delta_ids = _EMPTY_IDS
        self._delta_alive = np.empty(0, dtype=bool)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(
        self, point: np.ndarray, eps: Optional[float] = None
    ) -> np.ndarray:
        """Ids of live points within ``eps`` of ``point``, ascending."""
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1:
            raise InvalidParameterError(
                f"query point must be 1-D, got shape {point.shape}"
            )
        return self.batch_range_query(point[np.newaxis, :], eps=eps)[0]

    def batch_range_query(
        self, queries: np.ndarray, eps: Optional[float] = None
    ) -> List[np.ndarray]:
        """Ids of live points within ``eps`` of each query row.

        The same answer :class:`IncrementalJoin.batch_range_query` gives
        for the recovered session: a leaf-directed pass over the
        memmapped base tree for in-grid queries, a blocked brute scan
        for out-of-grid queries and any persisted delta rows, tombstones
        filtered, one ascending int64 id array per query.
        """
        queries = validate_points(queries, "queries")
        if eps is None:
            eps = self.spec.epsilon
        eps = float(eps)
        if not np.isfinite(eps) or eps <= 0:
            raise InvalidParameterError(
                f"query radius must be a positive finite number, got {eps!r}"
            )
        if eps > self.spec.epsilon:
            raise InvalidParameterError(
                f"query radius {eps} exceeds the snapshot epsilon "
                f"{self.spec.epsilon}"
            )
        n_q = len(queries)
        if self._dims is None:
            return [_EMPTY_IDS.copy() for _ in range(n_q)]
        if queries.shape[1] != self._dims:
            raise InvalidParameterError(
                f"snapshot holds {self._dims}-dimensional points, "
                f"got queries with {queries.shape[1]}"
            )
        parts: List[List[np.ndarray]] = [[] for _ in range(n_q)]
        tree = self._tree
        if tree is not None:
            grid = tree.grid
            in_box = np.all(
                (queries >= grid.lo[np.newaxis, :])
                & (queries <= grid.hi[np.newaxis, :]),
                axis=1,
            )
            box_rows = np.flatnonzero(in_box)
            if len(box_rows):
                answers = tree.batch_range_query(queries[box_rows], eps=eps)
                for pos, hits in zip(box_rows, answers):
                    if len(hits):
                        alive = hits[self._base_alive[hits]]
                        if len(alive):
                            parts[pos].append(self._base_ids[alive])
            out_rows = np.flatnonzero(~in_box)
            if len(out_rows):
                self._brute_range(
                    queries, out_rows, self._input_order_base(),
                    self._base_ids, self._base_alive, eps, parts,
                )
        if len(self._delta_points):
            self._brute_range(
                queries, np.arange(n_q, dtype=np.int64), self._delta_points,
                self._delta_ids, self._delta_alive, eps, parts,
            )
        out: List[np.ndarray] = []
        for bucket in parts:
            if not bucket:
                out.append(_EMPTY_IDS.copy())
            elif len(bucket) == 1:
                out.append(np.sort(bucket[0]))
            else:
                out.append(np.sort(np.concatenate(bucket)))
        return out

    def _input_order_base(self) -> np.ndarray:
        """Base points gathered back to input order (out-of-grid path only).

        The one place the view materializes anything: queries outside
        the grid box cannot use the tree, so they brute-scan the base
        set, which must align with ``base_ids``.  Built lazily and
        cached — in-grid queries (every point the session ever indexed
        lies inside the box) never pay it.
        """
        if self._base_points is None:
            tree = self._tree
            if tree is None or not len(tree.perm):
                self._base_points = np.empty((0, self._dims or 0))
            else:
                inverse = np.empty(len(tree.perm), dtype=np.int64)
                inverse[tree.perm] = np.arange(len(tree.perm), dtype=np.int64)
                self._base_points = np.ascontiguousarray(
                    tree.points_flat[inverse]
                )
        return self._base_points

    def _brute_range(
        self,
        queries: np.ndarray,
        rows: np.ndarray,
        points: np.ndarray,
        ids: np.ndarray,
        alive: np.ndarray,
        eps: float,
        parts: List[List[np.ndarray]],
    ) -> None:
        """Blocked brute scan of ``points[alive]``; mirrors the session's."""
        live = np.flatnonzero(alive)
        if not len(live) or not len(rows):
            return
        block = points[live]
        metric = self.spec.metric
        chunk = max(1, 262144 // len(live))
        for start in range(0, len(rows), chunk):
            sub = rows[start:start + chunk]
            diffs = np.abs(
                queries[sub][:, np.newaxis, :] - block[np.newaxis, :, :]
            )
            keep = metric.within_gap(
                diffs.reshape(-1, diffs.shape[2]), eps
            ).reshape(len(sub), len(live))
            for local, q in enumerate(sub):
                hit = keep[local]
                if hit.any():
                    parts[q].append(ids[live[hit]])
