"""Paged storage simulation.

:class:`PageStore` models a disk as an append-only collection of
fixed-size pages and counts every physical page read and write.
:class:`PointFile` lays an ``(n, d)`` point relation across pages of a
store.  :class:`BufferManager` caches pages with LRU replacement and
pin/unpin discipline, so algorithms above it incur physical I/O only on
cache misses — exactly the accounting the external-join experiment needs.

Pages hold real NumPy arrays (the data has to live somewhere in a pure
in-process simulation); the point is the *counting*, which reproduces the
I/O behaviour of the paper's disk-resident setting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import InvalidParameterError, StorageError, TransientIoError

DEFAULT_PAGE_ROWS = 256


@dataclass
class IoCounters:
    """Physical I/O tally for one store."""

    reads: int = 0
    writes: int = 0

    def snapshot(self) -> "IoCounters":
        return IoCounters(reads=self.reads, writes=self.writes)

    def delta(self, earlier: "IoCounters") -> "IoCounters":
        return IoCounters(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
        )


class PageStore:
    """A simulated disk of fixed-size pages.

    ``page_rows`` is the page size expressed in relation rows; every
    :meth:`read_page` / :meth:`write_page` bumps the physical counters.

    ``fault_plan`` (a :class:`~repro.core.resilience.FaultPlan`) injects
    deterministic transient read failures: when the plan schedules a
    fault for a read's ordinal (its position in this store's read
    sequence), :meth:`read_page` raises
    :class:`~repro.errors.TransientIoError` *after* counting the
    physical read — the I/O was attempted — and a retry of the same page
    advances the ordinal, so it succeeds, exactly the transient-fault
    shape the external joins recover from.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) mirrors
    every physical read/write into the ``storage.pages_read`` /
    ``storage.pages_written`` counters, so a store's I/O lands in the
    same registry as the join counters.  ``None`` (the default) skips
    the mirroring entirely.
    """

    def __init__(
        self,
        page_rows: int = DEFAULT_PAGE_ROWS,
        fault_plan=None,
        metrics=None,
    ):
        if page_rows < 1:
            raise InvalidParameterError(
                f"page_rows must be >= 1, got {page_rows}"
            )
        self.page_rows = int(page_rows)
        self._pages: List[np.ndarray] = []
        self.counters = IoCounters()
        self.fault_plan = fault_plan
        self.metrics = metrics

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self, rows: np.ndarray) -> int:
        """Write a new page containing ``rows``; returns its page id."""
        if len(rows) > self.page_rows:
            raise StorageError(
                f"page overflow: {len(rows)} rows > page size {self.page_rows}"
            )
        self._pages.append(np.array(rows, copy=True))
        self.counters.writes += 1
        if self.metrics is not None:
            self.metrics.counter("storage.pages_written").inc()
        return len(self._pages) - 1

    def write_page(self, page_id: int, rows: np.ndarray) -> None:
        """Overwrite an existing page."""
        self._check(page_id)
        if len(rows) > self.page_rows:
            raise StorageError(
                f"page overflow: {len(rows)} rows > page size {self.page_rows}"
            )
        self._pages[page_id] = np.array(rows, copy=True)
        self.counters.writes += 1
        if self.metrics is not None:
            self.metrics.counter("storage.pages_written").inc()

    def read_page(self, page_id: int) -> np.ndarray:
        """Physically read one page (counted, possibly injected-faulty)."""
        self._check(page_id)
        ordinal = self.counters.reads
        self.counters.reads += 1
        if self.metrics is not None:
            self.metrics.counter("storage.pages_read").inc()
        if self.fault_plan is not None and self.fault_plan.io_fault(ordinal):
            raise TransientIoError(
                f"injected transient I/O error reading page {page_id} "
                f"(read ordinal {ordinal})"
            )
        return self._pages[page_id]

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise StorageError(
                f"page {page_id} out of range [0, {len(self._pages)})"
            )


class BufferManager:
    """LRU page cache with pin counts over a :class:`PageStore`.

    ``capacity`` is the number of page frames.  :meth:`get` returns the
    page contents, faulting it in on a miss; pages fetched with
    ``pin=True`` must be released with :meth:`unpin` before they become
    evictable.  Eviction with every frame pinned raises
    :class:`~repro.errors.StorageError` — a budget violation, not a
    silent overcommit.
    """

    def __init__(self, store: PageStore, capacity: int):
        if capacity < 1:
            raise InvalidParameterError(
                f"buffer capacity must be >= 1, got {capacity}"
            )
        self.store = store
        self.capacity = int(capacity)
        self._frames: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def get(self, page_id: int, pin: bool = False) -> np.ndarray:
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.hits += 1
        else:
            self.misses += 1
            self._make_room()
            self._frames[page_id] = self.store.read_page(page_id)
        if pin:
            self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return self._frames[page_id]

    def unpin(self, page_id: int) -> None:
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise StorageError(f"page {page_id} is not pinned")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = next(
                (pid for pid in self._frames if self._pins.get(pid, 0) == 0),
                None,
            )
            if victim is None:
                raise StorageError(
                    "buffer pool exhausted: every frame is pinned"
                )
            del self._frames[victim]

    @property
    def pinned_pages(self) -> int:
        return len(self._pins)

    def flush(self) -> None:
        """Drop every unpinned frame (pinned frames stay resident)."""
        for pid in [p for p in self._frames if self._pins.get(p, 0) == 0]:
            del self._frames[pid]


class PointFile:
    """An ``(n, d)`` point relation laid across pages of a store."""

    def __init__(self, store: PageStore, dims: int):
        if dims < 1:
            raise InvalidParameterError(f"dims must be >= 1, got {dims}")
        self.store = store
        self.dims = int(dims)
        self.page_ids: List[int] = []
        self.num_rows = 0
        self._tail: Optional[np.ndarray] = None
        self._closed = False

    @classmethod
    def from_points(cls, store: PageStore, points: np.ndarray) -> "PointFile":
        """Write a whole point array to a new file (counts the writes)."""
        points = np.asarray(points, dtype=np.float64)
        pfile = cls(store, dims=points.shape[1])
        for start in range(0, len(points), store.page_rows):
            pfile.append_rows(points[start : start + store.page_rows])
        pfile.close_append()
        return pfile

    def append_rows(self, rows: np.ndarray) -> None:
        """Append rows; full pages are written out, a partial tail is
        buffered in memory until :meth:`close_append`."""
        if self._closed:
            raise StorageError("cannot append to a closed PointFile")
        rows = np.asarray(rows, dtype=np.float64).reshape(-1, self.dims)
        if self._tail is not None and len(self._tail):
            buffered = np.vstack([self._tail, rows])
        else:
            buffered = rows
        offset = 0
        while len(buffered) - offset >= self.store.page_rows:
            chunk = buffered[offset : offset + self.store.page_rows]
            self.page_ids.append(self.store.allocate(chunk))
            offset += self.store.page_rows
        remainder = buffered[offset:]
        self._tail = np.array(remainder, copy=True) if len(remainder) else None
        self.num_rows += len(rows)

    def close_append(self) -> None:
        """Flush the buffered tail page; the file becomes read-only."""
        if self._tail is not None and len(self._tail):
            self.page_ids.append(self.store.allocate(self._tail))
        self._tail = None
        self._closed = True

    @property
    def num_pages(self) -> int:
        return len(self.page_ids)

    def read_page_rows(self, position: int) -> np.ndarray:
        """Physically read the ``position``-th page of this file."""
        return self.store.read_page(self.page_ids[position])

    def scan(self) -> Iterator[np.ndarray]:
        """Yield every page's rows in order (each yield = one read)."""
        for position in range(self.num_pages):
            yield self.read_page_rows(position)

    def read_all(self) -> np.ndarray:
        """Materialize the whole file (counted as a full scan)."""
        pages = list(self.scan())
        if not pages:
            return np.empty((0, self.dims))
        return np.vstack(pages)
