"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
``pip install -e .`` also works on minimal environments that lack the
``wheel`` package (legacy editable installs go through ``setup.py
develop``, which does not build a wheel).
"""

from setuptools import setup

setup()
