"""Differential testing harness: every engine, one answer.

A seed-driven workload generator sweeps (n, d, epsilon, metric,
distribution, self vs two-set) and asserts that every join engine —
serial epsilon-kdB on both the flat and the pointer build, the
stripe-parallel executor, the incremental streaming session, the grid,
sort-merge and R-tree baselines — returns exactly the brute-force
oracle's canonical pair set.  A fixed small matrix runs in tier-1; the
extended matrix (larger inputs, more seeds, the pooled executor) runs
under ``-m slow``.

The incremental row answers each case through an
:class:`~repro.core.incremental.IncrementalJoin` update stream —
chunked inserts interleaved with decoy points that are inserted and
later deleted, plus a mid-stream compaction — so every matrix case
doubles as a check that accumulated deltas reproduce the batch answer.
Dedicated tier-1 cases run the same adapter on the parallel engine and
with a fault-injected compaction.

The persisted-crash row streams each case through a crash-consistent
on-disk session (WAL + checksummed snapshots) with injected crashes — a
torn WAL append mid-stream and a death between snapshot write and
publish — re-opening from disk after each one; recovery must reproduce
the oracle's pair set byte-for-byte.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec
from repro.baselines import (
    grid_join,
    grid_self_join,
    rtree_join,
    rtree_self_join,
    sort_merge_join,
    sort_merge_self_join,
)
from repro.core import epsilon_kdb_join, epsilon_kdb_self_join
from repro.core.parallel import ParallelJoinExecutor
from repro.datasets import gaussian_clusters


def _parallel_engine(use_processes: bool, n_workers: int = 3):
    def self_join(points, spec):
        executor = ParallelJoinExecutor(
            spec,
            n_workers=n_workers,
            serial_threshold=0,
            use_processes=use_processes,
        )
        return executor.self_join(points)

    def two_set(points_r, points_s, spec):
        executor = ParallelJoinExecutor(
            spec,
            n_workers=n_workers,
            serial_threshold=0,
            use_processes=use_processes,
        )
        return executor.join(points_r, points_s)

    return self_join, two_set


_PARALLEL_SELF, _PARALLEL_TWO_SET = _parallel_engine(use_processes=False)
_POOLED_SELF, _POOLED_TWO_SET = _parallel_engine(use_processes=True)


def _pointer_build_engine():
    """The serial engine forced onto the pointer build.

    The default spec resolves ``build="auto"`` to the flat build, so the
    matrix pits the two builds against each other (and the oracle) on
    every case.
    """

    def self_join(points, spec):
        return epsilon_kdb_self_join(points, replace(spec, build="pointer"))

    def two_set(points_r, points_s, spec):
        return epsilon_kdb_join(points_r, points_s, replace(spec, build="pointer"))

    return self_join, two_set


_POINTER_SELF, _POINTER_TWO_SET = _pointer_build_engine()

_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def _incremental_engine(engine: str = "serial", fault: bool = False):
    """Answer a batch case through an incremental update stream.

    Self-join: the points arrive in three chunks with a batch of decoy
    points (within epsilon of real ones) inserted in between and deleted
    at the end, and an explicit mid-stream compaction; the net emitted
    pairs are mapped from session ids back to input positions.  Two-set:
    R is inserted and compacted into the base, then S probes it; the
    cross pairs are the answer.  A tight ``delta_threshold`` forces
    auto-compactions on every matrix case.
    """
    from repro.core import FaultPlan
    from repro.core.incremental import IncrementalJoin, subtract_pairs
    from repro.core.result import JoinResult

    def _make_session(spec):
        kwargs = {}
        if fault:
            kwargs["fault_plan"] = FaultPlan(seed=5).fail_page_read(0)
            kwargs["io_retries"] = 2
        return IncrementalJoin(
            replace(spec, delta_threshold=48),
            engine=engine,
            use_processes=False,
            n_workers=3,
            **kwargs,
        )

    def self_join(points, spec):
        points = np.asarray(points, dtype=np.float64)
        session = _make_session(spec)
        added, retracted = [], []

        def record(delta):
            if len(delta.added):
                added.append(delta.added)
            if len(delta.retracted):
                retracted.append(delta.retracted)
            return delta.ids

        chunks = np.array_split(points, 3)
        real_ids = [record(session.insert(chunks[0]))]
        decoys = points[: min(8, len(points))].copy()
        decoys[:, 0] += spec.epsilon / 4.0  # within epsilon in any Lp
        decoy_ids = record(session.insert(decoys))
        real_ids.append(record(session.insert(chunks[1])))
        session.compact()
        real_ids.append(record(session.insert(chunks[2])))
        if len(decoy_ids):
            record(session.delete(decoy_ids))
        net = subtract_pairs(
            np.concatenate(added) if added else _EMPTY_PAIRS,
            np.concatenate(retracted) if retracted else _EMPTY_PAIRS,
        )
        ids = np.concatenate(real_ids)
        inverse = np.full(session._next_id, -1, dtype=np.int64)
        inverse[ids] = np.arange(len(points), dtype=np.int64)
        pairs = inverse[net]
        assert (pairs >= 0).all(), "a decoy survived retraction"
        pairs = np.sort(pairs, axis=1)
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        return JoinResult(stats=session.stats, pairs=pairs)

    def two_set(points_r, points_s, spec):
        points_r = np.asarray(points_r, dtype=np.float64)
        points_s = np.asarray(points_s, dtype=np.float64)
        session = _make_session(spec)
        added = []
        for batch in (points_r, points_s):
            delta = session.insert(batch)
            if len(delta.added):
                added.append(delta.added)
            if batch is points_r:
                session.compact()
        all_pairs = np.concatenate(added) if added else _EMPTY_PAIRS
        n_r = len(points_r)
        cross = all_pairs[(all_pairs[:, 0] < n_r) & (all_pairs[:, 1] >= n_r)]
        pairs = np.column_stack([cross[:, 0], cross[:, 1] - n_r])
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        return JoinResult(stats=session.stats, pairs=pairs)

    return self_join, two_set


_INCREMENTAL_SELF, _INCREMENTAL_TWO_SET = _incremental_engine()
_INCREMENTAL_PARALLEL = _incremental_engine(engine="parallel")
_INCREMENTAL_FAULTY = _incremental_engine(fault=True)


def _persisted_crash_engine():
    """Answer a batch case through a persisted session that crashes.

    Each case streams its points into a crash-consistent on-disk session
    (tmpdir) with two injected crashes: a WAL append torn mid-frame
    during the stream, and a process death between the snapshot
    tmp-write and its atomic rename during a compaction.  After each
    crash the session is re-opened from disk and the stream resumes from
    the recovered update seq.  The surviving pair set must be
    byte-identical to the oracle's — crashes never lose acknowledged
    updates or conjure phantom pairs.
    """
    import os
    import tempfile

    from repro.core import FaultPlan
    from repro.core.incremental import IncrementalJoin
    from repro.core.result import JoinResult
    from repro.errors import SessionCrashError

    def _apply_with_recovery(session, path, plan, steps):
        """Apply seq-consuming steps, re-opening after injected crashes."""
        idx = session.last_update_seq
        while idx < len(steps):
            op, payload = steps[idx]
            try:
                if op == "insert":
                    session.insert(payload)
                else:
                    session.delete(payload)
            except SessionCrashError:
                session = IncrementalJoin.open(path, fault_plan=plan)
                idx = session.last_update_seq
                continue
            if op == "insert" and idx == 1:
                # mid-stream compaction; a publish crash here loses only
                # the in-memory fold, never an acknowledged update
                try:
                    session.compact()
                except SessionCrashError:
                    session = IncrementalJoin.open(path, fault_plan=plan)
            idx += 1
        return session

    def self_join(points, spec):
        points = np.asarray(points, dtype=np.float64)
        chunks = np.array_split(points, 3)
        decoys = points[: min(8, len(points))].copy()
        decoys[:, 0] += spec.epsilon / 4.0
        steps = [
            ("insert", chunks[0]),
            ("insert", decoys),
            ("insert", chunks[1]),
            ("insert", chunks[2]),
        ]
        # Ids are assigned contiguously per acknowledged batch, and the
        # recovery loop applies each step exactly once, so the id ranges
        # are known analytically — crash or no crash.
        offsets = np.cumsum([0] + [len(payload) for _, payload in steps])
        decoy_ids = np.arange(offsets[1], offsets[2], dtype=np.int64)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "session")
            plan = (
                FaultPlan()
                .tear_wal_frame(3)
                .crash_before_snapshot_publish(1)
            )
            session = IncrementalJoin.open(
                path,
                spec=replace(spec, delta_threshold=48),
                fault_plan=plan,
            )
            session = _apply_with_recovery(session, path, plan, steps)
            if len(decoy_ids):
                session.delete(decoy_ids)
            id_pairs = session.current_pairs()
            stats = session.stats
            next_id = session._next_id
            session.close()
        real_ids = np.concatenate(
            [
                np.arange(offsets[0], offsets[1], dtype=np.int64),
                np.arange(offsets[2], offsets[4], dtype=np.int64),
            ]
        )
        inverse = np.full(next_id, -1, dtype=np.int64)
        inverse[real_ids] = np.arange(len(points), dtype=np.int64)
        pairs = inverse[id_pairs]
        assert (pairs >= 0).all(), "a decoy survived retraction"
        pairs = np.sort(pairs, axis=1)
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        return JoinResult(stats=stats, pairs=pairs)

    def two_set(points_r, points_s, spec):
        points_r = np.asarray(points_r, dtype=np.float64)
        points_s = np.asarray(points_s, dtype=np.float64)
        steps = [("insert", points_r), ("insert", points_s)]
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "session")
            plan = FaultPlan().tear_wal_frame(2)
            session = IncrementalJoin.open(
                path,
                spec=replace(spec, delta_threshold=48),
                fault_plan=plan,
            )
            session = _apply_with_recovery(session, path, plan, steps)
            id_pairs = session.current_pairs()
            stats = session.stats
            session.close()
        n_r = len(points_r)
        cross = id_pairs[(id_pairs[:, 0] < n_r) & (id_pairs[:, 1] >= n_r)]
        pairs = np.column_stack([cross[:, 0], cross[:, 1] - n_r])
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        return JoinResult(stats=stats, pairs=pairs)

    return self_join, two_set


_PERSISTED_CRASH_SELF, _PERSISTED_CRASH_TWO_SET = _persisted_crash_engine()

#: engine name -> (self_join(points, spec), join(r, s, spec)).
ENGINES = {
    "epsilon-kdb": (epsilon_kdb_self_join, epsilon_kdb_join),
    "epsilon-kdb-pointer": (_POINTER_SELF, _POINTER_TWO_SET),
    "epsilon-kdb-parallel": (_PARALLEL_SELF, _PARALLEL_TWO_SET),
    "epsilon-kdb-incremental": (_INCREMENTAL_SELF, _INCREMENTAL_TWO_SET),
    "epsilon-kdb-persisted-crash": (
        _PERSISTED_CRASH_SELF,
        _PERSISTED_CRASH_TWO_SET,
    ),
    "grid": (grid_self_join, grid_join),
    "sort-merge": (sort_merge_self_join, sort_merge_join),
    "rtree": (rtree_self_join, rtree_join),
}


def generate(distribution: str, n: int, d: int, seed: int) -> np.ndarray:
    """One workload draw; ``quantized`` forces ties and boundary hits."""
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        return rng.random((n, d))
    if distribution == "clusters":
        return gaussian_clusters(n, d, clusters=5, sigma=0.06, seed=seed)
    if distribution == "quantized":
        return rng.integers(0, 9, size=(n, d)).astype(np.float64) / 8.0
    raise ValueError(distribution)


def check_case(n, d, eps, metric, distribution, mode, seed, engines=ENGINES):
    spec = JoinSpec(epsilon=eps, metric=metric)
    if mode == "self":
        points = generate(distribution, n, d, seed)
        expected = oracle_self_pairs(points, spec)
        for name, (self_join, _) in engines.items():
            assert_same_pairs(
                self_join(points, spec).pairs,
                expected,
                f"{name} self n={n} d={d} eps={eps} {metric} "
                f"{distribution} seed={seed}",
            )
    else:
        points_r = generate(distribution, n, d, seed)
        points_s = generate(distribution, max(1, n * 3 // 4), d, seed + 1)
        expected = oracle_two_set_pairs(points_r, points_s, spec)
        for name, (_, two_set) in engines.items():
            assert_same_pairs(
                two_set(points_r, points_s, spec).pairs,
                expected,
                f"{name} two-set n={n} d={d} eps={eps} {metric} "
                f"{distribution} seed={seed}",
            )


#: (n, d, eps, metric, distribution, mode, seed) — the tier-1 matrix.
TIER1_MATRIX = [
    (120, 2, 0.25, "l2", "uniform", "self", 0),
    (200, 4, 0.4, "l1", "clusters", "self", 1),
    (150, 3, 0.25, "linf", "quantized", "self", 2),
    (250, 6, 0.6, "l2", "uniform", "self", 3),
    (90, 5, 0.5, "l1", "quantized", "two-set", 4),
    (160, 3, 0.3, "l2", "clusters", "two-set", 5),
    (130, 2, 0.2, "linf", "uniform", "two-set", 6),
    (60, 8, 0.9, "l2", "quantized", "two-set", 7),
]


@pytest.mark.parametrize(
    "n,d,eps,metric,distribution,mode,seed",
    TIER1_MATRIX,
    ids=[f"{m[5]}-{m[4]}-{m[3]}-n{m[0]}d{m[1]}" for m in TIER1_MATRIX],
)
def test_all_engines_agree(n, d, eps, metric, distribution, mode, seed):
    check_case(n, d, eps, metric, distribution, mode, seed)


def test_pooled_executor_agrees_on_one_tier1_case():
    """One real process-pool run in tier-1; the rest exercise it in-process."""
    engines = {"epsilon-kdb-parallel-pooled": (_POOLED_SELF, _POOLED_TWO_SET)}
    check_case(400, 4, 0.3, "l2", "clusters", "self", 11, engines=engines)


def test_incremental_parallel_engine_agrees():
    """The incremental session probing its base through the stripe
    executor must match the oracle on self and two-set cases."""
    engines = {"epsilon-kdb-incremental-parallel": _INCREMENTAL_PARALLEL}
    check_case(200, 4, 0.4, "l1", "clusters", "self", 1, engines=engines)
    check_case(160, 3, 0.3, "l2", "clusters", "two-set", 5, engines=engines)


def test_incremental_faulty_compaction_agrees_and_retries():
    """Injected compaction faults are retried transparently: the stream
    stays byte-exact and the resilience counters record the injections."""
    engines = {"epsilon-kdb-incremental-faulty": _INCREMENTAL_FAULTY}
    check_case(150, 3, 0.25, "linf", "quantized", "self", 2, engines=engines)
    self_join, _ = _INCREMENTAL_FAULTY
    result = self_join(generate("uniform", 150, 3, 9), JoinSpec(epsilon=0.3))
    assert result.stats.faults_injected >= 1
    assert result.stats.storage_retries >= 1
    assert result.stats.compactions >= 1


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
@pytest.mark.parametrize("distribution", ["uniform", "clusters", "quantized"])
@pytest.mark.parametrize("mode", ["self", "two-set"])
def test_extended_matrix(seed, metric, distribution, mode):
    rng = np.random.default_rng(1000 + seed)
    n = int(rng.integers(50, 700))
    d = int(rng.integers(2, 10))
    eps = float(rng.choice([0.1, 0.25, 0.4, 0.75, 1.25]))
    check_case(n, d, eps, metric, distribution, mode, seed)


@pytest.mark.slow
@pytest.mark.parametrize("mode", ["self", "two-set"])
def test_extended_pooled_executor(mode):
    engines = {"epsilon-kdb-parallel-pooled": (_POOLED_SELF, _POOLED_TWO_SET)}
    check_case(1500, 6, 0.35, "l2", "uniform", mode, 21, engines=engines)


# ----------------------------------------------------------------------
# Filter-cascade kernels: cascade on must be byte-identical to cascade off
# for every metric, on every engine that carries the kernels.
# ----------------------------------------------------------------------
CASCADE_METRICS = ["l1", "l2", "linf", 1.5]


def _fault_parallel_engine():
    from repro.core import FaultPlan

    def self_join(points, spec):
        executor = ParallelJoinExecutor(
            spec,
            n_workers=3,
            serial_threshold=0,
            use_processes=False,
            fault_plan=FaultPlan(seed=5).crash_task(0),
        )
        return executor.self_join(points)

    def two_set(points_r, points_s, spec):
        executor = ParallelJoinExecutor(
            spec,
            n_workers=3,
            serial_threshold=0,
            use_processes=False,
            fault_plan=FaultPlan(seed=5).crash_task(0),
        )
        return executor.join(points_r, points_s)

    return self_join, two_set


_FAULT_SELF, _FAULT_TWO_SET = _fault_parallel_engine()

#: Engines that route leaf distance checks through the cascade kernels.
CASCADE_ENGINES = {
    "epsilon-kdb": (epsilon_kdb_self_join, epsilon_kdb_join),
    "epsilon-kdb-parallel": (_PARALLEL_SELF, _PARALLEL_TWO_SET),
    "epsilon-kdb-parallel-faulty": (_FAULT_SELF, _FAULT_TWO_SET),
    "sort-merge": (sort_merge_self_join, sort_merge_join),
}


def _metric_id(metric):
    return metric if isinstance(metric, str) else f"p{metric}"


@pytest.mark.parametrize("mode", ["self", "two-set"])
@pytest.mark.parametrize("metric", CASCADE_METRICS, ids=_metric_id)
def test_cascade_identical_to_monolithic(metric, mode):
    """cascade=auto (engaged: d >= 8) vs cascade=off, all engines."""
    n, d, seed = 220, 12, 31
    eps = 0.9 if metric == "l1" else 0.45
    points_r = generate("clusters", n, d, seed)
    points_s = generate("clusters", n * 3 // 4, d, seed + 1)
    spec_off = JoinSpec(epsilon=eps, metric=metric, cascade="off")
    spec_auto = JoinSpec(epsilon=eps, metric=metric, cascade="auto")
    assert spec_auto.cascade_enabled(d)
    for name, (self_join, two_set) in CASCADE_ENGINES.items():
        if mode == "self":
            baseline = self_join(points_r, spec_off)
            cascaded = self_join(points_r, spec_auto)
        else:
            baseline = two_set(points_r, points_s, spec_off)
            cascaded = two_set(points_r, points_s, spec_auto)
        assert_same_pairs(
            cascaded.pairs,
            baseline.pairs,
            f"{name} {mode} cascade vs monolithic {metric}",
        )
        assert baseline.stats.cascade_candidates == 0, name
        stats = cascaded.stats
        assert stats.cascade_candidates > 0, name
        survivors = stats.cascade_survivors
        assert survivors, name
        assert all(
            survivors[i] >= survivors[i + 1] for i in range(len(survivors) - 1)
        ), (name, survivors)
        assert stats.cascade_candidates >= survivors[0], name


@pytest.mark.parametrize("metric", CASCADE_METRICS, ids=_metric_id)
def test_cascade_forced_on_low_dims_matches_oracle(metric):
    """cascade=on engages below the auto threshold; still exact."""
    points = generate("quantized", 150, 4, 17)
    spec_on = JoinSpec(epsilon=0.4, metric=metric, cascade="on", filter_dims=2)
    assert spec_on.cascade_enabled(4)
    expected = oracle_self_pairs(points, JoinSpec(epsilon=0.4, metric=metric))
    result = epsilon_kdb_self_join(points, spec_on)
    assert_same_pairs(result.pairs, expected, f"cascade=on {metric} d=4")
    assert result.stats.cascade_candidates > 0


def test_cascade_pooled_executor_agrees():
    """One real process-pool run with the shared-memory column store."""
    points = generate("clusters", 500, 10, 41)
    spec_off = JoinSpec(epsilon=0.5, cascade="off")
    spec_auto = JoinSpec(epsilon=0.5, cascade="auto")
    baseline = epsilon_kdb_self_join(points, spec_off)
    pooled = _POOLED_SELF(points, spec_auto)
    assert_same_pairs(pooled.pairs, baseline.pairs, "pooled cascade self")
    assert pooled.stats.cascade_candidates > 0


# ----------------------------------------------------------------------
# Kernel backends: every engine must emit byte-identical pairs whether
# the leaf chunks run through the numpy or the numba backend.  Without
# numba installed an explicit kernel_backend="numba" exercises the
# documented fallback path, which must be just as exact — so the test
# is meaningful on both legs of the CI backend matrix.
# ----------------------------------------------------------------------
BACKEND_ENGINES = dict(
    CASCADE_ENGINES,
    **{
        "epsilon-kdb-pointer": (_POINTER_SELF, _POINTER_TWO_SET),
        "epsilon-kdb-incremental": (_INCREMENTAL_SELF, _INCREMENTAL_TWO_SET),
    },
)


@pytest.mark.parametrize("mode", ["self", "two-set"])
@pytest.mark.parametrize("metric", CASCADE_METRICS, ids=_metric_id)
def test_backends_identical_across_engines(metric, mode):
    """kernel_backend="numpy" vs "numba": same pairs, same survivor funnel."""
    from repro.core import numba_available

    n, d, seed = 220, 12, 31
    eps = 0.9 if metric == "l1" else 0.45
    points_r = generate("clusters", n, d, seed)
    points_s = generate("clusters", n * 3 // 4, d, seed + 1)
    spec_numpy = JoinSpec(epsilon=eps, metric=metric, kernel_backend="numpy")
    spec_numba = replace(spec_numpy, kernel_backend="numba")
    for name, (self_join, two_set) in BACKEND_ENGINES.items():
        if mode == "self":
            base = self_join(points_r, spec_numpy)
            other = self_join(points_r, spec_numba)
        else:
            base = two_set(points_r, points_s, spec_numpy)
            other = two_set(points_r, points_s, spec_numba)
        assert_same_pairs(
            other.pairs,
            base.pairs,
            f"{name} {mode} numpy-vs-numba {metric}",
        )
        assert (
            base.stats.cascade_survivors == other.stats.cascade_survivors
        ), (name, base.stats.cascade_survivors, other.stats.cascade_survivors)
    # The plain engine reports which backend actually ran.
    direct = epsilon_kdb_self_join(points_r, spec_numpy)
    assert direct.stats.kernel_backend == "numpy"
    routed = epsilon_kdb_self_join(points_r, spec_numba)
    expected = "numba" if numba_available() else "numpy"
    assert routed.stats.kernel_backend == expected


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("metric", CASCADE_METRICS, ids=_metric_id)
@pytest.mark.parametrize("distribution", ["uniform", "clusters", "quantized"])
@pytest.mark.parametrize("mode", ["self", "two-set"])
def test_cascade_extended_matrix(seed, metric, distribution, mode):
    rng = np.random.default_rng(3000 + seed)
    n = int(rng.integers(100, 500))
    d = int(rng.integers(8, 24))
    eps = float(rng.choice([0.4, 0.8, 1.4]))
    points_r = generate(distribution, n, d, seed)
    points_s = generate(distribution, max(1, n * 2 // 3), d, seed + 1)
    spec_off = JoinSpec(epsilon=eps, metric=metric, cascade="off")
    spec_auto = JoinSpec(epsilon=eps, metric=metric, cascade="auto")
    for name, (self_join, two_set) in CASCADE_ENGINES.items():
        if mode == "self":
            baseline = self_join(points_r, spec_off)
            cascaded = self_join(points_r, spec_auto)
        else:
            baseline = two_set(points_r, points_s, spec_off)
            cascaded = two_set(points_r, points_s, spec_auto)
        assert_same_pairs(
            cascaded.pairs,
            baseline.pairs,
            f"{name} {mode} cascade {metric} {distribution} seed={seed}",
        )
