"""Cost-based execution planner: profiles, decisions, equivalence, views.

Four concerns:

* :class:`CostProfile` persistence — save/load round-trips, host
  fingerprint gating, version gating, cache reuse by ``calibrate``.
* the decision matrix — synthetic profiles with exaggerated constants
  force each strategy to win, so every planner branch is exercised
  without depending on this machine's real timings.
* engine equivalence — every strategy ``similarity_join`` can plan
  emits pairs byte-identical to the serial oracle, self and two-set.
* :class:`SnapshotView` — the zero-materialization query path answers
  range queries identically to a fully recovered session, refuses
  stale snapshots, and is what a persisted serve attach yields until
  the first mutation promotes it.
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro import JoinSpec, plan_execution, similarity_join
from repro.cli import main
from repro.core.incremental import IncrementalJoin
from repro.errors import (
    ConfigError,
    InvalidParameterError,
    StaleSnapshotError,
    StorageError,
)
from repro.datasets import gaussian_clusters, uniform_points
from repro.obs import Tracer, trace
from repro.planner import (
    ALL_STRATEGIES,
    CostProfile,
    calibrate_and_save,
    load_profile,
    save_profile,
    set_active_profile,
)
from repro.planner.profile import host_fingerprint, stamp
from repro.serve.sessions import SessionManager
from repro.storage import SnapshotView


@pytest.fixture(autouse=True)
def _default_profile(tmp_path, monkeypatch):
    """Pin the planner to the built-in defaults for every test here.

    A developer machine may carry a calibrated profile; tests must not
    see it.  The env override also keeps ``load_profile()`` (lazy
    reload after the test) away from the real cache file.
    """
    monkeypatch.setenv(
        "REPRO_COST_PROFILE", str(tmp_path / "no-such-profile.json")
    )
    set_active_profile(CostProfile())
    yield
    set_active_profile(None)


# ---------------------------------------------------------------------------
# profile persistence
# ---------------------------------------------------------------------------
class TestCostProfile:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "profile.json")
        profile = stamp(CostProfile(node_visit_seconds=3.5e-6, tile_rows=4096))
        save_profile(profile, path)
        loaded = load_profile(path)
        assert loaded == profile
        assert loaded.source == "calibrated"
        assert loaded.tile_rows == 4096

    def test_missing_file_yields_defaults(self, tmp_path):
        loaded = load_profile(str(tmp_path / "absent.json"))
        assert loaded == CostProfile()

    def test_garbage_file_yields_defaults(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_profile(str(path)) == CostProfile()

    def test_host_mismatch_yields_defaults(self, tmp_path):
        path = str(tmp_path / "profile.json")
        profile = stamp(CostProfile(candidate_check_seconds=9.9e-9))
        profile.host = "feedfacedeadbeef"  # measured "elsewhere"
        save_profile(profile, path)
        assert load_profile(path) == CostProfile()

    def test_version_mismatch_yields_defaults(self, tmp_path):
        path = tmp_path / "profile.json"
        data = stamp(CostProfile()).as_dict()
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert load_profile(str(path)) == CostProfile()

    def test_validation_rejects_nonpositive_constants(self):
        with pytest.raises(InvalidParameterError):
            CostProfile(candidate_check_seconds=0.0)
        with pytest.raises(InvalidParameterError):
            CostProfile(node_visit_seconds=float("nan"))
        with pytest.raises(InvalidParameterError):
            CostProfile(tile_rows=0)

    def test_calibrate_reuses_cached_profile(self, tmp_path):
        # A valid profile for this host short-circuits the (slow)
        # measurement; `--force` is exercised by the CI smoke job.
        path = str(tmp_path / "cached.json")
        save_profile(stamp(CostProfile()), path)
        profile, used_path, ran = calibrate_and_save(path=path)
        assert not ran
        assert used_path == path
        assert profile.host == host_fingerprint()


# ---------------------------------------------------------------------------
# decision matrix
# ---------------------------------------------------------------------------
def synthetic(**overrides):
    base = dict(
        candidate_check_seconds=1.0e-9,
        node_visit_seconds=1.0e-6,
        page_io_seconds=1.0e-5,
        worker_dispatch_seconds=1.0e-3,
        pool_startup_seconds=0.5,
        build_point_seconds=5.0e-7,
        pointer_build_factor=18.0,
        sort_point_seconds=1.5e-8,
        sort_merge_overhead_factor=40.0,
        snapshot_byte_seconds=2.0e-10,
        source="synthetic",
    )
    base.update(overrides)
    return CostProfile(**base)


class TestDecisionMatrix:
    """Each strategy wins under constants that favor it."""

    SPEC = JoinSpec(epsilon=0.1)

    def plan(self, profile, **kwargs):
        kwargs.setdefault("n", 50_000)
        kwargs.setdefault("dims", 12)
        return plan_execution(
            self.SPEC, kwargs.pop("n"), kwargs.pop("dims"),
            profile=profile, **kwargs
        )

    def test_serial_wins_by_default(self):
        plan = self.plan(synthetic(), n=4000, dims=10)
        assert plan.chosen == "serial"

    def test_pointer_wins_when_pointer_build_is_cheaper(self):
        # Physically the pointer build is slower; a sub-1 factor is the
        # synthetic lever that proves the planner ranks by the numbers.
        plan = self.plan(synthetic(pointer_build_factor=0.01))
        assert plan.chosen == "pointer"

    def test_parallel_wins_when_kernel_dominates(self):
        plan = self.plan(
            synthetic(
                candidate_check_seconds=1.0e-4,
                pool_startup_seconds=1.0e-9,
                worker_dispatch_seconds=1.0e-9,
            ),
            n_workers=8,
        )
        assert plan.chosen == "parallel"

    def test_external_is_sole_choice_beyond_memory_budget(self):
        plan = self.plan(synthetic(), memory_budget_points=10_000)
        assert plan.chosen == "external"
        for cost in plan.costs:
            assert cost.feasible == (cost.strategy == "external")

    def test_sort_merge_wins_when_its_sweep_is_free(self):
        plan = self.plan(
            synthetic(sort_merge_overhead_factor=1.0e-9,
                      sort_point_seconds=1.0e-12)
        )
        assert plan.chosen == "sort-merge"

    def test_delta_probe_wins_for_small_deltas(self):
        plan = self.plan(synthetic(), delta_size=50)
        assert plan.chosen == "delta-probe"

    def test_snapshot_reuse_beats_rebuild(self):
        # Mapping bytes is cheap; rebuilding pays the full build cost.
        plan = self.plan(
            synthetic(build_point_seconds=1.0e-4),
            snapshot_bytes=10_000_000,
            strategies=("serial", "snapshot-reuse"),
        )
        assert plan.chosen == "snapshot-reuse"

    def test_all_strategies_scored_when_enabled(self):
        plan = self.plan(synthetic(), delta_size=10, snapshot_bytes=1000)
        assert tuple(c.strategy for c in plan.costs) == ALL_STRATEGIES

    def test_forced_strategy_pins_choice_but_scores_everything(self):
        plan = self.plan(synthetic(), forced="sort-merge")
        assert plan.chosen == "sort-merge"
        assert plan.forced == "sort-merge"
        assert plan.cost_of("serial").predicted_seconds > 0
        assert not plan.cost_of("serial").chosen

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            self.plan(synthetic(), n=-1)
        with pytest.raises(InvalidParameterError):
            self.plan(synthetic(), dims=0)
        with pytest.raises(InvalidParameterError):
            self.plan(synthetic(), strategies=())
        with pytest.raises(InvalidParameterError):
            self.plan(synthetic(), forced="snapshot-reuse")  # no snapshot
        with pytest.raises(InvalidParameterError):
            # Budget excludes in-memory strategies, restriction excludes
            # the external driver: nothing feasible remains.
            self.plan(
                synthetic(),
                memory_budget_points=100,
                strategies=("serial", "parallel"),
            )

    def test_plan_serialization_and_table(self):
        plan = self.plan(synthetic(), n=1000, dims=8)
        data = plan.as_dict()
        assert data["chosen"] == plan.chosen
        assert {c["strategy"] for c in data["costs"]} >= {"serial", "parallel"}
        rendered = plan.format_table().render()
        assert "serial" in rendered and "<==" in rendered


# ---------------------------------------------------------------------------
# engine equivalence through the facade
# ---------------------------------------------------------------------------
ENGINES = ("serial", "pointer", "parallel", "external", "sort-merge")


class TestEngineEquivalence:
    def test_self_join_engines_byte_identical(self):
        points = gaussian_clusters(700, 8, seed=5)
        oracle = similarity_join(points, epsilon=0.3, engine="serial")
        for engine in ENGINES[1:]:
            pairs = similarity_join(points, epsilon=0.3, engine=engine)
            np.testing.assert_array_equal(pairs, oracle)

    def test_two_set_engines_byte_identical(self):
        a = uniform_points(500, 6, seed=11)
        b = uniform_points(400, 6, seed=12)
        oracle = similarity_join(a, b, epsilon=0.3, engine="serial")
        for engine in ENGINES[1:]:
            pairs = similarity_join(a, b, epsilon=0.3, engine=engine)
            np.testing.assert_array_equal(pairs, oracle)

    def test_auto_plans_and_matches_serial(self):
        points = uniform_points(900, 8, seed=3)
        result = similarity_join(
            points, epsilon=0.2, engine="auto", return_result=True
        )
        serial = similarity_join(points, epsilon=0.2, engine="serial")
        np.testing.assert_array_equal(result.pairs, serial)
        assert result.stats.planned_strategy in ENGINES
        assert result.stats.predicted_cost > 0
        assert result.stats.plan_seconds > 0
        assert result.plan is not None
        assert result.plan.chosen == result.stats.planned_strategy

    def test_forced_engine_recorded_in_stats(self):
        points = uniform_points(300, 6, seed=9)
        result = similarity_join(
            points, epsilon=0.2, engine="sort-merge", return_result=True
        )
        assert result.stats.planned_strategy == "sort-merge"
        assert result.plan.forced == "sort-merge"

    def test_spec_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            JoinSpec(epsilon=0.1, engine="quantum")

    def test_engine_only_plans_epsilon_kdb(self):
        points = uniform_points(100, 4, seed=0)
        with pytest.raises(InvalidParameterError):
            similarity_join(
                points, epsilon=0.2, algorithm="brute-force", engine="parallel"
            )

    def test_workers_conflict_with_forced_serial(self):
        points = uniform_points(100, 4, seed=0)
        with pytest.raises(InvalidParameterError):
            similarity_join(points, epsilon=0.2, engine="serial", n_workers=4)

    def test_plan_span_emitted(self):
        tracer = Tracer()
        points = uniform_points(400, 6, seed=21)
        with trace.activate(tracer):
            similarity_join(points, epsilon=0.2)
        names = [span["name"] for span in tracer.export()]
        assert "plan" in names


# ---------------------------------------------------------------------------
# SnapshotView: the zero-materialization query path
# ---------------------------------------------------------------------------
def _persisted_session(path, n=2500, dims=6, epsilon=0.25, seed=4):
    spec = JoinSpec(epsilon=epsilon)
    points = uniform_points(n, dims, seed=seed)
    with IncrementalJoin.open(str(path), spec=spec) as join:
        join.insert(points)
        join.delete(np.arange(0, 40))
        join.compact()  # publishes a snapshot covering every update
    return points


class TestSnapshotView:
    def test_matches_materialized_session(self, tmp_path):
        path = tmp_path / "sess"
        _persisted_session(path)
        rng = np.random.default_rng(8)
        queries = np.vstack(
            [
                rng.random((6, 6)),          # inside the grid
                rng.random((3, 6)) + 2.0,    # far outside the grid
                rng.random((2, 6)) - 1.5,    # below it
            ]
        )
        view = SnapshotView.open(str(path))
        session = IncrementalJoin.open(str(path))
        try:
            for eps in (None, 0.1, 0.02):
                got = view.batch_range_query(queries, eps=eps)
                want = session.batch_range_query(queries, eps=eps)
                assert len(got) == len(want)
                for g, w in zip(got, want):
                    np.testing.assert_array_equal(g, w)
            np.testing.assert_array_equal(
                view.range_query(queries[0]), session.range_query(queries[0])
            )
            assert view.n_live == session.n_live
            assert view.dims == session.dims
            assert view.last_update_seq == session.last_update_seq
        finally:
            view.close()
            session.close()

    def test_rejects_radius_beyond_session_epsilon(self, tmp_path):
        path = tmp_path / "sess"
        _persisted_session(path, epsilon=0.2)
        view = SnapshotView.open(str(path))
        try:
            with pytest.raises(InvalidParameterError):
                view.range_query(np.zeros(6), eps=0.5)
        finally:
            view.close()

    def test_stale_wal_raises(self, tmp_path):
        path = tmp_path / "sess"
        _persisted_session(path)
        # Updates after the last snapshot live only in the WAL; the
        # read-only view cannot replay them and must say so.
        with IncrementalJoin.open(str(path)) as join:
            join.insert(np.full((3, 6), 0.5))
        with pytest.raises(StaleSnapshotError):
            SnapshotView.open(str(path))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            SnapshotView.open(str(tmp_path / "nothing-here"))

    def test_open_emits_no_build_span(self, tmp_path):
        path = tmp_path / "sess"
        _persisted_session(path)
        tracer = Tracer()
        with trace.activate(tracer):
            view = SnapshotView.open(str(path))
            view.batch_range_query(np.random.default_rng(0).random((4, 6)))
            view.close()
        names = [span["name"] for span in tracer.export()]
        assert "snapshot-view.open" in names
        assert not any("build" in name for name in names)


class TestServeViewAttach:
    def test_persisted_attach_serves_from_view_until_mutation(self, tmp_path):
        path = tmp_path / "sess"
        _persisted_session(path)

        async def scenario():
            manager = SessionManager()
            session = manager.attach("t", path=str(path))
            assert session.is_view
            assert session.persisted
            queries = np.random.default_rng(7).random((5, 6))
            before = session.batch_range_query(queries)
            # First mutation promotes the tenant to a real session.
            await session.materialize()
            assert not session.is_view
            session.insert(np.full((2, 6), 0.25))
            after = session.batch_range_query(queries)
            assert len(before) == len(after)
            for b, a in zip(before, after):
                assert set(b) <= set(a)
            manager.close_all()

        asyncio.run(scenario())

    def test_stale_directory_falls_back_to_recovery(self, tmp_path):
        path = tmp_path / "sess"
        _persisted_session(path)
        with IncrementalJoin.open(str(path)) as join:
            join.insert(np.full((3, 6), 0.5))  # strand updates in the WAL
        manager = SessionManager()
        session = manager.attach("t", path=str(path))
        assert not session.is_view  # recovery replayed the WAL
        assert session.n_live == 2500 - 40 + 3
        manager.close_all()


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
class TestExplainCli:
    def test_join_explain_prints_plan_without_running(self, capsys):
        code = main(
            ["join", "--epsilon", "0.2", "--points", "500", "--dims", "6",
             "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution plan" in out
        assert "chosen:" in out
        assert "joining" not in out  # the join itself never ran

    def test_query_explain_offline(self, tmp_path, capsys):
        path = tmp_path / "sess"
        _persisted_session(path)
        code = main(
            ["query", "--tenant", "t", "--explain", "--path", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot-reuse" in out

    def test_query_without_port_or_explain_fails(self, capsys):
        assert main(["query", "--tenant", "t"]) == 2

    def test_stats_json_contains_plan(self, tmp_path, capsys):
        target = tmp_path / "stats.json"
        code = main(
            ["join", "--epsilon", "0.2", "--points", "400", "--dims", "6",
             "--stats-json", str(target)]
        )
        assert code == 0
        data = json.loads(target.read_text())
        assert data["planned_strategy"] in ENGINES
        assert data["plan"]["chosen"] == data["planned_strategy"]
        assert any(c["chosen"] for c in data["plan"]["costs"])
