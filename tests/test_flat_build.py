"""Tests for the flat vectorized epsilon-kdB build and its TreeCache.

The contract under test: the flat build (radix cell-coding + stable
whole-array sorts + CSR leaf layout) produces the *same leaf partition* as the
pointer build and **byte-identical** join output through every engine —
serial, parallel (in-process and pooled, including under injected
faults), and external-memory.  Plus the cross-epsilon structure reuse of
:class:`~repro.core.flat_build.TreeCache` / :func:`repro.epsilon_sweep`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _oracles import assert_same_pairs, oracle_self_pairs
from repro import JoinSpec, epsilon_sweep, similarity_join
from repro.core.epsilon_kdb import EpsilonKdbTree, Grid
from repro.core.external import external_self_join
from repro.core.flat_build import FlatEpsilonKdbTree, TreeCache
from repro.core.join import epsilon_kdb_join, epsilon_kdb_self_join
from repro.core.parallel import ParallelJoinExecutor
from repro.core.resilience import FaultPlan
from repro.core.result import JoinStats
from repro.errors import InvalidParameterError
from repro.obs import MetricsRegistry


def _spec(build, **kwargs):
    kwargs.setdefault("epsilon", 0.25)
    return JoinSpec(build=build, **kwargs)


def _pair_bytes(result):
    return result.pairs.tobytes()


# ----------------------------------------------------------------------
# leaf partition equivalence
# ----------------------------------------------------------------------
def _pointer_leaf_sets(points, spec):
    tree = EpsilonKdbTree.build(points, spec)
    return sorted(
        (sorted(leaf.indices.tolist()) for leaf in tree.iter_leaves()),
        key=lambda ids: (len(ids), ids),
    )


def _flat_leaf_sets(points, spec):
    tree = FlatEpsilonKdbTree.build(points, spec)
    return sorted(
        (sorted(tree.perm[start:stop].tolist()) for start, stop in tree.leaf_slices()),
        key=lambda ids: (len(ids), ids),
    )


class TestLeafPartition:
    def test_describe_matches_pointer(self, small_clusters):
        spec = JoinSpec(epsilon=0.2, leaf_size=32)
        flat = FlatEpsilonKdbTree.build(small_clusters, spec)
        pointer = EpsilonKdbTree.build(small_clusters, spec)
        assert flat.describe() == pointer.describe()

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=80),
        d=st.integers(min_value=1, max_value=6),
        eps=st.sampled_from([0.0625, 0.125, 0.25, 0.5, 1.0]),
        leaf_size=st.sampled_from([1, 2, 4, 16]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_flat_leaf_partition_equals_pointer(self, n, d, eps, leaf_size, seed):
        # Quantized coordinates so cell-boundary ties occur constantly.
        points = (
            np.random.default_rng(seed).integers(0, 17, size=(n, d)).astype(np.float64)
            / 16.0
        )
        spec = JoinSpec(epsilon=eps, leaf_size=leaf_size)
        assert _flat_leaf_sets(points, spec) == _pointer_leaf_sets(points, spec)

    def test_leaves_partition_the_input(self, small_uniform):
        tree = FlatEpsilonKdbTree.build(small_uniform, JoinSpec(epsilon=0.1))
        rows = np.concatenate(
            [tree.perm[start:stop] for start, stop in tree.leaf_slices()]
        )
        assert sorted(rows.tolist()) == list(range(len(small_uniform)))

    def test_packed_nodes_round_trip(self, small_uniform):
        spec = JoinSpec(epsilon=0.15, leaf_size=64)
        tree = FlatEpsilonKdbTree.build(small_uniform, spec)
        clone = FlatEpsilonKdbTree.from_arrays(
            tree.points_flat,
            tree.perm,
            tree.digits,
            tree.packed_nodes(),
            spec,
            tree.grid,
        )
        assert clone.describe() == tree.describe()
        assert clone.n_nodes == tree.n_nodes
        result_a = epsilon_kdb_self_join(small_uniform, spec, tree=tree)
        result_b = epsilon_kdb_self_join(small_uniform, spec, tree=clone)
        assert _pair_bytes(result_a) == _pair_bytes(result_b)


# ----------------------------------------------------------------------
# byte-identical output across engines
# ----------------------------------------------------------------------
class TestSerialEquivalence:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    def test_self_join_identical(self, metric, small_clusters):
        flat = epsilon_kdb_self_join(small_clusters, _spec("flat", metric=metric))
        pointer = epsilon_kdb_self_join(small_clusters, _spec("pointer", metric=metric))
        assert len(flat.pairs) > 0
        assert _pair_bytes(flat) == _pair_bytes(pointer)

    def test_two_set_join_identical(self, rng):
        r = rng.random((700, 6))
        s = rng.random((800, 6)) * 1.1 - 0.05
        flat = epsilon_kdb_join(r, s, _spec("flat"))
        pointer = epsilon_kdb_join(r, s, _spec("pointer"))
        assert len(flat.pairs) > 0
        assert _pair_bytes(flat) == _pair_bytes(pointer)

    def test_auto_resolves_to_flat(self):
        assert JoinSpec(epsilon=0.1).resolved_build() == "flat"
        assert JoinSpec(epsilon=0.1, build="pointer").resolved_build() == "pointer"

    def test_invalid_build_rejected(self):
        with pytest.raises(InvalidParameterError):
            JoinSpec(epsilon=0.1, build="fancy")

    def test_pruning_off_identical(self, small_uniform):
        flat = epsilon_kdb_self_join(
            small_uniform, _spec("flat", adjacency_pruning=False)
        )
        pointer = epsilon_kdb_self_join(
            small_uniform, _spec("pointer", adjacency_pruning=False)
        )
        assert _pair_bytes(flat) == _pair_bytes(pointer)

    def test_custom_split_order_and_sort_dim(self, small_uniform):
        kwargs = dict(split_order=[3, 1, 0, 2, 7, 6, 5, 4], sort_dim=2)
        flat = epsilon_kdb_self_join(small_uniform, _spec("flat", **kwargs))
        pointer = epsilon_kdb_self_join(small_uniform, _spec("pointer", **kwargs))
        assert _pair_bytes(flat) == _pair_bytes(pointer)

    def test_build_stats_populated(self, small_uniform):
        result = epsilon_kdb_self_join(small_uniform, _spec("flat"))
        assert result.stats.build_nodes > 0
        assert result.stats.build_sort_seconds > 0.0
        assert result.stats.structure_cache_hits == 0
        pointer = epsilon_kdb_self_join(small_uniform, _spec("pointer"))
        assert pointer.stats.build_nodes == 0

    def test_traversal_stats_match_pointer(self, small_clusters):
        flat = epsilon_kdb_self_join(small_clusters, _spec("flat"))
        pointer = epsilon_kdb_self_join(small_clusters, _spec("pointer"))
        assert flat.stats.node_pairs_visited == pointer.stats.node_pairs_visited
        assert flat.stats.leaf_joins == pointer.stats.leaf_joins
        assert (
            flat.stats.distance_computations == pointer.stats.distance_computations
        )

    def test_empty_and_tiny_inputs(self):
        spec = _spec("flat")
        assert epsilon_kdb_self_join(np.empty((0, 3)), spec).count == 0
        assert epsilon_kdb_self_join(np.zeros((1, 3)), spec).count == 0
        two = epsilon_kdb_self_join(np.zeros((2, 3)), spec)
        assert two.count == 1


class TestEngineEquivalence:
    def test_parallel_in_process_identical(self, small_clusters):
        spec = _spec("flat", n_workers=3)
        serial = epsilon_kdb_self_join(small_clusters, _spec("pointer"))
        result = ParallelJoinExecutor(
            spec, use_processes=False, serial_threshold=0
        ).self_join(small_clusters)
        assert _pair_bytes(result) == _pair_bytes(serial)
        assert result.stats.duplicate_pairs_merged == 0
        assert result.stats.build_nodes > 0

    def test_parallel_pooled_identical(self, small_clusters):
        spec = _spec("flat", n_workers=2)
        serial = epsilon_kdb_self_join(small_clusters, _spec("pointer"))
        result = ParallelJoinExecutor(spec, serial_threshold=0).self_join(
            small_clusters
        )
        assert _pair_bytes(result) == _pair_bytes(serial)

    def test_parallel_two_set_identical(self, rng):
        r = rng.random((600, 5))
        s = rng.random((500, 5))
        serial = epsilon_kdb_join(r, s, _spec("pointer"))
        result = ParallelJoinExecutor(
            _spec("flat", n_workers=3), use_processes=False, serial_threshold=0
        ).join(r, s)
        assert _pair_bytes(result) == _pair_bytes(serial)

    def test_parallel_fault_injection_identical(self, small_clusters):
        spec = _spec("flat", n_workers=3)
        serial = epsilon_kdb_self_join(small_clusters, _spec("pointer"))
        plan = FaultPlan(seed=7).crash_task(0).crash_task(2)
        result = ParallelJoinExecutor(
            spec,
            use_processes=False,
            serial_threshold=0,
            retry_backoff=0.0,
            fault_plan=plan,
        ).self_join(small_clusters)
        assert _pair_bytes(result) == _pair_bytes(serial)
        assert result.stats.tasks_retried > 0

    def test_pointer_mode_through_parallel(self, small_clusters):
        spec = _spec("pointer", n_workers=3)
        serial = epsilon_kdb_self_join(small_clusters, _spec("pointer"))
        result = ParallelJoinExecutor(
            spec, use_processes=False, serial_threshold=0
        ).self_join(small_clusters)
        assert _pair_bytes(result) == _pair_bytes(serial)

    def test_external_identical(self, small_clusters):
        serial = epsilon_kdb_self_join(small_clusters, _spec("pointer"))
        flat = external_self_join(small_clusters, _spec("flat"), memory_points=400)
        pointer = external_self_join(
            small_clusters, _spec("pointer"), memory_points=400
        )
        expected = np.unique(serial.pairs, axis=0)
        assert np.array_equal(np.unique(flat.pairs, axis=0), expected)
        assert flat.pairs.tobytes() == pointer.pairs.tobytes()

    def test_similarity_join_kwarg(self, small_uniform):
        flat = similarity_join(small_uniform, epsilon=0.2, build="flat")
        pointer = similarity_join(small_uniform, epsilon=0.2, build="pointer")
        assert np.array_equal(flat, pointer)


# ----------------------------------------------------------------------
# prebuilt trees and the structure cache
# ----------------------------------------------------------------------
class TestTreeReuse:
    def test_prebuilt_flat_tree_reused(self, small_uniform):
        spec = _spec("flat", epsilon=0.2)
        tree = FlatEpsilonKdbTree.build(small_uniform, spec)
        fresh = epsilon_kdb_self_join(small_uniform, spec)
        reused = epsilon_kdb_self_join(small_uniform, spec, tree=tree)
        assert _pair_bytes(fresh) == _pair_bytes(reused)
        # The sort happened when the caller built the tree, not here.
        assert reused.stats.build_sort_seconds == 0.0

    def test_prebuilt_tree_smaller_epsilon_ok(self, small_uniform):
        tree = FlatEpsilonKdbTree.build(small_uniform, _spec("flat", epsilon=0.3))
        narrower = _spec("flat", epsilon=0.2)
        reused = epsilon_kdb_self_join(small_uniform, narrower, tree=tree)
        fresh = epsilon_kdb_self_join(small_uniform, narrower)
        assert _pair_bytes(reused) == _pair_bytes(fresh)

    def test_prebuilt_tree_larger_epsilon_rejected(self, small_uniform):
        tree = FlatEpsilonKdbTree.build(small_uniform, _spec("flat", epsilon=0.1))
        with pytest.raises(InvalidParameterError, match="rebuild the tree"):
            epsilon_kdb_self_join(small_uniform, _spec("flat", epsilon=0.2), tree=tree)

    def test_cache_hit_on_smaller_epsilon(self, small_uniform):
        cache = TreeCache()
        first = epsilon_kdb_self_join(
            small_uniform, _spec("flat", epsilon=0.3), structure_cache=cache
        )
        second = epsilon_kdb_self_join(
            small_uniform, _spec("flat", epsilon=0.2), structure_cache=cache
        )
        assert first.stats.structure_cache_hits == 0
        assert second.stats.structure_cache_hits == 1
        assert second.stats.build_sort_seconds == 0.0
        assert cache.hits == 1 and cache.misses == 1
        fresh = epsilon_kdb_self_join(small_uniform, _spec("flat", epsilon=0.2))
        assert _pair_bytes(second) == _pair_bytes(fresh)

    def test_cache_rebuilds_on_larger_epsilon(self, small_uniform):
        cache = TreeCache()
        epsilon_kdb_self_join(
            small_uniform, _spec("flat", epsilon=0.1), structure_cache=cache
        )
        result = epsilon_kdb_self_join(
            small_uniform, _spec("flat", epsilon=0.3), structure_cache=cache
        )
        assert result.stats.structure_cache_hits == 0
        assert cache.misses == 2
        fresh = epsilon_kdb_self_join(small_uniform, _spec("flat", epsilon=0.3))
        assert _pair_bytes(result) == _pair_bytes(fresh)

    def test_cache_misses_on_different_data(self, rng):
        cache = TreeCache()
        a = rng.random((300, 4))
        b = rng.random((300, 4))
        epsilon_kdb_self_join(a, _spec("flat", epsilon=0.3), structure_cache=cache)
        result = epsilon_kdb_self_join(
            b, _spec("flat", epsilon=0.2), structure_cache=cache
        )
        assert result.stats.structure_cache_hits == 0
        assert len(cache) == 2

    def test_cache_lru_eviction(self, rng):
        cache = TreeCache(max_entries=2)
        sets = [rng.random((100, 3)) for _ in range(3)]
        for points in sets:
            cache.get_or_build(points, JoinSpec(epsilon=0.2))
        assert len(cache) == 2
        # The first set was evicted: requesting it again is a miss.
        _, hit = cache.get_or_build(sets[0], JoinSpec(epsilon=0.2))
        assert not hit

    def test_cache_validates_max_entries(self):
        with pytest.raises(InvalidParameterError):
            TreeCache(max_entries=0)

    def test_cache_lru_hit_refreshes_recency(self, rng):
        """A hit moves the entry to the back of the eviction queue."""
        cache = TreeCache(max_entries=2)
        sets = [rng.random((80, 3)) for _ in range(3)]
        spec = JoinSpec(epsilon=0.2)
        cache.get_or_build(sets[0], spec)
        cache.get_or_build(sets[1], spec)
        _, hit = cache.get_or_build(sets[0], spec)  # refresh the oldest
        assert hit
        cache.get_or_build(sets[2], spec)  # must evict sets[1], not sets[0]
        _, hit_refreshed = cache.get_or_build(sets[0], spec)
        assert hit_refreshed
        _, hit_evicted = cache.get_or_build(sets[1], spec)
        assert not hit_evicted

    def test_cache_keys_separate_spec_knobs(self, rng):
        """Same points under a different metric, leaf size, split order
        or sort dimension must build distinct entries — a collision would
        hand a join a tree partitioned for the wrong parameters."""
        points = rng.random((120, 4))
        cache = TreeCache(max_entries=8)
        variants = [
            JoinSpec(epsilon=0.2),
            JoinSpec(epsilon=0.2, metric="l1"),
            JoinSpec(epsilon=0.2, leaf_size=16),
            JoinSpec(epsilon=0.2, split_order=(3, 2, 1, 0)),
            JoinSpec(epsilon=0.2, sort_dim=0),
        ]
        for spec in variants:
            _, hit = cache.get_or_build(points, spec)
            assert not hit, spec
        assert len(cache) == len(variants)
        assert cache.misses == len(variants)
        # ... and each repeat request finds exactly its own entry.
        for spec in variants:
            _, hit = cache.get_or_build(points, spec)
            assert hit, spec

    def test_cache_key_is_dtype_canonical(self, rng):
        """float32 input is coerced to float64 before fingerprinting, so
        the same values in either dtype share one cache entry."""
        cache = TreeCache()
        wide = rng.random((150, 3)).astype(np.float32)
        spec = JoinSpec(epsilon=0.25)
        cache.get_or_build(wide.astype(np.float64), spec)
        _, hit = cache.get_or_build(wide, spec)
        assert hit
        assert len(cache) == 1

    def test_cache_bounds_change_between_sweeps(self, rng):
        """Appending out-of-box outliers changes the fingerprint: the old
        entry is not reused, the rebuilt grid covers the outliers, and
        both sweeps stay exact."""
        cache = TreeCache()
        core = rng.random((200, 3))
        outliers = rng.random((20, 3)) * 4.0 - 1.5  # escapes [0, 1]^3
        grown = np.vstack([core, outliers])
        for points in (core, grown):
            results, aggregate = epsilon_sweep(
                points, [0.3, 0.2], cache=cache, return_stats=True
            )
            for eps, result in zip([0.3, 0.2], results):
                expected = oracle_self_pairs(points, _spec("flat", epsilon=eps))
                assert_same_pairs(result.pairs, expected, f"sweep eps={eps}")
            assert aggregate.structure_cache_hits == 1  # within-sweep only
        assert cache.misses == 2  # one build per distinct point set
        tree, hit = cache.get_or_build(grown, JoinSpec(epsilon=0.2))
        assert hit
        assert (tree.grid.lo <= grown.min(axis=0)).all()
        assert (tree.grid.hi >= grown.max(axis=0)).all()

    def test_epsilon_sweep_reuses_structure(self, small_uniform):
        cache = TreeCache()
        epsilons = [0.15, 0.3, 0.2]
        results = epsilon_sweep(small_uniform, epsilons, cache=cache)
        hits = [r.stats.structure_cache_hits for r in results]
        assert sum(hits) == 2  # all but the coarsest build hit the cache
        assert hits[1] == 0  # the largest epsilon pays the one build
        for eps, result in zip(epsilons, results):
            fresh = epsilon_kdb_self_join(small_uniform, _spec("flat", epsilon=eps))
            assert _pair_bytes(result) == _pair_bytes(fresh)

    def test_epsilon_sweep_less_build_time_than_solo(self, small_clusters):
        epsilons = [0.1, 0.15, 0.2, 0.25]
        swept = epsilon_sweep(small_clusters, epsilons)
        solo = [
            epsilon_kdb_self_join(small_clusters, _spec("flat", epsilon=eps))
            for eps in epsilons
        ]
        assert sum(r.stats.build_sort_seconds for r in swept) < sum(
            r.stats.build_sort_seconds for r in solo
        )


# ----------------------------------------------------------------------
# stats plumbing (CLI renderer + metrics ingestion)
# ----------------------------------------------------------------------
class TestStatsPlumbing:
    def test_as_dict_round_trips_build_counters(self):
        stats = JoinStats(
            build_nodes=42, build_sort_seconds=0.5, structure_cache_hits=3
        )
        data = stats.as_dict()
        assert data["build_nodes"] == 42
        assert data["build_sort_seconds"] == 0.5
        assert data["structure_cache_hits"] == 3

    def test_merge_accumulates_build_counters(self):
        a = JoinStats(build_nodes=10, build_sort_seconds=0.25, structure_cache_hits=1)
        b = JoinStats(build_nodes=5, build_sort_seconds=0.5, structure_cache_hits=2)
        a.merge(b)
        assert a.build_nodes == 15
        assert a.build_sort_seconds == 0.75
        assert a.structure_cache_hits == 3

    def test_metrics_ingest_build_counters(self):
        registry = MetricsRegistry()
        stats = JoinStats(
            build_nodes=7, build_sort_seconds=0.125, structure_cache_hits=2
        )
        registry.ingest_stats(stats)
        assert registry.counter("join.build_nodes").value == 7
        assert registry.gauge("join.build_sort_seconds").value == 0.125
        assert registry.counter("join.structure_cache_hits").value == 2

    def test_cli_renders_build_counters(self, capsys):
        from repro.cli import _print_stats

        _print_stats(
            JoinStats(
                pairs_emitted=1,
                build_nodes=1500,
                build_sort_seconds=0.25,
                structure_cache_hits=2,
            )
        )
        out = capsys.readouterr().out
        assert "tree nodes built:" in out and "1.5k" in out
        assert "build sort time:" in out and "250" in out
        assert "structure cache hits:" in out
