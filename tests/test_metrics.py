"""Unit tests for the L_p distance kernels."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics import (
    L1,
    L2,
    LINF,
    LpMetric,
    WeightedLpMetric,
    get_metric,
    lp_metric,
)

try:
    from scipy.spatial import distance as sp_distance

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is installed in CI
    HAVE_SCIPY = False


class TestPairDistances:
    def test_l2_matches_hand_computation(self):
        assert L2.pair([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_l1_matches_hand_computation(self):
        assert L1.pair([1.0, 2.0], [4.0, 0.0]) == pytest.approx(5.0)

    def test_linf_matches_hand_computation(self):
        assert LINF.pair([1.0, 2.0], [4.0, 0.0]) == pytest.approx(3.0)

    def test_lp_general_order(self):
        metric = lp_metric(3)
        expected = (abs(1.0 - 4.0) ** 3 + abs(2.0 - 0.0) ** 3) ** (1 / 3)
        assert metric.pair([1.0, 2.0], [4.0, 0.0]) == pytest.approx(expected)

    def test_zero_distance_for_identical_points(self):
        point = np.array([0.3, 0.7, 0.1])
        for metric in (L1, L2, LINF, lp_metric(4)):
            assert metric.pair(point, point) == pytest.approx(0.0)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")
    def test_agrees_with_scipy_on_random_points(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(50, 7))
        ys = rng.normal(size=(50, 7))
        for x, y in zip(xs, ys):
            assert L2.pair(x, y) == pytest.approx(sp_distance.euclidean(x, y))
            assert L1.pair(x, y) == pytest.approx(sp_distance.cityblock(x, y))
            assert LINF.pair(x, y) == pytest.approx(
                sp_distance.chebyshev(x, y)
            )


class TestWithinPredicates:
    def test_within_pair_is_inclusive(self):
        assert L2.within_pair([0.0], [1.0], 1.0)
        assert not L2.within_pair([0.0], [1.0], 0.999)

    def test_within_rows_matches_pairwise(self):
        rng = np.random.default_rng(1)
        points = rng.random((40, 5))
        rows_a = rng.integers(0, 40, size=200)
        rows_b = rng.integers(0, 40, size=200)
        for metric in (L1, L2, LINF, lp_metric(2.5)):
            mask = metric.within_rows(points, points, rows_a, rows_b, 0.6)
            expected = np.array(
                [
                    metric.pair(points[a], points[b]) <= 0.6
                    for a, b in zip(rows_a, rows_b)
                ]
            )
            assert (mask == expected).all()

    def test_within_rows_rejects_mismatched_lengths(self):
        points = np.zeros((4, 2))
        with pytest.raises(InvalidParameterError):
            L2.within_rows(points, points, np.arange(3), np.arange(2), 0.5)

    def test_within_rows_chunking_consistency(self, monkeypatch):
        import repro.metrics.lp as lp_module

        rng = np.random.default_rng(2)
        points = rng.random((30, 4))
        rows_a = rng.integers(0, 30, size=500)
        rows_b = rng.integers(0, 30, size=500)
        full = L2.within_rows(points, points, rows_a, rows_b, 0.4)
        monkeypatch.setattr(lp_module, "_ROW_CHUNK", 17)
        chunked = L2.within_rows(points, points, rows_a, rows_b, 0.4)
        assert (full == chunked).all()

    def test_within_block_matches_within_rows(self):
        rng = np.random.default_rng(3)
        block_a = rng.random((12, 6))
        block_b = rng.random((9, 6))
        mask = L2.within_block(block_a, block_b, 0.7)
        for i in range(12):
            for j in range(9):
                assert mask[i, j] == L2.within_pair(block_a[i], block_b[j], 0.7)

    def test_within_gap_box_semantics(self):
        # gap vector (0.3, 0.4): L2 mindist 0.5, L1 0.7, Linf 0.4
        gaps = np.array([0.3, 0.4])
        assert L2.within_gap(gaps, 0.5)
        assert not L2.within_gap(gaps, 0.49)
        assert L1.within_gap(gaps, 0.7)
        assert not L1.within_gap(gaps, 0.69)
        assert LINF.within_gap(gaps, 0.4)
        assert not LINF.within_gap(gaps, 0.39)


class TestDtypePropagation:
    """float32 inputs must stay float32 through the kernels: upcasting
    to float64 would double the peak memory of every gathered block."""

    METRICS = (
        L1,
        L2,
        LINF,
        lp_metric(2.5),
        WeightedLpMetric(2, [0.5, 2.0, 1.0, 0.25]),
        WeightedLpMetric(np.inf, [0.5, 2.0, 1.0, 0.25]),
    )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_reduce_preserves_dtype(self, dtype):
        diff = np.abs(np.random.default_rng(5).normal(size=(20, 4))).astype(dtype)
        for metric in self.METRICS:
            assert metric._reduce_abs_diff(diff).dtype == dtype, metric.name

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_accumulate_preserves_dtype(self, dtype):
        rng = np.random.default_rng(6)
        diff = np.abs(rng.normal(size=(20, 2))).astype(dtype)
        acc = np.zeros(20, dtype=dtype)
        for metric in self.METRICS:
            out = metric.accumulate_abs_diff(acc, diff, (1, 3))
            assert out.dtype == dtype, metric.name

    def test_float32_rows_match_float64(self):
        rng = np.random.default_rng(7)
        points64 = rng.random((50, 4))
        points32 = points64.astype(np.float32)
        rows_a = rng.integers(0, 50, size=300)
        rows_b = rng.integers(0, 50, size=300)
        for metric in self.METRICS:
            # Compare away from the boundary so rounding the coordinates
            # to float32 cannot legitimately flip a verdict.
            dist = metric.distance_rows(points64, points64, rows_a, rows_b)
            eps = float(np.median(dist))
            safe = np.abs(dist - eps) > 1e-3
            m64 = metric.within_rows(points64, points64, rows_a, rows_b, eps)
            m32 = metric.within_rows(points32, points32, rows_a, rows_b, eps)
            assert (m64[safe] == m32[safe]).all(), metric.name

    def test_float32_block_matches_float64(self):
        rng = np.random.default_rng(8)
        block_a = rng.random((15, 4))
        block_b = rng.random((12, 4))
        for metric in self.METRICS:
            m64 = metric.within_block(block_a, block_b, 0.8)
            m32 = metric.within_block(
                block_a.astype(np.float32), block_b.astype(np.float32), 0.8
            )
            assert (m64 == m32).all(), metric.name

    def test_weight_cache_returns_same_array(self):
        metric = WeightedLpMetric(2, [1.0, 2.0])
        first = metric._weights_as(np.dtype(np.float32))
        second = metric._weights_as(np.dtype(np.float32))
        assert first is second
        assert first.dtype == np.float32
        assert metric._weights_as(np.dtype(np.float64)) is metric.weights
        # int inputs keep the float64 weights: the weighted key cannot
        # live in an integer dtype anyway.
        assert metric._weights_as(np.dtype(np.int64)) is metric.weights


class TestResolution:
    def test_named_lookup(self):
        assert get_metric("euclidean") is L2
        assert get_metric("manhattan") is L1
        assert get_metric("chebyshev") is LINF
        assert get_metric("MAX") is LINF

    def test_numeric_lookup(self):
        assert isinstance(get_metric(2), LpMetric)
        assert get_metric(2).p == 2.0
        assert get_metric(float("inf")) is LINF

    def test_instance_passthrough(self):
        metric = lp_metric(1.5)
        assert get_metric(metric) is metric

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError):
            get_metric("hamming")

    def test_invalid_order_raises(self):
        with pytest.raises(InvalidParameterError):
            LpMetric(0.5)
        with pytest.raises(InvalidParameterError):
            LpMetric(float("nan"))

    def test_uninterpretable_raises(self):
        with pytest.raises(InvalidParameterError):
            get_metric(["l2"])


class TestKeySpace:
    def test_key_unkey_roundtrip(self):
        for metric in (L1, L2, LINF, lp_metric(3)):
            for eps in (0.01, 0.5, 2.0):
                assert metric.unkey(metric.key(eps)) == pytest.approx(eps)

    def test_distance_rows_values(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        dists = L2.distance_rows(points, points, [0, 0], [1, 2])
        assert dists == pytest.approx([5.0, np.sqrt(2.0)])
