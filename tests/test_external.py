"""Tests for the external-memory epsilon-kdB join."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs
from repro import JoinSpec, PairCounter, external_join, external_self_join
from repro.core.external import plan_stripes
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError
from repro.storage import PageStore


class TestPlanStripes:
    def test_respects_capacity(self):
        rng = np.random.default_rng(1)
        histogram = rng.integers(0, 20, size=50)
        stripes = plan_stripes(histogram, capacity=40)
        for s in stripes:
            total = int(histogram[s].sum())
            assert total <= 40 or int((histogram[s] > 0).sum()) == 1

    def test_groups_consecutive_cells(self):
        histogram = np.array([10, 10, 10, 10, 10])
        # Capacity 35 fits two cells (20) plus the reserved band cell
        # (10); the final stripe has no band, so three cells (30) fit.
        stripes = plan_stripes(histogram, capacity=35)
        assert [(s.start, s.stop) for s in stripes] == [(0, 2), (2, 5)]

    def test_reserves_room_for_the_band_cell(self):
        histogram = np.array([10, 10, 10])
        # Cell 0 + cell 1 (20) would leave no room for cell 2's band
        # (10), so the first stripe is a single cell; the trailing
        # stripe has no band and takes both remaining cells.
        stripes = plan_stripes(histogram, capacity=25)
        assert [(s.start, s.stop) for s in stripes] == [(0, 1), (1, 3)]

    def test_stripe_plus_band_cell_fits_capacity(self):
        rng = np.random.default_rng(2)
        histogram = rng.integers(0, 15, size=60)
        capacity = 40
        stripes = plan_stripes(histogram, capacity)
        for k, s in enumerate(stripes):
            band = (
                int(histogram[stripes[k + 1].start])
                if k + 1 < len(stripes)
                else 0
            )
            total = int(histogram[s].sum()) + band
            if total > capacity:
                # only permissible for an oversized lone cell
                assert int((histogram[s] > 0).sum()) == 1

    def test_single_stripe_when_capacity_suffices(self):
        stripes = plan_stripes(np.array([5, 5, 5]), capacity=100)
        assert [(s.start, s.stop) for s in stripes] == [(0, 3)]

    def test_oversized_cell_becomes_own_stripe(self):
        stripes = plan_stripes(np.array([3, 50, 3]), capacity=10)
        assert (1, 2) in [(s.start, s.stop) for s in stripes]

    def test_covers_every_cell_exactly_once(self):
        rng = np.random.default_rng(0)
        histogram = rng.integers(0, 30, size=40)
        stripes = plan_stripes(histogram, capacity=60)
        covered = []
        for s in stripes:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(40))


class TestExternalJoinCorrectness:
    @pytest.mark.parametrize("budget", [200, 500, 2000, 10_000])
    def test_matches_oracle_across_budgets(self, budget, small_clusters):
        spec = JoinSpec(epsilon=0.08, leaf_size=32)
        expected = oracle_self_pairs(small_clusters, spec)
        report = external_self_join(small_clusters, spec, memory_points=budget)
        assert_same_pairs(report.pairs, expected, f"budget={budget}")

    def test_matches_oracle_uniform(self, small_uniform):
        spec = JoinSpec(epsilon=0.3)
        expected = oracle_self_pairs(small_uniform, spec)
        report = external_self_join(small_uniform, spec, memory_points=300)
        assert_same_pairs(report.pairs, expected, "uniform external")

    def test_cross_stripe_pairs_found(self):
        # Two points straddling a stripe boundary must still pair.
        points = np.array([[0.499, 0.5], [0.501, 0.5]] + [[x, 0.0] for x in
                          np.linspace(0, 1, 400)])
        spec = JoinSpec(epsilon=0.01)
        expected = oracle_self_pairs(points, spec)
        report = external_self_join(points, spec, memory_points=50)
        assert report.stripes > 1
        assert_same_pairs(report.pairs, expected, "straddling pair")

    def test_metric_variants(self, small_clusters):
        for metric in ("l1", "linf"):
            spec = JoinSpec(epsilon=0.1, metric=metric)
            expected = oracle_self_pairs(small_clusters, spec)
            report = external_self_join(small_clusters, spec, memory_points=400)
            assert_same_pairs(report.pairs, expected, f"external {metric}")


class TestExternalJoinReporting:
    def test_io_counted_and_plausible(self, small_uniform):
        store = PageStore(page_rows=64)
        spec = JoinSpec(epsilon=0.25)
        report = external_self_join(
            small_uniform, spec, memory_points=300, store=store
        )
        data_pages = -(-len(small_uniform) // 64)
        # At least: domain scan + histogram scan + partition scan + join
        # read-back of every stripe.
        assert report.io.reads >= 4 * data_pages - 4
        assert report.io.writes >= data_pages  # the partition pass
        assert report.stats.pages_read == report.io.reads

    def test_more_memory_fewer_stripes(self, small_uniform):
        spec = JoinSpec(epsilon=0.25)
        tight = external_self_join(small_uniform, spec, memory_points=150)
        loose = external_self_join(small_uniform, spec, memory_points=5000)
        assert tight.stripes > loose.stripes

    def test_budget_respected_flag(self, small_uniform):
        spec = JoinSpec(epsilon=0.25)
        report = external_self_join(small_uniform, spec, memory_points=10_000)
        assert report.budget_respected
        assert report.peak_memory_points <= 10_000

    def test_counter_sink(self, small_clusters):
        spec = JoinSpec(epsilon=0.08)
        expected = oracle_self_pairs(small_clusters, spec)
        counter = PairCounter()
        report = external_self_join(
            small_clusters, spec, memory_points=400, sink=counter
        )
        assert counter.count == len(expected)
        assert report.stats.pairs_emitted == len(expected)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            external_self_join(np.zeros((4, 2)), JoinSpec(epsilon=0.1), 1)

    def test_tiny_inputs(self):
        spec = JoinSpec(epsilon=0.1)
        assert external_self_join(np.empty((0, 2)), spec, 100).stats.pairs_emitted == 0
        assert external_self_join(np.zeros((1, 2)), spec, 100).stats.pairs_emitted == 0


class TestExternalTwoSetJoin:
    def make_pair(self):
        left = gaussian_clusters(900, 6, clusters=5, sigma=0.05, seed=71)
        right = gaussian_clusters(700, 6, clusters=5, sigma=0.05, seed=71) + 0.01
        return left, right

    @pytest.mark.parametrize("budget", [150, 400, 5000])
    def test_matches_oracle_across_budgets(self, budget):
        from _oracles import oracle_two_set_pairs

        left, right = self.make_pair()
        spec = JoinSpec(epsilon=0.1, leaf_size=32)
        expected = oracle_two_set_pairs(left, right, spec)
        assert len(expected) > 0
        report = external_join(left, right, spec, memory_points=budget)
        assert_same_pairs(report.pairs, expected, f"two-set budget={budget}")

    def test_orientation_preserved(self):
        left = np.array([[0.0, 0.0], [0.9, 0.9]])
        right = np.array([[0.05, 0.0]])
        report = external_join(left, right, JoinSpec(epsilon=0.1), memory_points=10)
        assert report.pairs.tolist() == [[0, 0]]

    def test_cross_stripe_pairs_both_directions(self):
        # r below the boundary pairing with s above it, and vice versa.
        filler = np.column_stack(
            [np.linspace(0, 1, 300), np.zeros(300)]
        )
        left = np.vstack([[[0.499, 0.5]], [[0.502, 0.9]], filler])
        right = np.vstack([[[0.501, 0.5]], [[0.498, 0.9]], filler + 2.0])
        spec = JoinSpec(epsilon=0.01)
        from _oracles import oracle_two_set_pairs

        expected = oracle_two_set_pairs(left, right, spec)
        report = external_join(left, right, spec, memory_points=60)
        assert report.stripes > 1
        assert_same_pairs(report.pairs, expected, "cross-stripe two-set")

    def test_empty_sides(self):
        spec = JoinSpec(epsilon=0.1)
        empty = np.empty((0, 3))
        other = np.zeros((4, 3))
        assert external_join(empty, other, spec, 100).stats.pairs_emitted == 0
        assert external_join(other, empty, spec, 100).stats.pairs_emitted == 0

    def test_dim_mismatch(self):
        with pytest.raises(InvalidParameterError):
            external_join(
                np.zeros((2, 2)), np.zeros((2, 3)), JoinSpec(epsilon=0.1), 100
            )

    def test_io_and_report_fields(self):
        left, right = self.make_pair()
        store = PageStore(page_rows=64)
        spec = JoinSpec(epsilon=0.1)
        report = external_join(
            left, right, spec, memory_points=400, store=store
        )
        assert report.io.reads > 0 and report.io.writes > 0
        assert report.stats.pages_read == report.io.reads
        assert report.peak_memory_points > 0
