"""Tests for the top-level similarity_join facade."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import ALGORITHMS, JoinSpec, similarity_join
from repro.core.result import JoinResult
from repro.errors import InvalidParameterError


def test_all_algorithms_registered():
    assert set(ALGORITHMS) == {
        "epsilon-kdb",
        "epsilon-kdb-parallel",
        "rtree",
        "rplus",
        "zorder",
        "sort-merge",
        "grid",
        "brute-force",
    }


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_every_algorithm_self_join(algorithm, small_uniform):
    spec = JoinSpec(epsilon=0.3)
    expected = oracle_self_pairs(small_uniform, spec)
    pairs = similarity_join(small_uniform, epsilon=0.3, algorithm=algorithm)
    assert_same_pairs(pairs, expected, algorithm)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_every_algorithm_two_set_join(algorithm, small_uniform):
    other = np.random.default_rng(0).random((400, 8))
    spec = JoinSpec(epsilon=0.35)
    expected = oracle_two_set_pairs(small_uniform, other, spec)
    pairs = similarity_join(
        small_uniform, other, epsilon=0.35, algorithm=algorithm
    )
    assert_same_pairs(pairs, expected, f"{algorithm} two-set")


def test_metric_parameter_forwarded(small_uniform):
    spec = JoinSpec(epsilon=0.2, metric="linf")
    expected = oracle_self_pairs(small_uniform, spec)
    pairs = similarity_join(small_uniform, epsilon=0.2, metric="linf")
    assert_same_pairs(pairs, expected, "linf facade")


def test_return_result_gives_stats(small_uniform):
    result = similarity_join(
        small_uniform, epsilon=0.3, return_result=True
    )
    assert isinstance(result, JoinResult)
    assert result.stats.pairs_emitted == len(result.pairs)
    assert result.stats.distance_computations > 0


def test_unknown_algorithm_raises(small_uniform):
    with pytest.raises(InvalidParameterError):
        similarity_join(small_uniform, epsilon=0.1, algorithm="quantum")


def test_epsilon_is_keyword_only(small_uniform):
    with pytest.raises(TypeError):
        similarity_join(small_uniform, 0.1)  # type: ignore[misc]


def test_leaf_size_forwarded(small_uniform):
    base = similarity_join(small_uniform, epsilon=0.3)
    tuned = similarity_join(small_uniform, epsilon=0.3, leaf_size=8)
    assert_same_pairs(tuned, base, "leaf_size facade")
