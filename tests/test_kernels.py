"""Unit tests for the filter-cascade distance kernels."""

import numpy as np
import pytest

from repro import JoinSpec
from repro.core.kernels import (
    DEFAULT_BLOCK_DIMS,
    KernelContext,
    KernelPlan,
    KernelSource,
    build_kernel_context,
    plan_cascade,
)
from repro.core.result import JoinStats
from repro.errors import InvalidParameterError
from repro.metrics import L2, WeightedLpMetric, lp_metric

METRICS = ["l1", "l2", "linf", 2.5]


def _random_case(seed, n=300, d=16, pairs=4000):
    rng = np.random.default_rng(seed)
    points = rng.random((n, d))
    rows_a = rng.integers(0, n, size=pairs)
    rows_b = rng.integers(0, n, size=pairs)
    return points, rows_a, rows_b


def _context(spec, points, **kwargs):
    context = build_kernel_context(spec, points, **kwargs)
    assert context is not None
    return context


class TestPlan:
    def test_orders_unsplit_widest_first(self):
        spec = JoinSpec(epsilon=0.1, filter_dims=2)
        spreads = np.array([1.0, 4.0, 2.0, 3.0])
        plan = plan_cascade(spec, spreads, split_dims=[1], sort_dim=0)
        # Unsplit non-sort dims (3, 2) by descending spread, then the
        # split dim 1, then the sort dim last.
        assert plan.order == (3, 2, 1, 0)
        assert plan.n_filters == 2
        assert plan.n_stages == 3

    def test_rejects_single_dimension(self):
        with pytest.raises(InvalidParameterError):
            plan_cascade(JoinSpec(epsilon=0.1), np.array([1.0]))

    def test_auto_filter_count_scales_with_dims(self):
        spec = JoinSpec(epsilon=0.1)
        assert spec.resolved_filter_dims(8) == 1
        assert spec.resolved_filter_dims(16) == 2
        assert spec.resolved_filter_dims(32) == 3
        assert spec.resolved_filter_dims(64) == 3  # capped
        assert spec.resolved_filter_dims(2) == 1

    def test_explicit_filter_dims_clamped_below_d(self):
        spec = JoinSpec(epsilon=0.1, filter_dims=10)
        assert spec.resolved_filter_dims(4) == 3

    def test_stage_count_depends_only_on_spec_and_dims(self):
        # The stripe merge element-wise adds survivor lists; every stripe
        # of one join must therefore produce the same number of stages.
        spec = JoinSpec(epsilon=0.1)
        for split, sort in [((), None), ((0, 1), 2), ((3,), 0)]:
            plan = plan_cascade(
                spec, np.ones(16), split_dims=split, sort_dim=sort
            )
            assert plan.n_stages == spec.resolved_filter_dims(16) + 1


class TestCascadeEnablement:
    def test_auto_gates_on_dimensionality(self):
        spec = JoinSpec(epsilon=0.1)
        assert not spec.cascade_enabled(2)
        assert not spec.cascade_enabled(7)
        assert spec.cascade_enabled(8)
        assert spec.cascade_enabled(64)

    def test_off_and_on(self):
        assert not JoinSpec(epsilon=0.1, cascade="off").cascade_enabled(64)
        assert JoinSpec(epsilon=0.1, cascade="on").cascade_enabled(2)
        assert not JoinSpec(epsilon=0.1, cascade="on").cascade_enabled(1)

    def test_invalid_cascade_value_rejected(self):
        with pytest.raises(InvalidParameterError):
            JoinSpec(epsilon=0.1, cascade="maybe")

    def test_unsupported_metric_disables(self):
        class NoCascade(L2.__class__):
            supports_cascade = False

        spec = JoinSpec(epsilon=0.1, metric=NoCascade(2))
        assert not spec.cascade_enabled(16)
        assert build_kernel_context(spec, np.zeros((10, 16))) is None


class TestEquivalence:
    @pytest.mark.parametrize("metric", METRICS, ids=str)
    def test_matches_monolithic_within_rows(self, metric):
        points, rows_a, rows_b = _random_case(0)
        spec = JoinSpec(epsilon=0.9, metric=metric)
        context = _context(spec, points)
        expected = spec.metric.within_rows(
            points, points, rows_a, rows_b, spec.epsilon
        )
        got = context.within_rows(rows_a, rows_b)
        assert (got == expected).all()

    def test_matches_on_exact_boundary_pairs(self):
        # Quantized coordinates force distances exactly equal to eps;
        # the cascade's inclusive boundary must match the monolithic one.
        rng = np.random.default_rng(1)
        points = rng.integers(0, 4, size=(200, 12)).astype(np.float64) / 4.0
        rows_a = rng.integers(0, 200, size=3000)
        rows_b = rng.integers(0, 200, size=3000)
        for metric in ("l1", "l2", "linf"):
            spec = JoinSpec(epsilon=0.5, metric=metric)
            context = _context(spec, points)
            expected = spec.metric.within_rows(
                points, points, rows_a, rows_b, spec.epsilon
            )
            assert (context.within_rows(rows_a, rows_b) == expected).all()

    def test_weighted_metric_matches(self):
        rng = np.random.default_rng(2)
        d = 10
        metric = WeightedLpMetric(2, rng.uniform(0.25, 4.0, size=d))
        points = rng.random((150, d))
        rows_a = rng.integers(0, 150, size=2000)
        rows_b = rng.integers(0, 150, size=2000)
        spec = JoinSpec(epsilon=0.8, metric=metric)
        context = _context(spec, points)
        expected = metric.within_rows(points, points, rows_a, rows_b, 0.8)
        assert (context.within_rows(rows_a, rows_b) == expected).all()

    def test_two_sided_columns(self):
        rng = np.random.default_rng(3)
        points_a = rng.random((120, 12))
        points_b = rng.random((90, 12))
        rows_a = rng.integers(0, 120, size=2500)
        rows_b = rng.integers(0, 90, size=2500)
        spec = JoinSpec(epsilon=0.7)
        context = _context(spec, points_a, points_b=points_b)
        expected = L2.within_rows(points_a, points_b, rows_a, rows_b, 0.7)
        assert (context.within_rows(rows_a, rows_b) == expected).all()

    def test_float32_columns_match_float32_monolithic(self):
        points, rows_a, rows_b = _random_case(4)
        points = points.astype(np.float32)
        spec = JoinSpec(epsilon=0.9)
        context = _context(spec, points)
        expected = L2.within_rows(points, points, rows_a, rows_b, 0.9)
        assert (context.within_rows(rows_a, rows_b) == expected).all()

    def test_chunking_does_not_change_results(self, monkeypatch):
        import repro.core.kernels as kernels_module

        points, rows_a, rows_b = _random_case(5, pairs=977)
        spec = JoinSpec(epsilon=0.9)
        full = _context(spec, points).within_rows(rows_a, rows_b)
        monkeypatch.setattr(kernels_module, "_ROW_CHUNK", 100)
        chunked = _context(spec, points).within_rows(rows_a, rows_b)
        assert (full == chunked).all()

    def test_tiny_block_dims_do_not_change_results(self):
        points, rows_a, rows_b = _random_case(6, d=20)
        spec = JoinSpec(epsilon=1.1, metric="l1")
        reference = _context(spec, points).within_rows(rows_a, rows_b)
        plan = plan_cascade(
            spec,
            points.max(axis=0) - points.min(axis=0),
            block_dims=2,
        )
        context = KernelContext(plan, spec, np.ascontiguousarray(points.T))
        assert (context.within_rows(rows_a, rows_b) == reference).all()


class TestRowMaps:
    def test_row_map_translates_local_rows(self):
        points, _, _ = _random_case(7, n=200)
        rng = np.random.default_rng(8)
        members = np.sort(rng.choice(200, size=80, replace=False))
        local = points[members]
        rows_a = rng.integers(0, 80, size=1500)
        rows_b = rng.integers(0, 80, size=1500)
        spec = JoinSpec(epsilon=0.9)
        source = KernelSource(
            cols_a=np.ascontiguousarray(points.T), row_map_a=members
        )
        context = _context(spec, local, source=source)
        expected = L2.within_rows(local, local, rows_a, rows_b, 0.9)
        assert (context.within_rows(rows_a, rows_b) == expected).all()

    def test_cross_row_maps(self):
        rng = np.random.default_rng(9)
        points_r = rng.random((150, 10))
        points_s = rng.random((130, 10))
        members_r = np.sort(rng.choice(150, size=60, replace=False))
        members_s = np.sort(rng.choice(130, size=50, replace=False))
        rows_a = rng.integers(0, 60, size=1200)
        rows_b = rng.integers(0, 50, size=1200)
        spec = JoinSpec(epsilon=0.8)
        source = KernelSource(
            cols_a=np.ascontiguousarray(points_r.T),
            row_map_a=members_r,
            cols_b=np.ascontiguousarray(points_s.T),
            row_map_b=members_s,
        )
        context = _context(
            spec, points_r[members_r], points_b=points_s[members_s],
            source=source,
        )
        expected = L2.within_rows(
            points_r[members_r], points_s[members_s], rows_a, rows_b, 0.8
        )
        assert (context.within_rows(rows_a, rows_b) == expected).all()


class TestStats:
    def test_counters_populate_and_survivors_monotone(self):
        points, rows_a, rows_b = _random_case(10, d=24)
        spec = JoinSpec(epsilon=1.0)
        context = _context(spec, points)
        stats = JoinStats()
        context.within_rows(rows_a, rows_b, stats)
        assert stats.cascade_candidates == len(rows_a)
        assert len(stats.cascade_survivors) == context.plan.n_stages
        survivors = stats.cascade_survivors
        assert all(
            survivors[i] >= survivors[i + 1] for i in range(len(survivors) - 1)
        )
        assert survivors[0] <= stats.cascade_candidates
        assert 0 < stats.coordinates_touched
        assert stats.coordinates_touched < stats.cascade_candidates * 24

    def test_counters_accumulate_across_calls(self):
        points, rows_a, rows_b = _random_case(11)
        spec = JoinSpec(epsilon=0.9)
        context = _context(spec, points)
        stats = JoinStats()
        context.within_rows(rows_a, rows_b, stats)
        first = list(stats.cascade_survivors)
        context.within_rows(rows_a, rows_b, stats)
        assert stats.cascade_candidates == 2 * len(rows_a)
        assert stats.cascade_survivors == [2 * v for v in first]

    def test_last_survivor_stage_counts_emitted_rows(self):
        points, rows_a, rows_b = _random_case(12)
        spec = JoinSpec(epsilon=0.9)
        context = _context(spec, points)
        stats = JoinStats()
        mask = context.within_rows(rows_a, rows_b, stats)
        assert stats.cascade_survivors[-1] == int(mask.sum())

    def test_as_dict_expands_stage_keys(self):
        stats = JoinStats(cascade_survivors=[10, 4, 1])
        data = stats.as_dict()
        assert data["cascade_survivors_stage1"] == 10
        assert data["cascade_survivors_stage3"] == 1
        assert "cascade_survivors" not in data

    def test_merge_pads_shorter_survivor_lists(self):
        a = JoinStats(cascade_survivors=[5, 2])
        b = JoinStats(cascade_survivors=[7, 3, 1])
        a.merge(b)
        assert a.cascade_survivors == [12, 5, 1]
        a.merge(JoinStats())
        assert a.cascade_survivors == [12, 5, 1]


class TestValidation:
    def test_mismatched_row_lengths_rejected(self):
        points, rows_a, rows_b = _random_case(13)
        context = _context(JoinSpec(epsilon=0.5), points)
        with pytest.raises(InvalidParameterError):
            context.within_rows(rows_a[:5], rows_b[:4])

    def test_wrong_column_shape_rejected(self):
        plan = KernelPlan(order=(0, 1, 2), n_filters=1)
        with pytest.raises(InvalidParameterError):
            KernelContext(plan, JoinSpec(epsilon=0.5), np.zeros((2, 10)))

    def test_empty_candidate_list(self):
        points, _, _ = _random_case(14)
        context = _context(JoinSpec(epsilon=0.5), points)
        stats = JoinStats()
        mask = context.within_rows(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), stats
        )
        assert mask.shape == (0,)
        assert stats.cascade_candidates == 0

    def test_fractional_metric_short_circuit_key(self):
        # Non-integer p exercises the generic power path end to end.
        metric = lp_metric(1.5)
        acc = metric.accumulate_abs_diff(
            np.zeros(3), np.array([[0.5, 0.5]] * 3), (0, 1)
        )
        assert acc == pytest.approx([2 * 0.5**1.5] * 3)
        assert DEFAULT_BLOCK_DIMS >= 2
