"""Regression guards on the paper's headline claims.

These assert the *machine-independent* orderings the reproduction
stands on, using deterministic work counters — so a refactor that
silently destroys the epsilon-kdB tree's advantage fails the suite even
on hardware where wall-clock would hide it.
"""

import pytest

from repro import JoinSpec, PairCounter
from repro.baselines import (
    rplus_self_join,
    rtree_self_join,
    sort_merge_self_join,
)
from repro.core import epsilon_kdb_self_join
from repro.datasets import gaussian_clusters


@pytest.fixture(scope="module")
def workload():
    return gaussian_clusters(8000, 16, clusters=10, sigma=0.05, seed=1998)


def candidates(algorithm, points, spec, **kwargs):
    sink = PairCounter()
    result = algorithm(points, spec, sink=sink, **kwargs)
    return result.stats.distance_computations


class TestHeadlineOrderings:
    def test_kdb_beats_brute_force_by_an_order_of_magnitude(self, workload):
        spec = JoinSpec(epsilon=0.05)
        kdb = candidates(epsilon_kdb_self_join, workload, spec)
        all_pairs = len(workload) * (len(workload) - 1) // 2
        assert kdb * 10 < all_pairs

    def test_kdb_beats_the_index_joins_on_clusters(self, workload):
        spec = JoinSpec(epsilon=0.05)
        kdb = candidates(epsilon_kdb_self_join, workload, spec)
        rtree = candidates(rtree_self_join, workload, spec)
        rplus = candidates(rplus_self_join, workload, spec)
        assert kdb < rtree
        assert kdb < rplus

    def test_kdb_beats_sort_merge_at_moderate_epsilon(self, workload):
        spec = JoinSpec(epsilon=0.1)
        kdb = candidates(epsilon_kdb_self_join, workload, spec)
        sort_merge = candidates(sort_merge_self_join, workload, spec)
        assert kdb < sort_merge

    def test_sort_merge_degrades_faster_with_epsilon(self, workload):
        """The crossover dynamic of E1: as epsilon grows, sort-merge's
        candidate count grows faster than the tree's."""
        tight, loose = JoinSpec(epsilon=0.05), JoinSpec(epsilon=0.2)
        kdb_growth = candidates(
            epsilon_kdb_self_join, workload, loose
        ) / candidates(epsilon_kdb_self_join, workload, tight)
        sm_growth = candidates(
            sort_merge_self_join, workload, loose
        ) / candidates(sort_merge_self_join, workload, tight)
        assert sm_growth > kdb_growth

    def test_kdb_keeps_pruning_in_high_dimensions(self):
        """E2's substance in counters: the tree prunes effectively at
        every dimensionality — fewer candidates than the index join at
        both ends of the sweep, and far below all-pairs even at d=32
        (where MBR-based pruning has little left to offer)."""
        spec16 = JoinSpec(epsilon=0.1)
        spec32 = JoinSpec(epsilon=0.1 * (32 / 16) ** 0.5)
        low = gaussian_clusters(5000, 16, clusters=10, sigma=0.05, seed=3)
        high = gaussian_clusters(5000, 32, clusters=10, sigma=0.05, seed=3)
        all_pairs = 5000 * 4999 / 2
        for points, spec in ((low, spec16), (high, spec32)):
            kdb = candidates(epsilon_kdb_self_join, points, spec)
            rtree = candidates(rtree_self_join, points, spec)
            assert kdb < rtree
            assert kdb < 0.2 * all_pairs

    def test_adjacency_pruning_saves_most_of_the_traversal(self, workload):
        """E10's headline: the adjacent-cell rule is load-bearing."""
        on = JoinSpec(epsilon=0.1)
        off = JoinSpec(epsilon=0.1, adjacency_pruning=False)
        sink_on, sink_off = PairCounter(), PairCounter()
        visited_on = epsilon_kdb_self_join(
            workload, on, sink=sink_on
        ).stats.node_pairs_visited
        visited_off = epsilon_kdb_self_join(
            workload, off, sink=sink_off
        ).stats.node_pairs_visited
        assert sink_on.count == sink_off.count
        assert visited_off > 3 * visited_on
