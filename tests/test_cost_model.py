"""Validation of the analytic cost model against measured counters."""

import pytest

from repro import JoinSpec, PairCounter
from repro.analysis.cost_model import (
    predict_brute_force_candidates,
    predict_brute_force_candidates_cross,
    predict_kdb_candidates,
    predict_kdb_candidates_cross,
    predict_sort_merge_candidates,
    predict_sort_merge_candidates_cross,
    split_depth,
)
from repro.baselines import brute_force_self_join, sort_merge_self_join
from repro.core import epsilon_kdb_join, epsilon_kdb_self_join
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError


class TestSplitDepth:
    def test_zero_depth_when_leaf_fits_everything(self):
        assert split_depth(100, 0.1, leaf_size=1000, dims=8) == 0

    def test_depth_grows_with_n(self):
        depths = [split_depth(n, 0.1, 64, 16) for n in (100, 10_000, 1_000_000)]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]

    def test_depth_capped_by_dims(self):
        assert split_depth(10**9, 0.5, 1, 4) == 4

    def test_no_split_for_huge_epsilon(self):
        assert split_depth(10_000, 1.5, 64, 8) == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            split_depth(0, 0.1, 64, 8)


class TestPredictionsTrackMeasurements:
    """The model should predict the measured candidate counts within a
    small constant factor on uniform data (boundary effects and grid
    clipping account for the slack)."""

    N = 4000
    DIMS = 10

    def measured(self, algorithm, spec, **kwargs):
        points = uniform_points(self.N, self.DIMS, seed=77)
        sink = PairCounter()
        result = algorithm(points, spec, sink=sink, **kwargs)
        return result.stats.distance_computations

    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.2])
    def test_kdb_model(self, eps):
        spec = JoinSpec(epsilon=eps, leaf_size=128)
        measured = self.measured(epsilon_kdb_self_join, spec)
        predicted = predict_kdb_candidates(self.N, self.DIMS, eps, 128)
        assert predicted / 5 < measured < predicted * 5

    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.2])
    def test_sort_merge_model(self, eps):
        spec = JoinSpec(epsilon=eps)
        measured = self.measured(sort_merge_self_join, spec)
        predicted = predict_sort_merge_candidates(self.N, eps)
        assert predicted / 5 < measured < predicted * 5

    def test_brute_force_model(self):
        spec = JoinSpec(epsilon=0.1)
        measured = self.measured(brute_force_self_join, spec)
        predicted = predict_brute_force_candidates(self.N)
        # The blocked loop checks full diagonal tiles, so measured is
        # between C(n,2) and n^2.
        assert predicted <= measured <= 2 * predicted + self.N

    def test_kdb_beats_sort_merge_in_model_and_practice(self):
        eps = 0.1
        predicted_kdb = predict_kdb_candidates(self.N, self.DIMS, eps, 128)
        predicted_sm = predict_sort_merge_candidates(self.N, eps)
        assert predicted_kdb < predicted_sm
        spec = JoinSpec(epsilon=eps, leaf_size=128)
        measured_kdb = self.measured(epsilon_kdb_self_join, spec)
        measured_sm = self.measured(sort_merge_self_join, spec)
        assert measured_kdb < measured_sm


class TestCrossJoinPredictions:
    """Two-set variants score ``n_a * n_b`` pairs, not ``C(n, 2)``.

    The self-join model halves the pair count (each unordered pair is
    checked once); an R-against-S join checks every ordered (r, s)
    combination, so reusing the self-join formula on ``n_a + n_b``
    over- or under-predicts depending on the set-size skew — the
    asymmetry the cross variants fix.
    """

    N_A = 4000
    N_B = 1000
    DIMS = 10

    def measured(self, eps):
        a = uniform_points(self.N_A, self.DIMS, seed=77)
        b = uniform_points(self.N_B, self.DIMS, seed=78)
        spec = JoinSpec(epsilon=eps, leaf_size=128)
        sink = PairCounter()
        result = epsilon_kdb_join(a, b, spec, sink=sink)
        return result.stats.distance_computations

    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.2])
    def test_cross_kdb_model_tracks_measurement(self, eps):
        measured = self.measured(eps)
        predicted = predict_kdb_candidates_cross(
            self.N_A, self.N_B, self.DIMS, eps, leaf_size=128
        )
        assert predicted / 5 < measured < predicted * 5

    def test_cross_pair_count_is_product_not_choose_two(self):
        # At eps large enough that every pair collides, the cross model
        # must approach n_a * n_b while the self model on the union
        # approaches C(n_a + n_b, 2) — over 3x larger here.
        cross = predict_brute_force_candidates_cross(self.N_A, self.N_B)
        union = predict_brute_force_candidates(self.N_A + self.N_B)
        assert cross == self.N_A * self.N_B
        assert union > 3 * cross

    def test_cross_models_are_symmetric(self):
        assert predict_kdb_candidates_cross(
            2000, 500, 8, 0.1
        ) == predict_kdb_candidates_cross(500, 2000, 8, 0.1)
        assert predict_sort_merge_candidates_cross(
            2000, 500, 0.1
        ) == predict_sort_merge_candidates_cross(500, 2000, 0.1)

    def test_cross_sort_merge_dominates_cross_kdb(self):
        eps = 0.1
        kdb = predict_kdb_candidates_cross(self.N_A, self.N_B, self.DIMS, eps)
        sm = predict_sort_merge_candidates_cross(self.N_A, self.N_B, eps)
        assert kdb < sm

    def test_cross_validation(self):
        with pytest.raises(InvalidParameterError):
            predict_kdb_candidates_cross(0, 100, 8, 0.1)
        with pytest.raises(InvalidParameterError):
            predict_sort_merge_candidates_cross(100, 100, -0.1)


class TestModelShape:
    def test_kdb_candidates_decrease_with_smaller_eps(self):
        values = [
            predict_kdb_candidates(100_000, 16, eps, 128)
            for eps in (0.4, 0.2, 0.1, 0.05)
        ]
        assert values == sorted(values, reverse=True)

    def test_probability_never_exceeds_all_pairs(self):
        for eps in (0.01, 0.3, 0.9, 2.0):
            assert predict_kdb_candidates(1000, 8, eps) <= 1000 * 999 / 2
            assert predict_sort_merge_candidates(1000, eps) <= 1000 * 999 / 2
