"""Unit tests for JoinSpec and input validation."""

import numpy as np
import pytest

from repro.core.config import JoinSpec, validate_points
from repro.errors import InvalidParameterError
from repro.metrics import L2, Metric


class TestJoinSpec:
    def test_defaults(self):
        spec = JoinSpec(epsilon=0.1)
        assert spec.epsilon == 0.1
        assert spec.metric is L2
        assert spec.leaf_size == 128
        assert spec.adjacency_pruning

    def test_metric_resolution(self):
        assert isinstance(JoinSpec(epsilon=0.1, metric="linf").metric, Metric)
        assert JoinSpec(epsilon=0.1, metric=1).metric.name == "l1"

    @pytest.mark.parametrize("bad", [0.0, -0.5, float("nan"), float("inf")])
    def test_rejects_bad_epsilon(self, bad):
        with pytest.raises(InvalidParameterError):
            JoinSpec(epsilon=bad)

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(InvalidParameterError):
            JoinSpec(epsilon=0.1, leaf_size=0)

    def test_split_order_default_is_natural(self):
        spec = JoinSpec(epsilon=0.1)
        assert spec.resolved_split_order(4).tolist() == [0, 1, 2, 3]

    def test_split_order_custom_permutation(self):
        spec = JoinSpec(epsilon=0.1, split_order=[2, 0, 1])
        assert spec.resolved_split_order(3).tolist() == [2, 0, 1]

    def test_split_order_rejects_non_permutation(self):
        spec = JoinSpec(epsilon=0.1, split_order=[0, 0, 1])
        with pytest.raises(InvalidParameterError):
            spec.resolved_split_order(3)
        spec = JoinSpec(epsilon=0.1, split_order=[0, 1])
        with pytest.raises(InvalidParameterError):
            spec.resolved_split_order(3)

    def test_sort_dim_defaults_to_last_split_dim(self):
        assert JoinSpec(epsilon=0.1).resolved_sort_dim(5) == 4
        spec = JoinSpec(epsilon=0.1, split_order=[3, 1, 0, 2])
        assert spec.resolved_sort_dim(4) == 2

    def test_sort_dim_explicit_and_bounds(self):
        assert JoinSpec(epsilon=0.1, sort_dim=1).resolved_sort_dim(3) == 1
        with pytest.raises(InvalidParameterError):
            JoinSpec(epsilon=0.1, sort_dim=7).resolved_sort_dim(3)


class TestValidatePoints:
    def test_accepts_lists(self):
        arr = validate_points([[0.0, 1.0], [2.0, 3.0]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(InvalidParameterError):
            validate_points(np.zeros(5))
        with pytest.raises(InvalidParameterError):
            validate_points(np.zeros((2, 2, 2)))

    def test_rejects_zero_dims(self):
        with pytest.raises(InvalidParameterError):
            validate_points(np.zeros((3, 0)))

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidParameterError):
            validate_points(np.array([[0.0, np.nan]]))
        with pytest.raises(InvalidParameterError):
            validate_points(np.array([[np.inf, 0.0]]))

    def test_accepts_empty_relation(self):
        arr = validate_points(np.empty((0, 3)))
        assert arr.shape == (0, 3)
