"""Tests for the Z-order (Morton code) join and its encoding."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec
from repro.baselines import zorder_join, zorder_self_join
from repro.baselines.zorder import morton_decode, morton_encode
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError


class TestMortonEncoding:
    def test_known_values_2d(self):
        # Classic 2-D Morton: (x=1, y=0) -> 0b01, (x=0, y=1) -> 0b10,
        # (x=1, y=1) -> 0b11, (x=2, y=0) -> 0b0100.
        cells = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [2, 0]])
        codes = morton_encode(cells, bits=4)
        assert codes.tolist() == [0, 1, 2, 3, 4]

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        for dims, bits in ((1, 16), (2, 10), (3, 8), (5, 6)):
            cells = rng.integers(0, 1 << bits, size=(200, dims))
            codes = morton_encode(cells, bits)
            decoded = morton_decode(codes, dims, bits)
            assert (decoded == cells).all()

    def test_codes_unique_per_cell(self):
        rng = np.random.default_rng(1)
        cells = rng.integers(0, 32, size=(500, 3))
        codes = morton_encode(cells, bits=5)
        unique_cells = len(np.unique(cells, axis=0))
        assert len(np.unique(codes)) == unique_cells

    def test_z_curve_locality_ordering(self):
        """Sorting by code visits quadrants in Z order: all of quadrant
        (0,0) before any of (1,0), etc., at the top level."""
        cells = np.array([[0, 0], [1, 0], [0, 1], [1, 1]]) * 8  # quadrant corners
        codes = morton_encode(cells, bits=4)
        assert codes.tolist() == sorted(codes.tolist())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            morton_encode(np.zeros((2, 2), dtype=np.int64), bits=31)  # 62 > 60
        with pytest.raises(InvalidParameterError):
            morton_encode(np.array([[-1, 0]]), bits=4)
        with pytest.raises(InvalidParameterError):
            morton_encode(np.array([[16, 0]]), bits=4)
        with pytest.raises(InvalidParameterError):
            morton_encode(np.zeros(4, dtype=np.int64), bits=4)


class TestSelfJoin:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    @pytest.mark.parametrize("eps", [0.05, 0.3])
    def test_matches_oracle(self, metric, eps, small_uniform):
        spec = JoinSpec(epsilon=eps, metric=metric)
        expected = oracle_self_pairs(small_uniform, spec)
        result = zorder_self_join(small_uniform, spec)
        assert_same_pairs(result.pairs, expected, f"zorder {metric}/{eps}")

    @pytest.mark.parametrize("zorder_dims", [1, 2, 3, 5])
    def test_encoded_dims_never_change_result(self, zorder_dims, small_uniform):
        spec = JoinSpec(epsilon=0.2)
        expected = oracle_self_pairs(small_uniform, spec)
        result = zorder_self_join(small_uniform, spec, zorder_dims=zorder_dims)
        assert_same_pairs(result.pairs, expected, f"zdims={zorder_dims}")

    def test_clusters(self, small_clusters):
        spec = JoinSpec(epsilon=0.1)
        expected = oracle_self_pairs(small_clusters, spec)
        result = zorder_self_join(small_clusters, spec)
        assert_same_pairs(result.pairs, expected, "zorder clusters")

    def test_tiny_epsilon_forces_code_clipping(self):
        """A huge span/eps ratio exceeds the bit budget; clipping must
        keep results exact (it only coarsens the filter)."""
        rng = np.random.default_rng(2)
        points = rng.random((400, 2)) * 1e7
        spec = JoinSpec(epsilon=1e-3)
        expected = oracle_self_pairs(points, spec)
        result = zorder_self_join(points, spec, zorder_dims=2)
        assert_same_pairs(result.pairs, expected, "clipped codes")

    def test_negative_coordinates(self):
        rng = np.random.default_rng(3)
        points = rng.normal(0.0, 1.0, size=(400, 4))
        spec = JoinSpec(epsilon=0.3)
        expected = oracle_self_pairs(points, spec)
        result = zorder_self_join(points, spec)
        assert_same_pairs(result.pairs, expected, "negative coords")

    def test_empty_and_tiny(self):
        spec = JoinSpec(epsilon=0.1)
        assert zorder_self_join(np.empty((0, 2)), spec).count == 0
        assert zorder_self_join(np.array([[0.5, 0.5]]), spec).count == 0

    def test_invalid_zorder_dims(self, small_uniform):
        with pytest.raises(InvalidParameterError):
            zorder_self_join(small_uniform, JoinSpec(epsilon=0.1), zorder_dims=0)
        with pytest.raises(InvalidParameterError):
            zorder_self_join(small_uniform, JoinSpec(epsilon=0.1), zorder_dims=99)


class TestTwoSetJoin:
    def test_matches_oracle(self):
        left = gaussian_clusters(500, 5, clusters=4, sigma=0.05, seed=81)
        right = gaussian_clusters(650, 5, clusters=4, sigma=0.05, seed=81) + 0.01
        spec = JoinSpec(epsilon=0.15)
        expected = oracle_two_set_pairs(left, right, spec)
        assert len(expected) > 0
        result = zorder_join(left, right, spec)
        assert_same_pairs(result.pairs, expected, "zorder two-set")

    def test_orientation(self):
        left = np.array([[0.0, 0.0]])
        right = np.array([[0.05, 0.0], [0.9, 0.9]])
        result = zorder_join(left, right, JoinSpec(epsilon=0.1))
        assert result.pairs.tolist() == [[0, 0]]

    def test_empty_sides(self):
        spec = JoinSpec(epsilon=0.1)
        empty = np.empty((0, 3))
        other = np.zeros((3, 3))
        assert zorder_join(empty, other, spec).count == 0
        assert zorder_join(other, empty, spec).count == 0

    def test_dim_mismatch(self):
        with pytest.raises(InvalidParameterError):
            zorder_join(np.zeros((2, 2)), np.zeros((2, 3)), JoinSpec(epsilon=0.1))
