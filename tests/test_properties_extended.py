"""Property-based tests for the components added on top of the core:
R+-tree joins, external two-set joins, range queries, and tree reuse."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import (
    EpsilonKdbTree,
    JoinSpec,
    epsilon_kdb_self_join,
    external_join,
)
from repro.baselines import rplus_self_join, zorder_self_join


def quantized_points(max_n=50, max_d=5):
    """Small arrays on a 1/16 lattice: ties and boundary cases abound."""
    return st.tuples(
        st.integers(min_value=0, max_value=max_n),
        st.integers(min_value=1, max_value=max_d),
        st.integers(min_value=0, max_value=2**31 - 1),
    ).map(
        lambda args: np.random.default_rng(args[2])
        .integers(0, 17, size=(args[0], args[1]))
        .astype(np.float64)
        / 16.0
    )


epsilons = st.sampled_from([0.0625, 0.1, 0.25, 0.5, 1.0])
metrics = st.sampled_from(["l1", "l2", "linf"])


@settings(max_examples=30, deadline=None)
@given(points=quantized_points(), eps=epsilons, metric=metrics)
def test_rplus_self_join_equals_brute_force(points, eps, metric):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(points, spec)
    result = rplus_self_join(points, spec, max_entries=4)
    assert_same_pairs(result.pairs, expected, "property rplus")


@settings(max_examples=30, deadline=None)
@given(points=quantized_points(), eps=epsilons, metric=metrics)
def test_zorder_self_join_equals_brute_force(points, eps, metric):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(points, spec)
    result = zorder_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "property zorder")


@settings(max_examples=20, deadline=None)
@given(
    points_r=quantized_points(max_n=30, max_d=4),
    points_s=quantized_points(max_n=30, max_d=4),
    eps=st.sampled_from([0.125, 0.25, 0.5]),
    budget=st.sampled_from([2, 9, 500]),
)
def test_external_two_set_join_equals_brute_force(points_r, points_s, eps, budget):
    dims = min(points_r.shape[1], points_s.shape[1])
    points_r = points_r[:, :dims]
    points_s = points_s[:, :dims]
    spec = JoinSpec(epsilon=eps, leaf_size=4)
    expected = oracle_two_set_pairs(points_r, points_s, spec)
    report = external_join(points_r, points_s, spec, memory_points=budget)
    assert_same_pairs(report.pairs, expected, "property external two-set")


@settings(max_examples=30, deadline=None)
@given(
    points=quantized_points(max_n=60, max_d=4),
    eps=epsilons,
    metric=metrics,
    query_seed=st.integers(0, 2**31 - 1),
)
def test_range_query_equals_linear_scan(points, eps, metric, query_seed):
    if len(points) == 0:
        return
    spec = JoinSpec(epsilon=eps, metric=metric, leaf_size=4)
    tree = EpsilonKdbTree.build(points, spec)
    rng = np.random.default_rng(query_seed)
    # Mix of in-domain and slightly out-of-domain queries.
    queries = [
        rng.integers(0, 17, size=points.shape[1]) / 16.0,
        rng.uniform(-0.5, 1.5, size=points.shape[1]),
        points[rng.integers(0, len(points))],
    ]
    for query in queries:
        hits = tree.range_query(np.asarray(query, dtype=np.float64))
        diffs = np.abs(points - query)
        expected = np.flatnonzero(spec.metric.within_gap(diffs, eps))
        assert hits.tolist() == expected.tolist()


@settings(max_examples=25, deadline=None)
@given(
    points=quantized_points(max_n=50, max_d=4),
    build_eps=st.sampled_from([0.25, 0.5, 1.0]),
    query_eps=st.sampled_from([0.03, 0.125, 0.25]),
    metric=metrics,
)
def test_tree_reuse_at_finer_epsilon(points, build_eps, query_eps, metric):
    if query_eps > build_eps:
        query_eps = build_eps
    coarse = JoinSpec(epsilon=build_eps, metric=metric, leaf_size=4)
    fine = JoinSpec(epsilon=query_eps, metric=metric, leaf_size=4)
    tree = EpsilonKdbTree.build(points, coarse)
    expected = oracle_self_pairs(points, fine)
    result = epsilon_kdb_self_join(points, fine, tree=tree)
    assert_same_pairs(result.pairs, expected, "property reuse")


@settings(max_examples=25, deadline=None)
@given(points=quantized_points(max_n=60, max_d=4), eps=epsilons)
def test_incremental_and_bulk_trees_join_identically(points, eps):
    spec = JoinSpec(epsilon=eps, leaf_size=4)
    bulk = epsilon_kdb_self_join(points, spec)
    incremental_tree = EpsilonKdbTree.empty(points, spec)
    for index in range(len(points)):
        incremental_tree.insert(index)
    incremental = epsilon_kdb_self_join(points, spec, tree=incremental_tree)
    assert_same_pairs(incremental.pairs, bulk.pairs, "property incremental")
