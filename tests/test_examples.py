"""Smoke tests for the example scripts.

Each example is imported as a module, its workload constants are shrunk,
and its ``main()`` is executed — so the examples in the repository are
guaranteed to actually run against the current API.
"""

import importlib.util
import os
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys, monkeypatch):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "self-join found" in out
    assert "eps-kdB tree:" in out


def test_timeseries_similarity(capsys):
    module = load_example("timeseries_similarity")
    module.SERIES = 400
    module.LENGTH = 64
    module.EPSILON = 6.0
    module.main()
    out = capsys.readouterr().out
    assert "matched" in out
    assert "mean return correlation" in out


def test_image_dedup(capsys):
    module = load_example("image_dedup")
    module.IMAGES = 600
    module.main()
    out = capsys.readouterr().out
    assert "near-duplicate pairs" in out
    assert "duplicate groups" in out


def test_external_memory_join(capsys):
    module = load_example("external_memory_join")
    module.POINTS = 3000
    module.main()
    out = capsys.readouterr().out
    assert "matches the in-memory join exactly: True" in out


def test_similarity_search(capsys):
    module = load_example("similarity_search")
    module.IMAGES = 2000
    module.QUERIES = 20
    module.main()
    out = capsys.readouterr().out
    assert "all three agree on every query result" in out
