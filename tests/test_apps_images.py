"""Tests for the image-deduplication application and its union-find."""

import numpy as np
import pytest

from repro.apps.images import UnionFind, find_duplicate_images
from repro.datasets.images import color_histograms
from repro.errors import InvalidParameterError


class TestUnionFind:
    def test_initially_all_singletons(self):
        forest = UnionFind(5)
        assert len(forest.components()) == 5

    def test_union_merges(self):
        forest = UnionFind(4)
        assert forest.union(0, 1)
        assert forest.union(2, 3)
        assert forest.union(1, 2)
        assert not forest.union(0, 3)  # already connected
        assert forest.find(0) == forest.find(3)
        assert len(forest.components()) == 1

    def test_components_partition_everything(self):
        rng = np.random.default_rng(0)
        forest = UnionFind(50)
        for _ in range(40):
            forest.union(int(rng.integers(0, 50)), int(rng.integers(0, 50)))
        members = sorted(
            item for group in forest.components().values() for item in group
        )
        assert members == list(range(50))

    def test_transitivity_matches_graph_reachability(self):
        import networkx as nx

        rng = np.random.default_rng(1)
        edges = [
            (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
            for _ in range(25)
        ]
        forest = UnionFind(30)
        graph = nx.Graph()
        graph.add_nodes_from(range(30))
        for a, b in edges:
            forest.union(a, b)
            graph.add_edge(a, b)
        expected = {
            tuple(sorted(component))
            for component in nx.connected_components(graph)
        }
        actual = {
            tuple(sorted(group)) for group in forest.components().values()
        }
        assert actual == expected

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnionFind(-1)


class TestFindDuplicateImages:
    @pytest.fixture(scope="class")
    def collection(self):
        return color_histograms(
            800, bins=24, scenes=5, concentration=200.0, seed=77,
            return_labels=True,
        )

    def test_groups_are_join_components(self, collection):
        histograms, _ = collection
        result = find_duplicate_images(histograms, epsilon=0.1)
        # Every pair's endpoints are in the same group.
        group_of = {}
        for gid, group in enumerate(result.groups):
            for member in group:
                group_of[member] = gid
        for left, right in result.pairs:
            assert group_of[int(left)] == group_of[int(right)]

    def test_groups_sorted_largest_first(self, collection):
        histograms, _ = collection
        result = find_duplicate_images(histograms, epsilon=0.1)
        sizes = [len(group) for group in result.groups]
        assert sizes == sorted(sizes, reverse=True)

    def test_no_singleton_groups(self, collection):
        histograms, _ = collection
        result = find_duplicate_images(histograms, epsilon=0.1)
        assert all(len(group) >= 2 for group in result.groups)
        assert result.duplicate_images == sum(len(g) for g in result.groups)

    def test_groups_respect_scene_labels_when_tight(self, collection):
        histograms, labels = collection
        result = find_duplicate_images(histograms, epsilon=0.05)
        for group in result.groups:
            assert len(set(labels[group])) == 1

    def test_no_duplicates_at_tiny_epsilon(self, collection):
        histograms, _ = collection
        result = find_duplicate_images(histograms, epsilon=1e-9)
        assert result.groups == []
        assert len(result.pairs) == 0

    def test_all_one_group_at_huge_epsilon(self, collection):
        histograms, _ = collection
        result = find_duplicate_images(histograms, epsilon=2.0)
        assert len(result.groups) == 1
        assert len(result.groups[0]) == len(histograms)
