"""Property-based tests (hypothesis) for the core invariants.

The central property of the whole library: every join algorithm returns
*exactly* the brute-force pair set for arbitrary inputs, thresholds and
metrics.  Plus the structural invariants the correctness argument rests
on: the adjacent-cell rule, band-sweep completeness, and grid cell
assignment.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec, epsilon_kdb_join, epsilon_kdb_self_join
from repro.baselines import grid_self_join, rtree_self_join, sort_merge_self_join
from repro.core.epsilon_kdb import EpsilonKdbTree, Grid
from repro.core.external import plan_stripes
from repro.core.parallel import ParallelJoinExecutor, plan_parallel_stripes
from repro.core.result import canonicalize_self_pairs
from repro.core.sweep import band_pairs_cross, band_pairs_self


def point_arrays(max_n=50, max_d=6):
    """Strategy: small float arrays in [0, 1] with coarse granularity.

    Values are quantized to multiples of 1/16 so ties, duplicate points
    and cell-boundary cases appear constantly instead of never.
    """
    return st.tuples(
        st.integers(min_value=0, max_value=max_n),
        st.integers(min_value=1, max_value=max_d),
        st.integers(min_value=0, max_value=2**31 - 1),
    ).map(
        lambda args: np.random.default_rng(args[2])
        .integers(0, 17, size=(args[0], args[1]))
        .astype(np.float64)
        / 16.0
    )


epsilons = st.sampled_from([0.03, 0.0625, 0.1, 0.25, 0.5, 1.0, 2.0])
metrics = st.sampled_from(["l1", "l2", "linf"])
leaf_sizes = st.sampled_from([1, 2, 8, 64])


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(), eps=epsilons, metric=metrics, leaf_size=leaf_sizes)
def test_epsilon_kdb_self_join_equals_brute_force(points, eps, metric, leaf_size):
    spec = JoinSpec(epsilon=eps, metric=metric, leaf_size=leaf_size)
    expected = oracle_self_pairs(points, spec)
    result = epsilon_kdb_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "property kdb")


@settings(max_examples=40, deadline=None)
@given(
    points_r=point_arrays(max_n=30),
    points_s=point_arrays(max_n=30),
    eps=epsilons,
    metric=metrics,
)
def test_epsilon_kdb_two_set_join_equals_brute_force(points_r, points_s, eps, metric):
    if points_r.shape[1] != points_s.shape[1]:
        dims = min(points_r.shape[1], points_s.shape[1])
        points_r = points_r[:, :dims]
        points_s = points_s[:, :dims]
    spec = JoinSpec(epsilon=eps, metric=metric, leaf_size=4)
    expected = oracle_two_set_pairs(points_r, points_s, spec)
    result = epsilon_kdb_join(points_r, points_s, spec)
    assert_same_pairs(result.pairs, expected, "property kdb two-set")


@settings(max_examples=30, deadline=None)
@given(points=point_arrays(max_n=40), eps=epsilons, metric=metrics)
def test_rtree_self_join_equals_brute_force(points, eps, metric):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(points, spec)
    result = rtree_self_join(points, spec, max_entries=4)
    assert_same_pairs(result.pairs, expected, "property rtree")


@settings(max_examples=30, deadline=None)
@given(points=point_arrays(max_n=40), eps=epsilons, metric=metrics)
def test_sort_merge_self_join_equals_brute_force(points, eps, metric):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(points, spec)
    result = sort_merge_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "property sort-merge")


@settings(max_examples=30, deadline=None)
@given(points=point_arrays(max_n=40), eps=epsilons, metric=metrics)
def test_grid_self_join_equals_brute_force(points, eps, metric):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(points, spec)
    result = grid_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "property grid")


@settings(max_examples=25, deadline=None)
@given(
    points=point_arrays(max_n=40, max_d=4),
    eps=st.sampled_from([0.1, 0.25, 0.5]),
    budget=st.sampled_from([2, 5, 17, 1000]),
)
def test_external_join_equals_brute_force(points, eps, budget):
    from repro import external_self_join

    spec = JoinSpec(epsilon=eps, leaf_size=4)
    expected = oracle_self_pairs(points, spec)
    report = external_self_join(points, spec, memory_points=budget)
    assert_same_pairs(report.pairs, expected, "property external")


@settings(max_examples=50, deadline=None)
@given(
    values=hnp.arrays(
        np.float64,
        st.integers(0, 60),
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    eps=st.floats(0.0, 1.5, allow_nan=False),
)
def test_band_sweep_self_completeness(values, eps):
    values = np.sort(values)
    pos_a, pos_b = band_pairs_self(values, eps)
    produced = set(zip(pos_a.tolist(), pos_b.tolist()))
    for a in range(len(values)):
        for b in range(a + 1, len(values)):
            expected = values[b] - values[a] <= eps
            assert ((a, b) in produced) == expected


@settings(max_examples=50, deadline=None)
@given(
    values_a=hnp.arrays(
        np.float64, st.integers(0, 30),
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    values_b=hnp.arrays(
        np.float64, st.integers(0, 30),
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    eps=st.floats(0.0, 1.5, allow_nan=False),
)
def test_band_sweep_cross_completeness(values_a, values_b, eps):
    values_a = np.sort(values_a)
    values_b = np.sort(values_b)
    pos_a, pos_b = band_pairs_cross(values_a, values_b, eps)
    produced = set(zip(pos_a.tolist(), pos_b.tolist()))
    for a in range(len(values_a)):
        for b in range(len(values_b)):
            expected = abs(values_a[a] - values_b[b]) <= eps
            assert ((a, b) in produced) == expected


@settings(max_examples=60, deadline=None)
@given(
    values=hnp.arrays(
        np.float64, st.integers(2, 200),
        elements=st.floats(0, 10, allow_nan=False, width=16),
    ),
    eps=st.floats(0.01, 3.0, allow_nan=False),
)
def test_grid_adjacent_cell_rule(values, eps):
    """If |x - y| <= eps then their cells differ by at most 1 — the
    property the whole traversal's correctness rests on."""
    grid = Grid.fit(values.reshape(-1, 1), eps=eps)
    cells = grid.cell_of(values, 0)
    order = np.argsort(values)
    values_sorted = values[order]
    cells_sorted = cells[order]
    for k in range(len(values) - 1):
        if values_sorted[k + 1] - values_sorted[k] <= eps:
            assert abs(int(cells_sorted[k + 1]) - int(cells_sorted[k])) <= 1


@settings(max_examples=40, deadline=None)
@given(points=point_arrays(max_n=60), eps=epsilons, leaf_size=leaf_sizes)
def test_tree_partitions_points(points, eps, leaf_size):
    if len(points) == 0:
        return
    spec = JoinSpec(epsilon=eps, leaf_size=leaf_size)
    tree = EpsilonKdbTree.build(points, spec)
    collected = np.sort(
        np.concatenate([leaf.indices for leaf in tree.iter_leaves()])
    )
    assert collected.tolist() == list(range(len(points)))


@settings(max_examples=40, deadline=None)
@given(
    histogram=hnp.arrays(
        np.int64, st.integers(1, 60), elements=st.integers(0, 50)
    ),
    capacity=st.integers(1, 120),
)
def test_stripe_plan_covers_cells_in_order(histogram, capacity):
    stripes = plan_stripes(histogram, capacity)
    covered = []
    for s in stripes:
        covered.extend(range(s.start, s.stop))
    assert covered == list(range(len(histogram)))
    for s in stripes:
        # A stripe exceeds the budget only when a single (non-empty) cell
        # does so on its own; empty cells may tag along for free.
        over_budget = int(histogram[s].sum()) > capacity
        if over_budget:
            assert int((histogram[s] > 0).sum()) == 1


@settings(max_examples=50, deadline=None)
@given(
    left=hnp.arrays(np.int64, st.integers(0, 50), elements=st.integers(0, 20)),
    right=hnp.arrays(np.int64, st.integers(0, 50), elements=st.integers(0, 20)),
)
def test_canonicalize_properties(left, right):
    n = min(len(left), len(right))
    pairs = canonicalize_self_pairs(left[:n], right[:n])
    if len(pairs):
        assert (pairs[:, 0] < pairs[:, 1]).all()
        assert len(np.unique(pairs, axis=0)) == len(pairs)
    expected = {
        (min(a, b), max(a, b))
        for a, b in zip(left[:n].tolist(), right[:n].tolist())
        if a != b
    }
    assert {tuple(p) for p in pairs.tolist()} == expected


# ----------------------------------------------------------------------
# parallel stripe planner
# ----------------------------------------------------------------------
parallel_workers = st.sampled_from([1, 2, 3, 7])


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(max_n=120), eps=epsilons, n_workers=parallel_workers)
def test_parallel_plan_covers_domain(points, eps, n_workers):
    """Stripe spans partition the cell range: every cell in exactly one
    stripe, in order, with no gaps."""
    if len(points) == 0:
        return
    spec = JoinSpec(epsilon=eps)
    plan = plan_parallel_stripes(points[:, 0], spec, n_workers)
    covered = []
    for start, stop in plan.spans:
        covered.extend(range(start, stop))
    assert covered == list(range(plan.n_cells))
    owners = plan.owner_of(points[:, 0])
    assert (owners >= 0).all() and (owners < plan.n_stripes).all()
    # Ownership is monotone in the coordinate.
    order = np.argsort(points[:, 0], kind="stable")
    assert (np.diff(owners[order]) >= 0).all()


@settings(max_examples=60, deadline=None)
@given(points=point_arrays(max_n=120), eps=epsilons, n_workers=parallel_workers)
def test_parallel_tasks_overlap_by_at_least_eps(points, eps, n_workers):
    """Task k's window reaches at least band_width past its upper
    boundary, and every stripe is at least band_width wide — together
    the reason a qualifying pair never spans non-adjacent tasks."""
    if len(points) == 0:
        return
    spec = JoinSpec(epsilon=eps)
    plan = plan_parallel_stripes(points[:, 0], spec, n_workers)
    assert plan.overlap >= spec.band_width
    assert plan.cell_width == spec.band_width
    for start, stop in plan.spans:
        assert (stop - start) * plan.cell_width >= spec.band_width
    values = points[:, 0]
    owners = plan.owner_of(values)
    boundaries = plan.boundaries()
    tasks = plan.task_indices(values)
    for sid, members in enumerate(tasks):
        member_owners = owners[members]
        if sid < plan.n_stripes - 1:
            # Everything the task holds beyond its own stripe lies inside
            # the overlap band...
            borrowed = members[member_owners != sid]
            assert (values[borrowed] <= boundaries[sid] + plan.overlap).all()
            # ...and everything inside the band is held by the task.
            in_band = np.flatnonzero(
                (owners > sid) & (values <= boundaries[sid] + plan.overlap)
            )
            assert set(in_band.tolist()) <= set(members.tolist())
        else:
            assert (member_owners == sid).all()


@settings(max_examples=25, deadline=None)
@given(
    points=point_arrays(max_n=80, max_d=4),
    eps=epsilons,
    metric=metrics,
    n_workers=parallel_workers,
)
def test_parallel_boundary_pairs_emitted_once(points, eps, metric, n_workers):
    """After the merge, the parallel pair set is duplicate-free and equals
    the brute-force oracle — boundary pairs appear exactly once."""
    spec = JoinSpec(epsilon=eps, metric=metric, leaf_size=4)
    executor = ParallelJoinExecutor(
        spec, n_workers=n_workers, serial_threshold=0, use_processes=False
    )
    result = executor.self_join(points)
    if len(result.pairs):
        assert len(np.unique(result.pairs, axis=0)) == len(result.pairs)
    assert_same_pairs(
        result.pairs, oracle_self_pairs(points, spec), "property parallel"
    )


@settings(max_examples=20, deadline=None)
@given(points=point_arrays(max_n=80, max_d=4), eps=epsilons)
def test_parallel_output_invariant_to_worker_count(points, eps):
    spec = JoinSpec(epsilon=eps, leaf_size=4)
    reference = None
    for n_workers in (1, 2, 3, 7):
        executor = ParallelJoinExecutor(
            spec, n_workers=n_workers, serial_threshold=0, use_processes=False
        )
        pairs = executor.self_join(points).pairs
        if reference is None:
            reference = pairs
        else:
            assert pairs.tobytes() == reference.tobytes()
